//! The decompiler: class files back to mini-Java source.
//!
//! A straightforward symbolic-execution decompiler — it replays each
//! method's stack effects, rebuilding expressions and emitting statements
//! at stores, calls, and returns. The [`BugSet`] hooks corrupt specific
//! emissions, simulating the real decompiler defects the paper's
//! benchmarks exercise.

use crate::bugs::{BugKind, BugSet};
use crate::source::{SExpr, SourceClass, SourceMethod, SourceSet, SrcType, Stmt};
use lbr_classfile::{ClassFile, Code, Insn, MethodInfo, Program, Type};

/// Decompiles a whole program with the given decompiler's bugs.
pub fn decompile_program(program: &Program, bugs: &BugSet) -> SourceSet {
    let mut out = SourceSet::default();
    for class in program.classes() {
        out.classes.push(decompile_class(program, class, bugs));
    }
    out
}

/// Decompiles one class.
pub fn decompile_class(program: &Program, class: &ClassFile, bugs: &BugSet) -> SourceClass {
    let mut interfaces = class.interfaces.clone();
    if bugs.contains(BugKind::SuperInterfaceAmnesia) && class.is_interface() {
        interfaces.clear();
    }
    let mut methods = Vec::new();
    for m in &class.methods {
        if bugs.contains(BugKind::EatPatternMatch) {
            if let Some(code) = &m.code {
                if code.insns.iter().any(|i| matches!(i, Insn::InstanceOf(_))) {
                    continue; // the decompiler silently eats this method
                }
            }
        }
        methods.push(decompile_method(program, class, m, bugs));
    }
    SourceClass {
        name: class.name.clone(),
        is_interface: class.is_interface(),
        is_abstract: class.flags.is_abstract() && !class.is_interface(),
        superclass: if class.is_interface() {
            None
        } else {
            class.superclass.clone()
        },
        interfaces,
        fields: class
            .fields
            .iter()
            .map(|f| (src_type(&f.ty), f.name.clone()))
            .collect(),
        methods,
    }
}

fn src_type(t: &Type) -> SrcType {
    match t {
        Type::Int => SrcType::Int,
        Type::Reference(c) => SrcType::Class(c.clone()),
    }
}

fn ret_type(t: &Option<Type>) -> SrcType {
    t.as_ref().map_or(SrcType::Void, src_type)
}

fn decompile_method(
    program: &Program,
    class: &ClassFile,
    method: &MethodInfo,
    bugs: &BugSet,
) -> SourceMethod {
    let is_ctor = method.is_init();
    let name = if is_ctor {
        class.name.clone()
    } else {
        method.name.clone()
    };
    let mut params = Vec::new();
    for (i, p) in method.desc.params.iter().enumerate() {
        params.push((src_type(p), format!("p{i}")));
    }
    let body = method
        .code
        .as_ref()
        .map(|code| decompile_code(program, class, method, code, bugs));
    SourceMethod {
        name,
        is_ctor,
        ret: if is_ctor {
            SrcType::Void
        } else {
            ret_type(&method.desc.ret)
        },
        params,
        body,
    }
}

/// One stack entry: the rebuilt expression and its static type.
type Entry = (SExpr, SrcType);

fn decompile_code(
    program: &Program,
    class: &ClassFile,
    method: &MethodInfo,
    code: &Code,
    bugs: &BugSet,
) -> Vec<Stmt> {
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut stack: Vec<Entry> = Vec::new();
    // Local slots: name, type, and whether a declaration was emitted.
    let mut locals: Vec<Option<(String, SrcType)>> = vec![None; code.max_locals as usize];
    let mut slot = 0usize;
    if !method.flags.is_static() {
        if slot < locals.len() {
            locals[slot] = Some(("this".to_owned(), SrcType::Class(class.name.clone())));
        }
        slot += 1;
    }
    for (i, p) in method.desc.params.iter().enumerate() {
        if slot < locals.len() {
            locals[slot] = Some((format!("p{i}"), src_type(p)));
        }
        slot += 1;
    }

    let pop = |stack: &mut Vec<Entry>| -> Entry {
        stack
            .pop()
            .unwrap_or((SExpr::Null, SrcType::Class("null".to_owned())))
    };

    for (pc, insn) in code.insns.iter().enumerate() {
        match insn {
            Insn::Nop => {}
            Insn::IConst(v) => stack.push((SExpr::Int(*v), SrcType::Int)),
            Insn::AConstNull => stack.push((SExpr::Null, SrcType::Class("null".to_owned()))),
            Insn::ILoad(s) | Insn::ALoad(s) => {
                let (name, ty) = match locals.get(*s as usize).and_then(|o| o.as_ref()) {
                    Some((n, t)) => (n.clone(), t.clone()),
                    None => (format!("v{s}"), SrcType::Class("Object".to_owned())),
                };
                let expr = if name == "this" {
                    SExpr::This
                } else {
                    SExpr::Var(name)
                };
                stack.push((expr, ty));
            }
            Insn::IStore(s) | Insn::AStore(s) => {
                let (e, t) = pop(&mut stack);
                let idx = *s as usize;
                match locals.get(idx).and_then(|o| o.clone()) {
                    Some((name, _)) => stmts.push(Stmt::Assign(SExpr::Var(name), e)),
                    None => {
                        let name = format!("v{s}");
                        let decl_ty = match &t {
                            SrcType::Class(c) if c == "null" => SrcType::Class("Object".to_owned()),
                            other => other.clone(),
                        };
                        stmts.push(Stmt::Local(decl_ty.clone(), name.clone(), e));
                        if idx < locals.len() {
                            locals[idx] = Some((name, decl_ty));
                        }
                    }
                }
            }
            Insn::Pop => {
                let (e, _) = pop(&mut stack);
                stmts.push(Stmt::Expr(e));
            }
            Insn::Dup => {
                let top = stack
                    .last()
                    .cloned()
                    .unwrap_or((SExpr::Null, SrcType::Class("null".to_owned())));
                stack.push(top);
            }
            Insn::IAdd => {
                let (mut b, _) = pop(&mut stack);
                let (a, _) = pop(&mut stack);
                // The constant-folding bug only fires on literal+literal.
                if bugs.contains(BugKind::AddNullifier)
                    && matches!(a, SExpr::Int(_))
                    && matches!(b, SExpr::Int(_))
                {
                    b = SExpr::Null;
                }
                stack.push((SExpr::Add(Box::new(a), Box::new(b)), SrcType::Int));
            }
            Insn::LdcClass(c) => {
                let name = if bugs.contains(BugKind::ReflectionTypo) {
                    format!("{c}_0")
                } else {
                    c.clone()
                };
                stack.push((
                    SExpr::ClassLiteral(name),
                    SrcType::Class("Object".to_owned()),
                ));
            }
            Insn::New(c) => {
                // Placeholder completed by the matching <init> call.
                stack.push((SExpr::New(c.clone(), Vec::new()), SrcType::Class(c.clone())));
            }
            Insn::GetField(f) => {
                let (recv, _) = pop(&mut stack);
                let fname =
                    if bugs.contains(BugKind::FieldRenamer) && matches!(recv, SExpr::Field(..)) {
                        format!("{}_", f.name)
                    } else {
                        f.name.clone()
                    };
                stack.push((SExpr::Field(Box::new(recv), fname), src_type(&f.ty)));
            }
            Insn::PutField(f) => {
                let (value, _) = pop(&mut stack);
                let (recv, _) = pop(&mut stack);
                stmts.push(Stmt::Assign(
                    SExpr::Field(Box::new(recv), f.name.clone()),
                    value,
                ));
            }
            Insn::InvokeVirtual(m) | Insn::InvokeInterface(m) => {
                let mut args = pop_args(&mut stack, m.desc.params.len(), &pop);
                let (recv, _) = pop(&mut stack);
                apply_ctor_arg_dropper(bugs, m, &mut args);
                let call = SExpr::Call(Some(Box::new(recv)), m.name.clone(), args);
                push_or_emit(&mut stack, &mut stmts, call, &m.desc.ret);
            }
            Insn::InvokeSpecial(m) => {
                let mut args = pop_args(&mut stack, m.desc.params.len(), &pop);
                let (recv, _) = pop(&mut stack);
                if m.is_init() {
                    if bugs.contains(BugKind::CtorArgDropper) && args.len() >= 2 {
                        args.pop();
                    }
                    match recv {
                        SExpr::This => {
                            // super(...) / this(...) call: implicit in the
                            // emitted source.
                        }
                        SExpr::New(c, empty) if empty.is_empty() => {
                            let completed = SExpr::New(c.clone(), args);
                            // Standard new;dup;<init> pattern: the original
                            // `new` placeholder sits below; replace it.
                            if let Some(top) = stack.last_mut() {
                                if matches!(&top.0, SExpr::New(c2, a) if *c2 == c && a.is_empty()) {
                                    top.0 = completed;
                                    continue;
                                }
                            }
                            stmts.push(Stmt::Expr(completed));
                        }
                        other => {
                            stmts.push(Stmt::Expr(SExpr::Call(
                                Some(Box::new(other)),
                                m.name.clone(),
                                args,
                            )));
                        }
                    }
                } else {
                    // super.m(...) rendered as a this-call; resolution walks
                    // the chain anyway.
                    let call = SExpr::Call(Some(Box::new(recv)), m.name.clone(), args);
                    push_or_emit(&mut stack, &mut stmts, call, &m.desc.ret);
                }
            }
            Insn::InvokeStatic(m) => {
                let args = pop_args(&mut stack, m.desc.params.len(), &pop);
                let call = if bugs.contains(BugKind::StaticGhostReceiver) {
                    SExpr::Call(
                        Some(Box::new(SExpr::Var(format!(
                            "{}_instance",
                            m.class.to_lowercase()
                        )))),
                        m.name.clone(),
                        args,
                    )
                } else {
                    SExpr::StaticCall(m.class.clone(), m.name.clone(), args)
                };
                push_or_emit(&mut stack, &mut stmts, call, &m.desc.ret);
            }
            Insn::CheckCast(t) => {
                let (inner, _) = pop(&mut stack);
                let is_iface_cast = program.get(t).is_some_and(ClassFile::is_interface);
                let followed_by_invoke = matches!(
                    code.insns.get(pc + 1),
                    Some(Insn::InvokeVirtual(_)) | Some(Insn::InvokeInterface(_))
                );
                let target = if bugs.contains(BugKind::CastToObject)
                    && is_iface_cast
                    && followed_by_invoke
                {
                    "Object".to_owned()
                } else {
                    t.clone()
                };
                stack.push((
                    SExpr::Cast(SrcType::Class(target.clone()), Box::new(inner)),
                    SrcType::Class(target),
                ));
            }
            Insn::InstanceOf(t) => {
                let (inner, _) = pop(&mut stack);
                stack.push((SExpr::InstanceOf(Box::new(inner), t.clone()), SrcType::Int));
            }
            Insn::Goto(_) => {}
            Insn::IfEq(_) => {
                let (cond, _) = pop(&mut stack);
                stmts.push(Stmt::IfNonZero(cond));
            }
            Insn::Return => stmts.push(Stmt::Return(None)),
            Insn::AReturn | Insn::IReturn => {
                let (e, _) = pop(&mut stack);
                stmts.push(Stmt::Return(Some(e)));
            }
            Insn::AThrow => {
                let (e, _) = pop(&mut stack);
                stmts.push(Stmt::Throw(e));
            }
        }
    }
    stmts
}

fn pop_args(
    stack: &mut Vec<Entry>,
    n: usize,
    pop: &impl Fn(&mut Vec<Entry>) -> Entry,
) -> Vec<SExpr> {
    let mut args: Vec<SExpr> = (0..n).map(|_| pop(stack).0).collect();
    args.reverse();
    args
}

/// `CtorArgDropper` also fires on `this(...)`-style invokes of multi-arg
/// constructors through virtual dispatch — but constructors only appear in
/// `invokespecial`, so this helper is a no-op for other call kinds; it
/// exists to keep the call sites symmetric.
fn apply_ctor_arg_dropper(bugs: &BugSet, m: &lbr_classfile::MethodRef, args: &mut Vec<SExpr>) {
    if bugs.contains(BugKind::CtorArgDropper) && m.is_init() && args.len() >= 2 {
        args.pop();
    }
}

fn push_or_emit(stack: &mut Vec<Entry>, stmts: &mut Vec<Stmt>, call: SExpr, ret: &Option<Type>) {
    match ret {
        Some(t) => stack.push((call, src_type(t))),
        None => stmts.push(Stmt::Expr(call)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_classfile::{FieldRef, MethodDescriptor, MethodRef};

    fn void_method(name: &str, insns: Vec<Insn>) -> MethodInfo {
        MethodInfo::new(name, MethodDescriptor::void(), Code::new(4, 4, insns))
    }

    fn program_with(classes: Vec<ClassFile>) -> Program {
        classes.into_iter().collect()
    }

    #[test]
    fn decompiles_new_dup_init() {
        let mut a = ClassFile::new_class("A");
        a.methods.push(void_method(
            "m",
            vec![
                Insn::New("A".into()),
                Insn::Dup,
                Insn::InvokeSpecial(MethodRef::new("A", "<init>", MethodDescriptor::void())),
                Insn::Pop,
                Insn::Return,
            ],
        ));
        let p = program_with(vec![a]);
        let src = decompile_class(&p, p.get("A").unwrap(), &BugSet::none());
        let body = src.methods[0].body.as_ref().unwrap();
        assert_eq!(
            body,
            &vec![
                Stmt::Expr(SExpr::New("A".into(), vec![])),
                Stmt::Return(None)
            ]
        );
    }

    #[test]
    fn super_init_is_implicit() {
        let mut a = ClassFile::new_class("A");
        a.methods.push(void_method(
            "<init>",
            vec![
                Insn::ALoad(0),
                Insn::InvokeSpecial(MethodRef::new("Object", "<init>", MethodDescriptor::void())),
                Insn::Return,
            ],
        ));
        let p = program_with(vec![a]);
        let src = decompile_class(&p, p.get("A").unwrap(), &BugSet::none());
        assert!(src.methods[0].is_ctor);
        assert_eq!(
            src.methods[0].body.as_ref().unwrap(),
            &vec![Stmt::Return(None)]
        );
    }

    #[test]
    fn cast_to_object_bug_fires_only_before_invoke() {
        let mut i = ClassFile::new_interface("I");
        i.methods
            .push(MethodInfo::new_abstract("m", MethodDescriptor::void()));
        let mut a = ClassFile::new_class("A");
        a.methods.push(void_method(
            "go",
            vec![
                Insn::ALoad(0),
                Insn::CheckCast("I".into()),
                Insn::InvokeInterface(MethodRef::new("I", "m", MethodDescriptor::void())),
                Insn::Return,
            ],
        ));
        a.methods.push(void_method(
            "benign",
            vec![
                Insn::ALoad(0),
                Insn::CheckCast("I".into()),
                Insn::Pop,
                Insn::Return,
            ],
        ));
        let p = program_with(vec![i, a]);
        let bugs = BugSet::of(&[BugKind::CastToObject]);
        let src = decompile_class(&p, p.get("A").unwrap(), &bugs);
        let go = &src.methods[0].body.as_ref().unwrap()[0];
        let rendered = format!("{go:?}");
        assert!(rendered.contains("Object"), "{rendered}");
        let benign = &src.methods[1].body.as_ref().unwrap()[0];
        let rendered = format!("{benign:?}");
        assert!(rendered.contains("\"I\""), "cast kept: {rendered}");
    }

    #[test]
    fn eat_pattern_match_drops_method() {
        let mut a = ClassFile::new_class("A");
        a.methods.push(void_method(
            "matchy",
            vec![
                Insn::ALoad(0),
                Insn::InstanceOf("A".into()),
                Insn::Pop,
                Insn::Return,
            ],
        ));
        a.methods.push(void_method("keep", vec![Insn::Return]));
        let p = program_with(vec![a]);
        let src = decompile_class(
            &p,
            p.get("A").unwrap(),
            &BugSet::of(&[BugKind::EatPatternMatch]),
        );
        let names: Vec<&str> = src.methods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["keep"]);
    }

    #[test]
    fn static_ghost_receiver() {
        let mut a = ClassFile::new_class("Util");
        a.methods.push(void_method(
            "go",
            vec![
                Insn::InvokeStatic(MethodRef::new("Util", "helper", MethodDescriptor::void())),
                Insn::Return,
            ],
        ));
        let p = program_with(vec![a]);
        let src = decompile_class(
            &p,
            p.get("Util").unwrap(),
            &BugSet::of(&[BugKind::StaticGhostReceiver]),
        );
        let body = src.methods[0].body.as_ref().unwrap();
        assert!(format!("{body:?}").contains("util_instance"));
    }

    #[test]
    fn field_renamer_only_on_chains() {
        let mut a = ClassFile::new_class("A");
        a.methods.push(void_method(
            "go",
            vec![
                Insn::ALoad(0),
                Insn::GetField(FieldRef::new("A", "f", Type::reference("A"))),
                Insn::GetField(FieldRef::new("A", "g", Type::Int)),
                Insn::Pop,
                Insn::Return,
            ],
        ));
        let p = program_with(vec![a]);
        let src = decompile_class(
            &p,
            p.get("A").unwrap(),
            &BugSet::of(&[BugKind::FieldRenamer]),
        );
        let text = format!("{:?}", src.methods[0].body);
        assert!(text.contains("g_"), "{text}");
        assert!(!text.contains("f_"), "inner access untouched: {text}");
    }

    #[test]
    fn interface_amnesia() {
        let mut j = ClassFile::new_interface("J");
        j.methods
            .push(MethodInfo::new_abstract("p", MethodDescriptor::void()));
        let mut i = ClassFile::new_interface("I");
        i.interfaces.push("J".into());
        let p = program_with(vec![j, i]);
        let src = decompile_class(
            &p,
            p.get("I").unwrap(),
            &BugSet::of(&[BugKind::SuperInterfaceAmnesia]),
        );
        assert!(src.interfaces.is_empty());
        // Classes are unaffected.
        let mut c = ClassFile::new_class("C");
        c.interfaces.push("I".into());
        let p2 = program_with(vec![c]);
        let src = decompile_class(
            &p2,
            p2.get("C").unwrap(),
            &BugSet::of(&[BugKind::SuperInterfaceAmnesia]),
        );
        assert_eq!(src.interfaces, vec!["I".to_owned()]);
    }

    #[test]
    fn correct_decompiler_output_compiles() {
        // Build a small valid program and check the bug-free decompilation
        // compiles cleanly.
        let mut i = ClassFile::new_interface("I");
        i.methods
            .push(MethodInfo::new_abstract("m", MethodDescriptor::void()));
        let mut a = ClassFile::new_class("A");
        a.interfaces.push("I".into());
        a.methods.push(void_method("<init>", vec![Insn::Return]));
        a.methods.push(void_method("m", vec![Insn::Return]));
        a.methods.push(void_method(
            "go",
            vec![
                Insn::New("A".into()),
                Insn::Dup,
                Insn::InvokeSpecial(MethodRef::new("A", "<init>", MethodDescriptor::void())),
                Insn::CheckCast("I".into()),
                Insn::InvokeInterface(MethodRef::new("I", "m", MethodDescriptor::void())),
                Insn::Return,
            ],
        ));
        let p = program_with(vec![i, a]);
        let src = decompile_program(&p, &BugSet::none());
        let errors = crate::compile::compile(&src);
        assert!(errors.is_empty(), "{errors:?}");
        // With the cast bug, the same program no longer compiles.
        let src = decompile_program(&p, &BugSet::of(&[BugKind::CastToObject]));
        let errors = crate::compile::compile(&src);
        assert!(
            errors
                .iter()
                .any(|e| e.message.contains("method m() in Object")),
            "{errors:?}"
        );
    }
}
