//! The black-box oracle: decompile, recompile, compare error messages.
//!
//! A benchmark in the paper is an input program on which a decompiler
//! produces source that fails to recompile; "the goal of the evaluation is
//! to reduce the input program while preserving the full error message of
//! the compiler". [`DecompilerOracle`] packages that: it records the
//! baseline error messages of the original program and accepts a
//! sub-program iff every baseline message is still produced.
//!
//! The predicate is monotone on valid sub-inputs because each injected bug
//! fires on the *presence* of a bytecode/source pattern: any valid
//! superset of a failing input retains the patterns and therefore the
//! messages.

use crate::bugs::BugSet;
use crate::compile::error_messages;
use crate::decompile::decompile_program;
use lbr_classfile::Program;
use std::collections::BTreeSet;

/// A decompile-and-recompile oracle for one (buggy) decompiler and one
/// original input program.
///
/// The oracle is *pure per probe*: every method takes `&self`, each probe
/// decompiles and recompiles its own candidate program, and nothing is
/// mutated — there is no interior mutability anywhere below
/// (`decompile_program` and `error_messages` are pure functions of their
/// inputs). That makes one oracle instance safely shareable across the
/// speculative probe workers of `lbr-core`'s `ProbeScheduler`, and the
/// `Clone` impl cheap enough to hand each per-error search its own copy.
/// The static assertion below pins the `Send + Sync` guarantee at compile
/// time.
#[derive(Debug, Clone)]
pub struct DecompilerOracle {
    bugs: BugSet,
    baseline: BTreeSet<String>,
}

/// Compile-time proof that the oracle can be shared across probe threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync + Clone>() {}
    assert_send_sync::<DecompilerOracle>();
};

impl DecompilerOracle {
    /// Builds the oracle, running the tool once on the original input to
    /// record the baseline error messages.
    pub fn new(original: &Program, bugs: BugSet) -> Self {
        let baseline = Self::errors_with(original, &bugs);
        DecompilerOracle { bugs, baseline }
    }

    fn errors_with(program: &Program, bugs: &BugSet) -> BTreeSet<String> {
        let source = decompile_program(program, bugs);
        error_messages(&source)
    }

    /// The error messages of the original input. Empty means the
    /// decompiler handles this input correctly (not a benchmark).
    pub fn baseline(&self) -> &BTreeSet<String> {
        &self.baseline
    }

    /// Whether the original input actually triggers the decompiler's bugs.
    pub fn is_failing(&self) -> bool {
        !self.baseline.is_empty()
    }

    /// Number of distinct baseline errors (the paper reports a geometric
    /// mean of 9.2 per benchmark).
    pub fn error_count(&self) -> usize {
        self.baseline.len()
    }

    /// Runs the tool on a sub-program, returning its error messages.
    pub fn errors(&self, program: &Program) -> BTreeSet<String> {
        Self::errors_with(program, &self.bugs)
    }

    /// The black-box predicate `P`: does the sub-program still produce
    /// every baseline error message?
    pub fn preserves_failure(&self, program: &Program) -> bool {
        let errors = self.errors(program);
        self.baseline.iter().all(|e| errors.contains(e))
    }
}

/// The format-agnostic oracle interface the reduction pipeline consumes.
/// Delegates to the inherent methods, so trait-driven runs are
/// bit-identical to the historical concrete path.
impl lbr_core::InputOracle<Program> for DecompilerOracle {
    fn baseline(&self) -> &BTreeSet<String> {
        self.baseline()
    }

    fn errors(&self, program: &Program) -> BTreeSet<String> {
        self.errors(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::BugKind;
    use lbr_classfile::{ClassFile, Code, Insn, MethodDescriptor, MethodInfo, MethodRef};

    fn failing_program() -> Program {
        let mut i = ClassFile::new_interface("I");
        i.methods
            .push(MethodInfo::new_abstract("m", MethodDescriptor::void()));
        let mut a = ClassFile::new_class("A");
        a.interfaces.push("I".into());
        a.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        a.methods.push(MethodInfo::new(
            "m",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        a.methods.push(MethodInfo::new(
            "go",
            MethodDescriptor::void(),
            Code::new(
                2,
                1,
                vec![
                    Insn::ALoad(0),
                    Insn::CheckCast("I".into()),
                    Insn::InvokeInterface(MethodRef::new("I", "m", MethodDescriptor::void())),
                    Insn::Return,
                ],
            ),
        ));
        [i, a].into_iter().collect()
    }

    #[test]
    fn oracle_detects_failure_and_subsets() {
        let p = failing_program();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        assert!(oracle.is_failing());
        assert_eq!(oracle.error_count(), 1);
        assert!(oracle.preserves_failure(&p));
        // Removing the `go` method removes the failure.
        let mut smaller = p.clone();
        smaller
            .get_mut("A")
            .unwrap()
            .methods
            .retain(|m| m.name != "go");
        assert!(!oracle.preserves_failure(&smaller));
    }

    #[test]
    fn correct_decompiler_is_not_failing() {
        let p = failing_program();
        let oracle = DecompilerOracle::new(&p, BugSet::none());
        assert!(!oracle.is_failing());
    }

    #[test]
    fn monotone_on_member_removal() {
        // Adding an unrelated class never removes baseline errors.
        let p = failing_program();
        let oracle = DecompilerOracle::new(&p, BugSet::of(&[BugKind::CastToObject]));
        let mut bigger = p.clone();
        let mut extra = ClassFile::new_class("Extra");
        extra.methods.push(MethodInfo::new(
            "<init>",
            MethodDescriptor::void(),
            Code::new(1, 1, vec![Insn::Return]),
        ));
        bigger.insert(extra);
        assert!(oracle.preserves_failure(&bigger));
    }
}
