//! A simulated buggy decompiler and mini source compiler — the black-box
//! tool of the *Logical Bytecode Reduction* evaluation.
//!
//! The paper's benchmarks are Java programs on which a real decompiler
//! emits source that fails to recompile. This crate reproduces that
//! pipeline over the [`lbr_classfile`] substrate:
//!
//! * [`decompile_program`] — a symbolic-execution decompiler from class
//!   files to a mini-Java [`SourceSet`],
//! * [`BugSet`] / [`BugKind`] — a catalog of pattern-triggered emission
//!   bugs (three presets play the paper's three decompilers),
//! * [`compile`] — a mini `javac` producing deterministic, identifying
//!   [`Diagnostic`]s,
//! * [`DecompilerOracle`] — the black-box predicate "the sub-program still
//!   produces the full original error message", monotone on valid
//!   sub-inputs as Definition 4.1 requires.
//!
//! # Example
//!
//! ```
//! use lbr_classfile::{ClassFile, Code, Insn, MethodDescriptor, MethodInfo, Program};
//! use lbr_decompiler::{BugSet, DecompilerOracle};
//!
//! let mut class = ClassFile::new_class("A");
//! class.methods.push(MethodInfo::new(
//!     "<init>",
//!     MethodDescriptor::void(),
//!     Code::new(1, 1, vec![Insn::Return]),
//! ));
//! let program: Program = [class].into_iter().collect();
//! let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
//! // This program triggers none of decompiler A's bugs.
//! assert!(!oracle.is_failing());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bugs;
mod compile;
mod decompile;
mod oracle;
mod source;

pub use bugs::{BugKind, BugSet};
pub use compile::{compile, error_messages, Diagnostic};
pub use decompile::{decompile_class, decompile_program};
pub use oracle::DecompilerOracle;
pub use source::{render_class, SExpr, SourceClass, SourceMethod, SourceSet, SrcType, Stmt};
