//! The mini source compiler.
//!
//! Plays the role of `javac` in the paper's oracle: the decompiled source
//! is recompiled, and a benchmark "fails" when compilation produces
//! errors. Reduction must preserve the *full set of error messages*, so
//! diagnostics carry enough context (class, member, symbol) to be stable
//! identities, and are rendered deterministically.

use crate::source::{SExpr, SourceClass, SourceSet, SrcType, Stmt};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A compiler diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Diagnostic {
    /// The class being compiled.
    pub class: String,
    /// The member, if the error is inside one.
    pub member: Option<String>,
    /// The message (javac-flavoured).
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.member {
            Some(m) => write!(f, "error: [{}::{}] {}", self.class, m, self.message),
            None => write!(f, "error: [{}] {}", self.class, self.message),
        }
    }
}

/// Compiles a source set, returning all diagnostics (empty = compiles).
pub fn compile(set: &SourceSet) -> Vec<Diagnostic> {
    Compiler::new(set).run()
}

/// The rendered, deduplicated, sorted error messages — the oracle compares
/// these sets.
pub fn error_messages(set: &SourceSet) -> BTreeSet<String> {
    compile(set).into_iter().map(|d| d.to_string()).collect()
}

/// The poisoned type used to stop cascading diagnostics.
const ERROR_TYPE: &str = "<error>";

struct Compiler<'s> {
    set: &'s SourceSet,
    index: HashMap<&'s str, &'s SourceClass>,
    diags: Vec<Diagnostic>,
}

impl<'s> Compiler<'s> {
    fn new(set: &'s SourceSet) -> Self {
        let index = set.classes.iter().map(|c| (c.name.as_str(), c)).collect();
        Compiler {
            set,
            index,
            diags: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<Diagnostic> {
        for class in &self.set.classes {
            self.check_class(class);
        }
        self.diags.sort();
        self.diags.dedup();
        self.diags
    }

    fn diag(&mut self, class: &str, member: Option<&str>, message: String) {
        self.diags.push(Diagnostic {
            class: class.to_owned(),
            member: member.map(str::to_owned),
            message,
        });
    }

    fn lookup(&self, name: &str) -> Option<&'s SourceClass> {
        self.index.get(name).copied()
    }

    fn is_known(&self, name: &str) -> bool {
        name == "Object" || name == ERROR_TYPE || self.lookup(name).is_some()
    }

    /// The superclass chain (names), cycle-guarded.
    fn chain(&self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut cur = name.to_owned();
        while seen.insert(cur.clone()) {
            out.push(cur.clone());
            match self.lookup(&cur).and_then(|c| c.superclass.clone()) {
                Some(s) => cur = s,
                None => {
                    if cur != "Object" {
                        out.push("Object".to_owned());
                    }
                    break;
                }
            }
        }
        out
    }

    /// All interfaces transitively reachable from `name`.
    fn interface_closure(&self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut queue = vec![name.to_owned()];
        let mut seen: HashSet<String> = queue.iter().cloned().collect();
        while let Some(cur) = queue.pop() {
            if let Some(c) = self.lookup(&cur) {
                if c.is_interface && cur != name {
                    out.push(cur.clone());
                }
                for s in c.superclass.iter().chain(c.interfaces.iter()) {
                    if seen.insert(s.clone()) {
                        queue.push(s.clone());
                    }
                }
            }
        }
        out.sort();
        out
    }

    fn is_subtype(&self, sub: &str, sup: &str) -> bool {
        if sub == sup || sub == ERROR_TYPE || sup == ERROR_TYPE || sup == "Object" {
            return true;
        }
        self.chain(sub).iter().any(|c| c == sup)
            || self.interface_closure(sub).iter().any(|i| i == sup)
    }

    fn assignable(&self, from: &SrcType, to: &SrcType) -> bool {
        match (from, to) {
            // The poisoned type converts to anything: one diagnostic per
            // root cause, no cascades.
            (SrcType::Class(f), _) if f == ERROR_TYPE => true,
            (_, SrcType::Class(t)) if t == ERROR_TYPE => true,
            (SrcType::Int, SrcType::Int) => true,
            (SrcType::Class(f), SrcType::Class(t)) => f == "null" || self.is_subtype(f, t),
            _ => false,
        }
    }

    fn check_class(&mut self, class: &'s SourceClass) {
        // Supertype resolution.
        if let Some(s) = &class.superclass {
            match self.lookup(s) {
                None if s != "Object" => {
                    self.diag(&class.name, None, format!("cannot find symbol: class {s}"))
                }
                Some(sc) if sc.is_interface => self.diag(
                    &class.name,
                    None,
                    format!("no interface expected here: {s}"),
                ),
                _ => {}
            }
        }
        for i in &class.interfaces {
            match self.lookup(i) {
                None => self.diag(&class.name, None, format!("cannot find symbol: class {i}")),
                Some(ic) if !ic.is_interface => {
                    self.diag(&class.name, None, format!("interface expected here: {i}"))
                }
                Some(_) => {}
            }
        }
        // Field types must exist.
        for (ty, fname) in &class.fields {
            if let Some(c) = ty.class_name() {
                if !self.is_known(c) {
                    self.diag(
                        &class.name,
                        Some(fname),
                        format!("cannot find symbol: class {c}"),
                    );
                }
            }
        }
        // Interface-implementation obligations.
        if !class.is_interface && !class.is_abstract {
            for iface in self.interface_closure(&class.name) {
                let Some(ic) = self.lookup(&iface) else {
                    continue;
                };
                for im in &ic.methods {
                    if im.body.is_some() {
                        continue;
                    }
                    let implemented = self.chain(&class.name).iter().any(|cn| {
                        self.lookup(cn).is_some_and(|c| {
                            c.methods.iter().any(|m| {
                                m.name == im.name
                                    && m.params.len() == im.params.len()
                                    && m.body.is_some()
                            })
                        })
                    });
                    if !implemented {
                        self.diag(
                            &class.name,
                            None,
                            format!(
                                "{} is not abstract and does not override abstract method {}() in {}",
                                class.name, im.name, iface
                            ),
                        );
                    }
                }
            }
        }
        // Method bodies.
        for m in &class.methods {
            let member = m.name.clone();
            if let Some(c) = m.ret.class_name() {
                if !self.is_known(c) {
                    self.diag(
                        &class.name,
                        Some(&member),
                        format!("cannot find symbol: class {c}"),
                    );
                }
            }
            let mut env: HashMap<String, SrcType> = HashMap::new();
            for (ty, name) in &m.params {
                if let Some(c) = ty.class_name() {
                    if !self.is_known(c) {
                        self.diag(
                            &class.name,
                            Some(&member),
                            format!("cannot find symbol: class {c}"),
                        );
                    }
                }
                env.insert(name.clone(), ty.clone());
            }
            if !class.is_interface {
                env.insert("this".to_owned(), SrcType::Class(class.name.clone()));
            }
            if let Some(body) = &m.body {
                for stmt in body {
                    self.check_stmt(class, &member, &m.ret, &mut env, stmt);
                }
            }
        }
    }

    fn check_stmt(
        &mut self,
        class: &SourceClass,
        member: &str,
        ret: &SrcType,
        env: &mut HashMap<String, SrcType>,
        stmt: &Stmt,
    ) {
        match stmt {
            Stmt::Local(ty, name, init) => {
                if let Some(c) = ty.class_name() {
                    if !self.is_known(c) {
                        self.diag(
                            &class.name,
                            Some(member),
                            format!("cannot find symbol: class {c}"),
                        );
                    }
                }
                let got = self.type_expr(class, member, env, init);
                if !self.assignable(&got, ty) {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("incompatible types: {got} cannot be converted to {ty}"),
                    );
                }
                env.insert(name.clone(), ty.clone());
            }
            Stmt::Expr(e) => {
                self.type_expr(class, member, env, e);
            }
            Stmt::Assign(target, value) => {
                let t = self.type_expr(class, member, env, target);
                let v = self.type_expr(class, member, env, value);
                if !self.assignable(&v, &t) {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("incompatible types: {v} cannot be converted to {t}"),
                    );
                }
            }
            Stmt::Return(None) => {
                if *ret != SrcType::Void {
                    self.diag(&class.name, Some(member), "missing return value".to_owned());
                }
            }
            Stmt::Return(Some(e)) => {
                let got = self.type_expr(class, member, env, e);
                if *ret == SrcType::Void {
                    self.diag(
                        &class.name,
                        Some(member),
                        "incompatible types: unexpected return value".to_owned(),
                    );
                } else if !self.assignable(&got, ret) {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("incompatible types: {got} cannot be converted to {ret}"),
                    );
                }
            }
            Stmt::Throw(e) => {
                let got = self.type_expr(class, member, env, e);
                if got == SrcType::Int || got == SrcType::Void {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("incompatible types: {got} cannot be thrown"),
                    );
                }
            }
            Stmt::IfNonZero(e) => {
                let got = self.type_expr(class, member, env, e);
                if got != SrcType::Int && got != SrcType::Class(ERROR_TYPE.into()) {
                    self.diag(
                        &class.name,
                        Some(member),
                        "incompatible types: condition must be int".to_owned(),
                    );
                }
            }
        }
    }

    /// Types an expression, reporting diagnostics; returns the poisoned
    /// type after an error to avoid cascades.
    fn type_expr(
        &mut self,
        class: &SourceClass,
        member: &str,
        env: &HashMap<String, SrcType>,
        e: &SExpr,
    ) -> SrcType {
        let poison = SrcType::Class(ERROR_TYPE.to_owned());
        match e {
            SExpr::Null => SrcType::Class("null".to_owned()),
            SExpr::Int(_) => SrcType::Int,
            SExpr::This => env
                .get("this")
                .cloned()
                .unwrap_or_else(|| SrcType::Class(class.name.clone())),
            SExpr::Var(v) => match env.get(v) {
                Some(t) => t.clone(),
                None => {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("cannot find symbol: variable {v}"),
                    );
                    poison
                }
            },
            SExpr::Field(recv, fname) => {
                let rt = self.type_expr(class, member, env, recv);
                let Some(owner) = rt.class_name().map(str::to_owned) else {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("{rt} cannot be dereferenced"),
                    );
                    return poison;
                };
                if owner == ERROR_TYPE {
                    return poison;
                }
                for cn in self.chain(&owner) {
                    if let Some(c) = self.lookup(&cn) {
                        if let Some((ty, _)) = c.fields.iter().find(|(_, n)| n == fname) {
                            return ty.clone();
                        }
                    }
                }
                self.diag(
                    &class.name,
                    Some(member),
                    format!("cannot find symbol: variable {fname} in {owner}"),
                );
                poison
            }
            SExpr::Call(recv, mname, args) => {
                let owner = match recv {
                    Some(r) => {
                        let rt = self.type_expr(class, member, env, r);
                        match rt.class_name() {
                            Some(c) => c.to_owned(),
                            None => {
                                self.diag(
                                    &class.name,
                                    Some(member),
                                    format!("{rt} cannot be dereferenced"),
                                );
                                return poison;
                            }
                        }
                    }
                    None => class.name.clone(),
                };
                let arg_tys: Vec<SrcType> = args
                    .iter()
                    .map(|a| self.type_expr(class, member, env, a))
                    .collect();
                if owner == ERROR_TYPE || owner == "null" {
                    return poison;
                }
                self.resolve_call(class, member, &owner, mname, &arg_tys)
            }
            SExpr::StaticCall(owner, mname, args) => {
                let arg_tys: Vec<SrcType> = args
                    .iter()
                    .map(|a| self.type_expr(class, member, env, a))
                    .collect();
                if self.lookup(owner).is_none() {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("cannot find symbol: class {owner}"),
                    );
                    return poison;
                }
                self.resolve_call(class, member, owner, mname, &arg_tys)
            }
            SExpr::New(cname, args) => {
                let arg_tys: Vec<SrcType> = args
                    .iter()
                    .map(|a| self.type_expr(class, member, env, a))
                    .collect();
                let Some(c) = self.lookup(cname) else {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("cannot find symbol: class {cname}"),
                    );
                    return poison;
                };
                if c.is_interface || c.is_abstract {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("{cname} is abstract; cannot be instantiated"),
                    );
                    return poison;
                }
                let fits = c.methods.iter().any(|m| {
                    m.is_ctor
                        && m.params.len() == arg_tys.len()
                        && m.params
                            .iter()
                            .zip(&arg_tys)
                            .all(|((pt, _), at)| self.assignable(at, pt))
                });
                if !fits {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!(
                            "constructor {cname}({}) cannot be applied",
                            arg_tys
                                .iter()
                                .map(|t| t.to_string())
                                .collect::<Vec<_>>()
                                .join(",")
                        ),
                    );
                }
                SrcType::Class(cname.clone())
            }
            SExpr::Cast(ty, inner) => {
                let it = self.type_expr(class, member, env, inner);
                if let Some(c) = ty.class_name() {
                    if !self.is_known(c) {
                        self.diag(
                            &class.name,
                            Some(member),
                            format!("cannot find symbol: class {c}"),
                        );
                        return poison;
                    }
                }
                if let (SrcType::Class(from), Some(to)) = (&it, ty.class_name()) {
                    if from != "null"
                        && from != ERROR_TYPE
                        && !self.is_subtype(from, to)
                        && !self.is_subtype(to, from)
                    {
                        self.diag(
                            &class.name,
                            Some(member),
                            format!("incompatible types: {from} cannot be converted to {to}"),
                        );
                    }
                }
                ty.clone()
            }
            SExpr::InstanceOf(inner, ty) => {
                self.type_expr(class, member, env, inner);
                if !self.is_known(ty) {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("cannot find symbol: class {ty}"),
                    );
                }
                SrcType::Int
            }
            SExpr::Add(a, b) => {
                let ta = self.type_expr(class, member, env, a);
                let tb = self.type_expr(class, member, env, b);
                let err = SrcType::Class(ERROR_TYPE.into());
                if (ta != SrcType::Int && ta != err) || (tb != SrcType::Int && tb != err) {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("bad operand types for binary operator '+': {ta}, {tb}"),
                    );
                }
                SrcType::Int
            }
            SExpr::ClassLiteral(c) => {
                if !self.is_known(c) {
                    self.diag(
                        &class.name,
                        Some(member),
                        format!("cannot find symbol: class {c}"),
                    );
                }
                SrcType::Class("Object".to_owned())
            }
        }
    }

    fn resolve_call(
        &mut self,
        class: &SourceClass,
        member: &str,
        owner: &str,
        mname: &str,
        arg_tys: &[SrcType],
    ) -> SrcType {
        // Search class chain then interface closure.
        let mut search: Vec<String> = self.chain(owner);
        search.extend(self.interface_closure(owner));
        for cn in &search {
            if let Some(c) = self.lookup(cn) {
                for m in &c.methods {
                    if m.name == mname
                        && m.params.len() == arg_tys.len()
                        && m.params
                            .iter()
                            .zip(arg_tys)
                            .all(|((pt, _), at)| self.assignable(at, pt))
                    {
                        return m.ret.clone();
                    }
                }
            }
        }
        self.diag(
            &class.name,
            Some(member),
            format!(
                "cannot find symbol: method {mname}({}) in {owner}",
                arg_tys
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        SrcType::Class(ERROR_TYPE.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceMethod;

    fn class(name: &str) -> SourceClass {
        SourceClass {
            name: name.into(),
            is_interface: false,
            is_abstract: false,
            superclass: Some("Object".into()),
            interfaces: vec![],
            fields: vec![],
            methods: vec![SourceMethod {
                name: name.into(),
                is_ctor: true,
                ret: SrcType::Void,
                params: vec![],
                body: Some(vec![Stmt::Return(None)]),
            }],
        }
    }

    fn method(name: &str, ret: SrcType, body: Vec<Stmt>) -> SourceMethod {
        SourceMethod {
            name: name.into(),
            is_ctor: false,
            ret,
            params: vec![],
            body: Some(body),
        }
    }

    #[test]
    fn empty_set_compiles() {
        assert!(compile(&SourceSet::default()).is_empty());
    }

    #[test]
    fn valid_program_compiles() {
        let mut a = class("A");
        a.fields.push((SrcType::Int, "f".into()));
        a.methods.push(method(
            "m",
            SrcType::Int,
            vec![Stmt::Return(Some(SExpr::Field(
                Box::new(SExpr::This),
                "f".into(),
            )))],
        ));
        let set = SourceSet { classes: vec![a] };
        assert!(compile(&set).is_empty(), "{:?}", compile(&set));
    }

    #[test]
    fn missing_class_reported() {
        let mut a = class("A");
        a.methods.push(method(
            "m",
            SrcType::Void,
            vec![Stmt::Expr(SExpr::New("Ghost".into(), vec![]))],
        ));
        let set = SourceSet { classes: vec![a] };
        let msgs = error_messages(&set);
        assert!(
            msgs.iter()
                .any(|m| m.contains("cannot find symbol: class Ghost")),
            "{msgs:?}"
        );
    }

    #[test]
    fn missing_method_reported() {
        let mut a = class("A");
        a.methods.push(method(
            "m",
            SrcType::Void,
            vec![Stmt::Expr(SExpr::Call(
                Some(Box::new(SExpr::This)),
                "nope".into(),
                vec![],
            ))],
        ));
        let set = SourceSet { classes: vec![a] };
        let msgs = error_messages(&set);
        assert!(
            msgs.iter().any(|m| m.contains("method nope() in A")),
            "{msgs:?}"
        );
    }

    #[test]
    fn unimplemented_interface_reported() {
        let i = SourceClass {
            name: "I".into(),
            is_interface: true,
            is_abstract: true,
            superclass: None,
            interfaces: vec![],
            fields: vec![],
            methods: vec![SourceMethod {
                name: "m".into(),
                is_ctor: false,
                ret: SrcType::Void,
                params: vec![],
                body: None,
            }],
        };
        let mut a = class("A");
        a.interfaces.push("I".into());
        let set = SourceSet {
            classes: vec![i, a],
        };
        let msgs = error_messages(&set);
        assert!(
            msgs.iter()
                .any(|m| m.contains("does not override abstract method m() in I")),
            "{msgs:?}"
        );
    }

    #[test]
    fn impossible_cast_reported() {
        let a = class("A");
        let mut b = class("B");
        b.methods.push(method(
            "m",
            SrcType::Void,
            vec![Stmt::Expr(SExpr::Cast(
                SrcType::Class("A".into()),
                Box::new(SExpr::New("B".into(), vec![])),
            ))],
        ));
        let set = SourceSet {
            classes: vec![a, b],
        };
        let msgs = error_messages(&set);
        assert!(
            msgs.iter()
                .any(|m| m.contains("B cannot be converted to A")),
            "{msgs:?}"
        );
    }

    #[test]
    fn bad_add_reported() {
        let mut a = class("A");
        a.methods.push(method(
            "m",
            SrcType::Int,
            vec![Stmt::Return(Some(SExpr::Add(
                Box::new(SExpr::Int(1)),
                Box::new(SExpr::Null),
            )))],
        ));
        let set = SourceSet { classes: vec![a] };
        let msgs = error_messages(&set);
        assert!(
            msgs.iter().any(|m| m.contains("bad operand types")),
            "{msgs:?}"
        );
    }

    #[test]
    fn unknown_variable_reported_once() {
        let mut a = class("A");
        a.methods.push(method(
            "m",
            SrcType::Void,
            vec![
                Stmt::Expr(SExpr::Var("ghost".into())),
                Stmt::Expr(SExpr::Var("ghost".into())),
            ],
        ));
        let set = SourceSet { classes: vec![a] };
        // Deduplicated.
        assert_eq!(
            compile(&set)
                .iter()
                .filter(|d| d.message.contains("variable ghost"))
                .count(),
            1
        );
    }

    #[test]
    fn statement_level_errors() {
        let mut a = class("A");
        a.fields.push((SrcType::Int, "f".into()));
        a.methods.push(method(
            "assign_bad",
            SrcType::Void,
            vec![Stmt::Assign(
                SExpr::Field(Box::new(SExpr::This), "f".into()),
                SExpr::Null,
            )],
        ));
        a.methods.push(method(
            "throw_int",
            SrcType::Void,
            vec![Stmt::Throw(SExpr::Int(3))],
        ));
        a.methods.push(method(
            "missing_return",
            SrcType::Int,
            vec![Stmt::Return(None)],
        ));
        a.methods.push(method(
            "unexpected_return",
            SrcType::Void,
            vec![Stmt::Return(Some(SExpr::Int(1)))],
        ));
        a.methods.push(method(
            "bad_local",
            SrcType::Void,
            vec![Stmt::Local(SrcType::Int, "x".into(), SExpr::Null)],
        ));
        a.methods.push(method(
            "bad_condition",
            SrcType::Void,
            vec![Stmt::IfNonZero(SExpr::This)],
        ));
        let set = SourceSet { classes: vec![a] };
        let msgs = error_messages(&set);
        for needle in [
            "cannot be converted to int",
            "cannot be thrown",
            "missing return value",
            "unexpected return value",
            "condition must be int",
        ] {
            assert!(
                msgs.iter().any(|m| m.contains(needle)),
                "missing {needle:?} in {msgs:?}"
            );
        }
    }

    #[test]
    fn interface_receiver_resolves_through_closure() {
        let j = SourceClass {
            name: "J".into(),
            is_interface: true,
            is_abstract: true,
            superclass: None,
            interfaces: vec![],
            fields: vec![],
            methods: vec![SourceMethod {
                name: "deep".into(),
                is_ctor: false,
                ret: SrcType::Void,
                params: vec![],
                body: None,
            }],
        };
        let i = SourceClass {
            name: "I".into(),
            is_interface: true,
            is_abstract: true,
            superclass: None,
            interfaces: vec!["J".into()],
            fields: vec![],
            methods: vec![],
        };
        let mut a = class("A");
        a.methods.push(method(
            "go",
            SrcType::Void,
            vec![Stmt::Expr(SExpr::Call(
                Some(Box::new(SExpr::Cast(
                    SrcType::Class("I".into()),
                    Box::new(SExpr::Null),
                ))),
                "deep".into(),
                vec![],
            ))],
        ));
        let set = SourceSet {
            classes: vec![j, i, a],
        };
        assert!(compile(&set).is_empty(), "{:?}", compile(&set));
    }

    #[test]
    fn poison_stops_cascades() {
        let mut a = class("A");
        a.methods.push(method(
            "m",
            SrcType::Void,
            vec![Stmt::Expr(SExpr::Call(
                Some(Box::new(SExpr::Var("ghost".into()))),
                "anything".into(),
                vec![],
            ))],
        ));
        let set = SourceSet { classes: vec![a] };
        let diags = compile(&set);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }
}
