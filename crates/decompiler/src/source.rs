//! The mini-Java source language the decompiler emits.
//!
//! Deliberately small: just enough surface syntax for decompiled class
//! files — classes/interfaces, typed fields, methods with statement
//! bodies, and the expressions the instruction set can produce. The
//! pretty-printed form is what the "lines" size metric counts.

use std::fmt;
use std::fmt::Write as _;

/// A source-level type name: `int`, `void` (returns only) or a class name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SrcType {
    /// `int`.
    Int,
    /// `void` (method returns only).
    Void,
    /// A class or interface reference.
    Class(String),
}

impl SrcType {
    /// The referenced class, if any.
    pub fn class_name(&self) -> Option<&str> {
        match self {
            SrcType::Class(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for SrcType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrcType::Int => write!(f, "int"),
            SrcType::Void => write!(f, "void"),
            SrcType::Class(c) => write!(f, "{c}"),
        }
    }
}

/// A source class or interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceClass {
    /// Name.
    pub name: String,
    /// Whether this is an interface.
    pub is_interface: bool,
    /// Whether the class is abstract.
    pub is_abstract: bool,
    /// Superclass (classes only).
    pub superclass: Option<String>,
    /// Implemented (or, for interfaces, extended) interfaces.
    pub interfaces: Vec<String>,
    /// Fields.
    pub fields: Vec<(SrcType, String)>,
    /// Methods (constructors have the class name and `Void` return).
    pub methods: Vec<SourceMethod>,
}

/// A source method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceMethod {
    /// Name (class name for constructors).
    pub name: String,
    /// Whether this is a constructor.
    pub is_ctor: bool,
    /// Return type.
    pub ret: SrcType,
    /// Parameters.
    pub params: Vec<(SrcType, String)>,
    /// Body statements; `None` for abstract methods.
    pub body: Option<Vec<Stmt>>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// A local declaration with initializer.
    Local(SrcType, String, SExpr),
    /// An expression evaluated for effect.
    Expr(SExpr),
    /// An assignment `target = value;` (target must be a field or var).
    Assign(SExpr, SExpr),
    /// `return;` / `return e;`
    Return(Option<SExpr>),
    /// `throw e;`
    Throw(SExpr),
    /// `if (e != 0) { }` — the decompiler's crude branch rendering.
    IfNonZero(SExpr),
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SExpr {
    /// `null`.
    Null,
    /// An integer literal.
    Int(i32),
    /// `this`.
    This,
    /// A local variable or parameter.
    Var(String),
    /// Field access `recv.f`.
    Field(Box<SExpr>, String),
    /// Method call `recv.m(args)`; `recv = None` renders a bare call.
    Call(Option<Box<SExpr>>, String, Vec<SExpr>),
    /// Static call `C.m(args)`.
    StaticCall(String, String, Vec<SExpr>),
    /// `new C(args)`.
    New(String, Vec<SExpr>),
    /// `(T) e`.
    Cast(SrcType, Box<SExpr>),
    /// `e instanceof T ? 1 : 0` (rendered as an int expression).
    InstanceOf(Box<SExpr>, String),
    /// `a + b`.
    Add(Box<SExpr>, Box<SExpr>),
    /// `C.class` (reflection literal).
    ClassLiteral(String),
}

/// A set of source files (one per class), the decompiler's output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceSet {
    /// The classes, in emission order.
    pub classes: Vec<SourceClass>,
}

impl SourceSet {
    /// Finds a class by name.
    pub fn class(&self, name: &str) -> Option<&SourceClass> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Renders all classes as source text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.classes {
            let _ = writeln!(out, "{}", render_class(c));
        }
        out
    }

    /// The non-blank line count of the rendered source — the "lines"
    /// metric of the paper's motivating comparison (7,661 → 815 lines).
    pub fn line_count(&self) -> usize {
        self.render()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }
}

/// Renders one class.
pub fn render_class(c: &SourceClass) -> String {
    let mut out = String::new();
    let kind = if c.is_interface { "interface" } else { "class" };
    let abs = if c.is_abstract && !c.is_interface {
        "abstract "
    } else {
        ""
    };
    let _ = write!(out, "{abs}{kind} {}", c.name);
    if let Some(s) = &c.superclass {
        if s != "Object" {
            let _ = write!(out, " extends {s}");
        }
    }
    if !c.interfaces.is_empty() {
        let kw = if c.is_interface {
            "extends"
        } else {
            "implements"
        };
        let _ = write!(out, " {kw} {}", c.interfaces.join(", "));
    }
    let _ = writeln!(out, " {{");
    for (ty, name) in &c.fields {
        let _ = writeln!(out, "  {ty} {name};");
    }
    for m in &c.methods {
        let params = m
            .params
            .iter()
            .map(|(t, n)| format!("{t} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let header = if m.is_ctor {
            format!("{}({params})", m.name)
        } else {
            format!("{} {}({params})", m.ret, m.name)
        };
        match &m.body {
            None => {
                let _ = writeln!(out, "  abstract {header};");
            }
            Some(stmts) => {
                let _ = writeln!(out, "  {header} {{");
                for s in stmts {
                    let _ = writeln!(out, "    {}", render_stmt(s));
                }
                let _ = writeln!(out, "  }}");
            }
        }
    }
    let _ = write!(out, "}}");
    out
}

fn render_stmt(s: &Stmt) -> String {
    match s {
        Stmt::Local(ty, name, e) => format!("{ty} {name} = {};", render_expr(e)),
        Stmt::Expr(e) => format!("{};", render_expr(e)),
        Stmt::Assign(t, v) => format!("{} = {};", render_expr(t), render_expr(v)),
        Stmt::Return(None) => "return;".to_owned(),
        Stmt::Return(Some(e)) => format!("return {};", render_expr(e)),
        Stmt::Throw(e) => format!("throw {};", render_expr(e)),
        Stmt::IfNonZero(e) => format!("if ({} != 0) {{ }}", render_expr(e)),
    }
}

fn render_expr(e: &SExpr) -> String {
    match e {
        SExpr::Null => "null".to_owned(),
        SExpr::Int(i) => i.to_string(),
        SExpr::This => "this".to_owned(),
        SExpr::Var(v) => v.clone(),
        SExpr::Field(r, f) => format!("{}.{f}", render_expr(r)),
        SExpr::Call(None, m, args) => format!("{m}({})", render_args(args)),
        SExpr::Call(Some(r), m, args) => format!("{}.{m}({})", render_expr(r), render_args(args)),
        SExpr::StaticCall(c, m, args) => format!("{c}.{m}({})", render_args(args)),
        SExpr::New(c, args) => format!("new {c}({})", render_args(args)),
        SExpr::Cast(t, r) => format!("(({t}) {})", render_expr(r)),
        SExpr::InstanceOf(r, t) => format!("({} instanceof {t} ? 1 : 0)", render_expr(r)),
        SExpr::Add(a, b) => format!("({} + {})", render_expr(a), render_expr(b)),
        SExpr::ClassLiteral(c) => format!("{c}.class"),
    }
}

fn render_args(args: &[SExpr]) -> String {
    args.iter().map(render_expr).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_class() {
        let c = SourceClass {
            name: "A".into(),
            is_interface: false,
            is_abstract: false,
            superclass: Some("Base".into()),
            interfaces: vec!["I".into()],
            fields: vec![(SrcType::Int, "f".into())],
            methods: vec![SourceMethod {
                name: "m".into(),
                is_ctor: false,
                ret: SrcType::Void,
                params: vec![(SrcType::Class("B".into()), "p0".into())],
                body: Some(vec![Stmt::Return(None)]),
            }],
        };
        let text = render_class(&c);
        assert!(text.contains("class A extends Base implements I {"));
        assert!(text.contains("int f;"));
        assert!(text.contains("void m(B p0) {"));
        assert!(text.contains("return;"));
    }

    #[test]
    fn renders_expressions() {
        let e = SExpr::Cast(
            SrcType::Class("I".into()),
            Box::new(SExpr::New("A".into(), vec![SExpr::Int(3)])),
        );
        assert_eq!(render_expr(&e), "((I) new A(3))");
        let call = SExpr::Call(
            Some(Box::new(SExpr::This)),
            "m".into(),
            vec![SExpr::Null, SExpr::Var("x".into())],
        );
        assert_eq!(render_expr(&call), "this.m(null, x)");
        assert_eq!(render_expr(&SExpr::ClassLiteral("A".into())), "A.class");
    }

    #[test]
    fn line_count_counts_nonblank() {
        let mut set = SourceSet::default();
        set.classes.push(SourceClass {
            name: "A".into(),
            is_interface: true,
            is_abstract: true,
            superclass: None,
            interfaces: vec![],
            fields: vec![],
            methods: vec![SourceMethod {
                name: "m".into(),
                is_ctor: false,
                ret: SrcType::Void,
                params: vec![],
                body: None,
            }],
        });
        assert_eq!(set.line_count(), 3); // header, abstract method, brace
        assert!(set.class("A").is_some());
        assert!(set.class("B").is_none());
    }

    #[test]
    fn interface_renders_extends() {
        let c = SourceClass {
            name: "I".into(),
            is_interface: true,
            is_abstract: true,
            superclass: None,
            interfaces: vec!["J".into()],
            fields: vec![],
            methods: vec![],
        };
        assert!(render_class(&c).contains("interface I extends J"));
    }
}
