//! The injected decompiler-bug catalog.
//!
//! The paper's benchmarks are programs on which a real decompiler produces
//! source that does not recompile. Our simulated decompiler reproduces
//! that failure mode with a catalog of *pattern-triggered* emission bugs:
//! each bug fires on a specific bytecode pattern and corrupts the emitted
//! source in a specific way, yielding a deterministic compile error whose
//! message identifies the instance. Several bugs only surface as compile
//! errors when *combinations* of items are present (e.g. a dropped method
//! is only an error while the class still implements the interface that
//! demands it) — exactly the multi-item dependency structure that defeats
//! graph-based reduction and motivates the logical model.

use std::fmt;

/// One decompiler bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugKind {
    /// A `checkcast` to an interface immediately before an invoke is
    /// emitted as a cast to `Object`, so the following call no longer
    /// resolves.
    CastToObject,
    /// Any method whose body contains `instanceof` is omitted from the
    /// emitted class. The omission is only a compile error in combination
    /// with an interface obligation or a surviving call site.
    EatPatternMatch,
    /// `invokestatic C.m(...)` is emitted as an instance call on the
    /// undeclared variable `c_instance`.
    StaticGhostReceiver,
    /// Constructor calls with two or more arguments lose their last
    /// argument.
    CtorArgDropper,
    /// Chained field accesses `e.f.g` are emitted with the outer field
    /// misspelled as `g_`.
    FieldRenamer,
    /// `ldc C.class` is emitted as `C_0.class` — an unknown class.
    ReflectionTypo,
    /// An integer addition of two literals (a constant-folding path) is
    /// emitted with `null` in place of the second literal.
    AddNullifier,
    /// Interfaces that extend other interfaces lose their `extends`
    /// clause, so calls to inherited signatures no longer resolve.
    SuperInterfaceAmnesia,
}

impl BugKind {
    /// Every bug kind.
    pub const ALL: [BugKind; 8] = [
        BugKind::CastToObject,
        BugKind::EatPatternMatch,
        BugKind::StaticGhostReceiver,
        BugKind::CtorArgDropper,
        BugKind::FieldRenamer,
        BugKind::ReflectionTypo,
        BugKind::AddNullifier,
        BugKind::SuperInterfaceAmnesia,
    ];
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The set of bugs a particular (simulated) decompiler suffers from.
///
/// The paper evaluates three decompilers; [`BugSet::decompiler_a`],
/// [`BugSet::decompiler_b`] and [`BugSet::decompiler_c`] are three
/// overlapping presets playing that role.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BugSet {
    enabled: Vec<BugKind>,
}

impl BugSet {
    /// No bugs — a correct decompiler.
    pub fn none() -> Self {
        Self::default()
    }

    /// Every bug.
    pub fn all() -> Self {
        BugSet {
            enabled: BugKind::ALL.to_vec(),
        }
    }

    /// Builds a set from kinds.
    pub fn of(kinds: &[BugKind]) -> Self {
        let mut enabled = kinds.to_vec();
        enabled.sort();
        enabled.dedup();
        BugSet { enabled }
    }

    /// The first simulated decompiler.
    pub fn decompiler_a() -> Self {
        Self::of(&[
            BugKind::CastToObject,
            BugKind::EatPatternMatch,
            BugKind::CtorArgDropper,
            BugKind::SuperInterfaceAmnesia,
        ])
    }

    /// The second simulated decompiler.
    pub fn decompiler_b() -> Self {
        Self::of(&[
            BugKind::StaticGhostReceiver,
            BugKind::FieldRenamer,
            BugKind::AddNullifier,
        ])
    }

    /// The third simulated decompiler.
    pub fn decompiler_c() -> Self {
        Self::of(&[
            BugKind::CastToObject,
            BugKind::ReflectionTypo,
            BugKind::EatPatternMatch,
        ])
    }

    /// Whether `kind` is enabled.
    pub fn contains(&self, kind: BugKind) -> bool {
        self.enabled.contains(&kind)
    }

    /// The enabled kinds.
    pub fn kinds(&self) -> &[BugKind] {
        &self.enabled
    }

    /// Whether no bugs are enabled.
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_overlap() {
        let a = BugSet::decompiler_a();
        let b = BugSet::decompiler_b();
        let c = BugSet::decompiler_c();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(a.contains(BugKind::CastToObject) && c.contains(BugKind::CastToObject));
        assert!(!b.contains(BugKind::CastToObject));
    }

    #[test]
    fn of_dedups() {
        let s = BugSet::of(&[BugKind::AddNullifier, BugKind::AddNullifier]);
        assert_eq!(s.kinds().len(), 1);
    }

    #[test]
    fn none_and_all() {
        assert!(BugSet::none().is_empty());
        assert_eq!(BugSet::all().kinds().len(), BugKind::ALL.len());
    }
}
