//! Golden rendering: the decompiled source of a fixed program is stable,
//! and each decompiler bug alters exactly the expected spot.

use lbr_classfile::{
    ClassFile, Code, FieldRef, Insn, MethodDescriptor, MethodInfo, MethodRef, Program, Type,
};
use lbr_decompiler::{decompile_program, error_messages, BugKind, BugSet};

fn fixture() -> Program {
    let mut i = ClassFile::new_interface("Shape");
    i.methods.push(MethodInfo::new_abstract(
        "area",
        MethodDescriptor::new(vec![], Some(Type::Int)),
    ));
    let mut c = ClassFile::new_class("Circle");
    c.interfaces.push("Shape".into());
    c.fields.push(lbr_classfile::FieldInfo::new("r", Type::Int));
    c.methods.push(MethodInfo::new(
        "<init>",
        MethodDescriptor::void(),
        Code::new(1, 1, vec![Insn::Return]),
    ));
    c.methods.push(MethodInfo::new(
        "area",
        MethodDescriptor::new(vec![], Some(Type::Int)),
        Code::new(
            2,
            1,
            vec![
                Insn::ALoad(0),
                Insn::GetField(FieldRef::new("Circle", "r", Type::Int)),
                Insn::IReturn,
            ],
        ),
    ));
    c.methods.push(MethodInfo::new(
        "callViaInterface",
        MethodDescriptor::new(vec![], Some(Type::Int)),
        Code::new(
            2,
            1,
            vec![
                Insn::New("Circle".into()),
                Insn::Dup,
                Insn::InvokeSpecial(MethodRef::new("Circle", "<init>", MethodDescriptor::void())),
                Insn::CheckCast("Shape".into()),
                Insn::InvokeInterface(MethodRef::new(
                    "Shape",
                    "area",
                    MethodDescriptor::new(vec![], Some(Type::Int)),
                )),
                Insn::IReturn,
            ],
        ),
    ));
    [i, c].into_iter().collect()
}

const GOLDEN: &str = "\
class Circle implements Shape {
  int r;
  Circle() {
    return;
  }
  int area() {
    return this.r;
  }
  int callViaInterface() {
    return ((Shape) new Circle()).area();
  }
}
interface Shape {
  abstract int area();
}
";

#[test]
fn clean_decompilation_matches_golden() {
    let source = decompile_program(&fixture(), &BugSet::none());
    assert_eq!(source.render(), GOLDEN);
    assert!(error_messages(&source).is_empty());
}

#[test]
fn cast_bug_rewrites_exactly_the_cast() {
    let source = decompile_program(&fixture(), &BugSet::of(&[BugKind::CastToObject]));
    let text = source.render();
    assert!(text.contains("((Object) new Circle()).area()"), "{text}");
    // Everything else is untouched.
    assert!(text.contains("return this.r;"));
    let errors = error_messages(&source);
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(errors
        .iter()
        .next()
        .unwrap()
        .contains("cannot find symbol: method area() in Object"));
}

#[test]
fn line_count_is_stable() {
    let source = decompile_program(&fixture(), &BugSet::none());
    assert_eq!(source.line_count(), GOLDEN.lines().count());
}
