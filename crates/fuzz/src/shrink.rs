//! Shrinking violating cases with our own ddmin, at item granularity.
//!
//! When a case violates an invariant, the whole generated input is
//! rarely needed to reproduce it. The shrinker runs [`lbr_core::ddmin`]
//! over the input's item names — class names for classfile cases,
//! function and global names for stackvm cases; each probe re-runs the
//! full in-process progression suite (the daemon path is skipped — its
//! core code is already covered by the resumable-cache progressions) and
//! counts as *failing* exactly when some invariant still breaks. Subsets
//! that no longer verify or no longer trigger the oracle are
//! `Unresolved`, so the result is always a valid, still-violating case —
//! stored as a `keep_classes` restriction on the original seeds, which
//! is what makes the shrunk `FUZZ_CASE_*.json` replayable.

use crate::case::FuzzCase;
use crate::run::{item_names, Harness};
use lbr_core::TestOutcome;
use lbr_logic::{Var, VarSet};

/// Shrinks a violating `case` to a minimal still-violating item subset.
///
/// Returns the shrunk case with `keep_classes` set and `violation`
/// recording the surviving violation. If the violation does not reproduce
/// in-process (e.g. it was daemon-specific), the original case is
/// returned unshrunk with the given `violation` message attached.
pub fn shrink_case(case: &FuzzCase, harness: &Harness, violation: &str) -> FuzzCase {
    let names = item_names(case);
    let universe = names.len();
    let atoms: Vec<VarSet> = (0..universe)
        .map(|i| VarSet::from_iter_with_universe(universe, [Var::new(i as u32)]))
        .collect();
    let still_violates = |set: &VarSet| -> TestOutcome {
        let mut candidate = case.clone();
        candidate.keep_classes = Some(
            names
                .iter()
                .enumerate()
                .filter(|(i, _)| set.contains(Var::new(*i as u32)))
                .map(|(_, n)| n.clone())
                .collect(),
        );
        let outcome = harness.run_case(&candidate, false);
        if outcome.skipped {
            TestOutcome::Unresolved
        } else if outcome.violations.is_empty() {
            TestOutcome::Pass
        } else {
            TestOutcome::Fail
        }
    };
    let (kept, _stats) = lbr_core::ddmin(&atoms, universe, still_violates);

    let mut shrunk = case.clone();
    shrunk.keep_classes = Some(
        names
            .iter()
            .enumerate()
            .filter(|(i, _)| kept.contains(Var::new(*i as u32)))
            .map(|(_, n)| n.clone())
            .collect(),
    );
    // Record the violation the *shrunk* case exhibits; fall back to the
    // caller's message if the subset unexpectedly runs clean.
    let outcome = harness.run_case(&shrunk, false);
    shrunk.violation = Some(
        outcome
            .violations
            .first()
            .cloned()
            .unwrap_or_else(|| violation.to_string()),
    );
    if outcome.skipped || outcome.violations.is_empty() {
        // Not reproducible in-process: keep the whole program.
        let mut original = case.clone();
        original.violation = Some(violation.to_string());
        return original;
    }
    shrunk
}
