//! Fuzz cases: seed-deterministic descriptions of one generated program
//! plus the oracle it is reduced under.
//!
//! A case never stores the program itself — only the seeds and the
//! sampled [`WorkloadConfig`] that regenerate it bit-for-bit, plus an
//! optional `keep_classes` restriction produced by the shrinker. That
//! keeps `FUZZ_CASE_*.json` files tiny and guarantees `fuzz --replay`
//! reproduces *exactly* the program that violated an invariant.
//!
//! Serialization is exact: `u64` seeds and `f64` probabilities are stored
//! as hexadecimal bit patterns (JSON numbers are doubles and would
//! silently round a 64-bit seed).

use lbr_classfile::Program;
use lbr_decompiler::{BugKind, BugSet};
use lbr_prng::SplitMix64;
use lbr_service::Json;
use lbr_stackvm::{Module, StackBugKind, StackBugSet};
use lbr_workload::{AdversarialShape, StackShape, StackWorkloadConfig, WorkloadConfig};

/// Format tag written into every case file. Old `v1` files (classfile
/// only, no `format` key) are still accepted by [`FuzzCase::from_json`].
const VERSION: &str = "lbr-fuzz-case v2";

/// The pre-stackvm tag: accepted on read for pinned regression files.
const VERSION_V1: &str = "lbr-fuzz-case v1";

/// Golden-ratio increment: decorrelates per-case seeds drawn from one
/// master seed (the SplitMix64 stream constant).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Salt for the format draw, so sampling a case's frontend does not
/// perturb the geometry stream of either frontend's sampler.
const FORMAT_SALT: u64 = 0xF0_12_34_56;

/// One replayable fuzz case. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// The run's master seed.
    pub master_seed: u64,
    /// The case's index in the run's deterministic stream.
    pub index: u64,
    /// The input frontend (`classfile` or `stackvm`).
    pub format: String,
    /// Which simulated buggy tool the oracle models (`a`/`b`/`c` — a
    /// decompiler for classfile cases, a lowering pass for stackvm).
    pub decompiler: String,
    /// The sampled classfile generator configuration (stored in full so
    /// old case files survive future changes to the sampler).
    pub workload: WorkloadConfig,
    /// The sampled stackvm generator configuration; set exactly when
    /// `format == "stackvm"`.
    pub stack_workload: Option<StackWorkloadConfig>,
    /// Shrunk restriction: keep only these items of the generated input
    /// (class names for classfile cases, function/global names for
    /// stackvm). `None` means the whole input.
    pub keep_classes: Option<Vec<String>>,
    /// Whether the intentionally-broken oracle progression is armed (the
    /// harness's self-test; see `fuzz --break-oracle`).
    pub break_oracle: bool,
    /// The invariant violation this case was shrunk from, for humans.
    pub violation: Option<String>,
}

/// The simulated decompiler for a CLI name.
pub fn bugset_by_name(name: &str) -> Option<BugSet> {
    match name {
        "a" => Some(BugSet::decompiler_a()),
        "b" => Some(BugSet::decompiler_b()),
        "c" => Some(BugSet::decompiler_c()),
        _ => None,
    }
}

/// The simulated stackvm lowering pass for a CLI name (same `a`/`b`/`c`
/// selector as the classfile decompilers).
pub fn stack_bugset_by_name(name: &str) -> Option<StackBugSet> {
    match name {
        "a" => Some(StackBugSet::lowering_a()),
        "b" => Some(StackBugSet::lowering_b()),
        "c" => Some(StackBugSet::lowering_c()),
        _ => None,
    }
}

impl FuzzCase {
    /// The deterministic per-case seed: each index gets its own
    /// decorrelated SplitMix64 stream from the master seed.
    pub fn case_seed(master_seed: u64, index: u64) -> u64 {
        SplitMix64::seed_from_u64(master_seed.wrapping_add((index + 1).wrapping_mul(GOLDEN)))
            .next_u64()
    }

    /// Samples case `index` of the `master_seed` run: a random small
    /// workload geometry, a random decompiler, and that decompiler's bug
    /// kinds planted so the oracle has something to preserve. Roughly one
    /// case in four swaps the sampled geometry for an adversarial-shape
    /// preset (constraint-dense, wide-flat, deep-chain, multi-error), so
    /// every campaign exercises the strategy zoo's worst cases; the full
    /// config is stored in the case file either way, so replay is exact.
    pub fn sampled(master_seed: u64, index: u64, break_oracle: bool) -> FuzzCase {
        let case_seed = Self::case_seed(master_seed, index);
        let mut rng = SplitMix64::seed_from_u64(case_seed ^ GOLDEN);
        let decompiler = ["a", "b", "c"][rng.gen_range(0usize..=2)].to_string();
        let bugs = bugset_by_name(&decompiler).expect("fixed name set");
        let mut workload = if rng.gen_range(0u64..=3) == 0 {
            let shape = AdversarialShape::ALL[rng.gen_range(0usize..=3)];
            WorkloadConfig::adversarial(shape, case_seed)
        } else {
            WorkloadConfig::sampled(case_seed)
        };
        workload.plant = bugs.kinds().to_vec();
        FuzzCase {
            master_seed,
            index,
            format: "classfile".to_owned(),
            decompiler,
            workload,
            stack_workload: None,
            keep_classes: None,
            break_oracle,
            violation: None,
        }
    }

    /// Samples a stackvm case: the same decorrelated per-case stream, a
    /// random lowering pass, and a sampled module geometry with that
    /// pass's trigger patterns planted.
    pub fn sampled_stack(master_seed: u64, index: u64, break_oracle: bool) -> FuzzCase {
        let case_seed = Self::case_seed(master_seed, index);
        let mut rng = SplitMix64::seed_from_u64(case_seed ^ GOLDEN);
        let decompiler = ["a", "b", "c"][rng.gen_range(0usize..=2)].to_string();
        let bugs = stack_bugset_by_name(&decompiler).expect("fixed name set");
        let mut stack_workload = StackWorkloadConfig::sampled(case_seed);
        stack_workload.plant = bugs.kinds().to_vec();
        FuzzCase {
            master_seed,
            index,
            format: "stackvm".to_owned(),
            decompiler,
            workload: WorkloadConfig::sampled(case_seed),
            stack_workload: Some(stack_workload),
            keep_classes: None,
            break_oracle,
            violation: None,
        }
    }

    /// Samples case `index` drawing the frontend too: roughly one case in
    /// three is stackvm when `stackvm` is allowed (the campaign's
    /// `--no-stackvm` opt-out turns it off). The format draw is salted so
    /// it never perturbs either frontend's geometry stream.
    pub fn sampled_any(
        master_seed: u64,
        index: u64,
        break_oracle: bool,
        stackvm: bool,
    ) -> FuzzCase {
        let case_seed = Self::case_seed(master_seed, index);
        let mut rng = SplitMix64::seed_from_u64(case_seed ^ FORMAT_SALT);
        if stackvm && rng.gen_range(0u64..=2) == 0 {
            Self::sampled_stack(master_seed, index, break_oracle)
        } else {
            Self::sampled(master_seed, index, break_oracle)
        }
    }

    /// Regenerates the case's program (restricted to `keep_classes` when
    /// the case was shrunk). Fully deterministic.
    pub fn program(&self) -> Program {
        let mut program = lbr_workload::generate(&self.workload);
        if let Some(keep) = &self.keep_classes {
            let drop: Vec<String> = program
                .names()
                .filter(|n| !keep.iter().any(|k| k.as_str() == *n))
                .map(|n| n.to_string())
                .collect();
            for name in drop {
                program.remove(&name);
            }
        }
        program
    }

    /// Regenerates a stackvm case's module (restricted to `keep_classes`
    /// when the case was shrunk — the names select functions and
    /// globals). Fully deterministic. Panics on classfile cases.
    pub fn module(&self) -> Module {
        let config = self
            .stack_workload
            .as_ref()
            .expect("stackvm case carries a stack workload");
        let mut module = lbr_workload::generate_stack(config);
        if let Some(keep) = &self.keep_classes {
            let kept = |name: &str| keep.iter().any(|k| k == name);
            module.functions.retain(|f| kept(&f.name));
            module.globals.retain(|g| kept(&g.name));
        }
        module
    }

    /// The oracle's bug set.
    pub fn bugs(&self) -> BugSet {
        bugset_by_name(&self.decompiler).expect("validated decompiler name")
    }

    /// The stackvm oracle's bug set (same `a`/`b`/`c` name).
    pub fn stack_bugs(&self) -> StackBugSet {
        stack_bugset_by_name(&self.decompiler).expect("validated decompiler name")
    }

    /// Serializes the case (exact: seeds and probabilities as bit
    /// patterns).
    pub fn to_json(&self) -> Json {
        let w = &self.workload;
        let workload = Json::obj([
            ("seed", hex_u64(w.seed)),
            ("classes", Json::count(w.classes as u64)),
            ("interfaces", Json::count(w.interfaces as u64)),
            ("cluster_size", Json::count(w.cluster_size as u64)),
            ("cross_cluster_prob", hex_f64(w.cross_cluster_prob)),
            ("bug_cluster_fraction", hex_f64(w.bug_cluster_fraction)),
            ("methods_per_class", pair(w.methods_per_class)),
            ("stmts_per_method", pair(w.stmts_per_method)),
            ("fields_per_class", pair(w.fields_per_class)),
            ("subclass_prob", hex_f64(w.subclass_prob)),
            ("implements_prob", hex_f64(w.implements_prob)),
            ("iface_extends_prob", hex_f64(w.iface_extends_prob)),
            ("plants_per_bug", Json::count(w.plants_per_bug as u64)),
            (
                "plant",
                Json::Arr(w.plant.iter().map(|k| Json::count(bug_index(*k))).collect()),
            ),
        ]);
        let mut fields = vec![
            ("version", Json::str(VERSION)),
            ("master_seed", hex_u64(self.master_seed)),
            ("index", Json::count(self.index)),
            ("format", Json::str(&self.format)),
            ("decompiler", Json::str(&self.decompiler)),
            ("workload", workload),
            ("break_oracle", Json::Bool(self.break_oracle)),
        ];
        if let Some(sw) = &self.stack_workload {
            fields.push((
                "stack_workload",
                Json::obj([
                    ("seed", hex_u64(sw.seed)),
                    ("functions", Json::count(sw.functions as u64)),
                    ("globals", Json::count(sw.globals as u64)),
                    ("shape", Json::count(shape_index(sw.shape))),
                    ("stmts_per_function", pair(sw.stmts_per_function)),
                    ("plants_per_bug", Json::count(sw.plants_per_bug as u64)),
                    (
                        "plant",
                        Json::Arr(
                            sw.plant
                                .iter()
                                .map(|k| Json::count(stack_bug_index(*k)))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(keep) = &self.keep_classes {
            fields.push((
                "keep_classes",
                Json::Arr(keep.iter().map(Json::str).collect()),
            ));
        }
        if let Some(v) = &self.violation {
            fields.push(("violation", Json::str(v)));
        }
        Json::obj_from(fields)
    }

    /// Parses a serialized case, validating the version tag. `v1` files
    /// (written before the stackvm frontend) parse as classfile cases.
    pub fn from_json(json: &Json) -> Result<FuzzCase, String> {
        let version = json.str_field("version");
        if version != Some(VERSION) && version != Some(VERSION_V1) {
            return Err(format!("not a {VERSION} file"));
        }
        let format = json.str_field("format").unwrap_or("classfile").to_string();
        let decompiler = json
            .str_field("decompiler")
            .ok_or("missing decompiler")?
            .to_string();
        match format.as_str() {
            "classfile" => {
                if bugset_by_name(&decompiler).is_none() {
                    return Err(format!("unknown decompiler {decompiler:?}"));
                }
            }
            "stackvm" => {
                if stack_bugset_by_name(&decompiler).is_none() {
                    return Err(format!("unknown lowering {decompiler:?}"));
                }
            }
            other => return Err(format!("unknown format {other:?}")),
        }
        let stack_workload = match json.get("stack_workload") {
            None => None,
            Some(sw) => Some(StackWorkloadConfig {
                seed: parse_hex_u64(sw, "seed")?,
                functions: parse_usize(sw, "functions")?,
                globals: parse_usize(sw, "globals")?,
                shape: parse_shape(sw)?,
                stmts_per_function: parse_pair(sw, "stmts_per_function")?,
                plants_per_bug: parse_usize(sw, "plants_per_bug")?,
                plant: parse_stack_plant(sw)?,
            }),
        };
        if format == "stackvm" && stack_workload.is_none() {
            return Err("stackvm case is missing stack_workload".to_owned());
        }
        let w = json.get("workload").ok_or("missing workload")?;
        let workload = WorkloadConfig {
            seed: parse_hex_u64(w, "seed")?,
            classes: parse_usize(w, "classes")?,
            interfaces: parse_usize(w, "interfaces")?,
            cluster_size: parse_usize(w, "cluster_size")?,
            cross_cluster_prob: parse_hex_f64(w, "cross_cluster_prob")?,
            bug_cluster_fraction: parse_hex_f64(w, "bug_cluster_fraction")?,
            methods_per_class: parse_pair(w, "methods_per_class")?,
            stmts_per_method: parse_pair(w, "stmts_per_method")?,
            fields_per_class: parse_pair(w, "fields_per_class")?,
            subclass_prob: parse_hex_f64(w, "subclass_prob")?,
            implements_prob: parse_hex_f64(w, "implements_prob")?,
            iface_extends_prob: parse_hex_f64(w, "iface_extends_prob")?,
            plants_per_bug: parse_usize(w, "plants_per_bug")?,
            plant: parse_plant(w)?,
        };
        let keep_classes = match json.get("keep_classes") {
            None => None,
            Some(arr) => Some(
                arr.as_arr()
                    .ok_or("keep_classes must be an array")?
                    .iter()
                    .map(|j| j.as_str().map(str::to_string).ok_or("bad class name"))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        Ok(FuzzCase {
            master_seed: parse_hex_u64(json, "master_seed")?,
            index: json.u64_field("index").ok_or("missing index")?,
            format,
            decompiler,
            workload,
            stack_workload,
            keep_classes,
            break_oracle: json
                .get("break_oracle")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            violation: json.str_field("violation").map(str::to_string),
        })
    }

    /// Loads a case file.
    pub fn load(path: &std::path::Path) -> Result<FuzzCase, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Writes the case file atomically.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        lbr_service::atomic_write_str(path, &(self.to_json().render() + "\n"))
    }
}

fn hex_u64(v: u64) -> Json {
    Json::str(format!("{v:016x}"))
}

fn hex_f64(v: f64) -> Json {
    hex_u64(v.to_bits())
}

fn pair(p: (usize, usize)) -> Json {
    Json::Arr(vec![Json::count(p.0 as u64), Json::count(p.1 as u64)])
}

fn bug_index(kind: BugKind) -> u64 {
    BugKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("every kind is in ALL") as u64
}

fn stack_bug_index(kind: StackBugKind) -> u64 {
    StackBugKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("every kind is in ALL") as u64
}

fn shape_index(shape: StackShape) -> u64 {
    StackShape::ALL
        .iter()
        .position(|s| *s == shape)
        .expect("every shape is in ALL") as u64
}

fn parse_shape(obj: &Json) -> Result<StackShape, String> {
    let idx = obj.u64_field("shape").ok_or("missing shape")? as usize;
    StackShape::ALL
        .get(idx)
        .copied()
        .ok_or_else(|| format!("shape index {idx} out of range"))
}

fn parse_stack_plant(obj: &Json) -> Result<Vec<StackBugKind>, String> {
    obj.get("plant")
        .and_then(Json::as_arr)
        .ok_or("missing plant")?
        .iter()
        .map(|j| {
            let idx = j.as_u64().ok_or("bad plant index")? as usize;
            StackBugKind::ALL
                .get(idx)
                .copied()
                .ok_or_else(|| format!("plant index {idx} out of range"))
        })
        .collect()
}

fn parse_hex_u64(obj: &Json, key: &str) -> Result<u64, String> {
    let s = obj.str_field(key).ok_or_else(|| format!("missing {key}"))?;
    u64::from_str_radix(s, 16).map_err(|_| format!("bad hex in {key}: {s:?}"))
}

fn parse_hex_f64(obj: &Json, key: &str) -> Result<f64, String> {
    parse_hex_u64(obj, key).map(f64::from_bits)
}

fn parse_usize(obj: &Json, key: &str) -> Result<usize, String> {
    obj.u64_field(key)
        .map(|v| v as usize)
        .ok_or_else(|| format!("missing {key}"))
}

fn parse_pair(obj: &Json, key: &str) -> Result<(usize, usize), String> {
    let arr = obj
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing {key}"))?;
    match arr {
        [a, b] => Ok((
            a.as_u64().ok_or_else(|| format!("bad {key}"))? as usize,
            b.as_u64().ok_or_else(|| format!("bad {key}"))? as usize,
        )),
        _ => Err(format!("{key} must be a two-element array")),
    }
}

fn parse_plant(obj: &Json) -> Result<Vec<BugKind>, String> {
    obj.get("plant")
        .and_then(Json::as_arr)
        .ok_or("missing plant")?
        .iter()
        .map(|j| {
            let idx = j.as_u64().ok_or("bad plant index")? as usize;
            BugKind::ALL
                .get(idx)
                .copied()
                .ok_or_else(|| format!("plant index {idx} out of range"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let a = FuzzCase::sampled(0xC0FFEE, 5, false);
        let b = FuzzCase::sampled(0xC0FFEE, 5, false);
        assert_eq!(a, b);
        assert_eq!(
            lbr_classfile::write_program(&a.program()),
            lbr_classfile::write_program(&b.program())
        );
        // Neighboring indices diverge.
        let c = FuzzCase::sampled(0xC0FFEE, 6, false);
        assert_ne!(a.workload.seed, c.workload.seed);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut case = FuzzCase::sampled(u64::MAX - 3, 11, true);
        case.keep_classes = Some(vec!["Cls0".into(), "Iface1".into()]);
        case.violation = Some("example".into());
        let rendered = case.to_json().render();
        let back = FuzzCase::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(case, back);
        // The program regenerates identically through the round trip.
        assert_eq!(
            lbr_classfile::write_program(&case.program()),
            lbr_classfile::write_program(&back.program())
        );
    }

    #[test]
    fn stackvm_json_round_trip_is_exact() {
        // Find a stackvm draw in the mixed stream so the test also pins
        // that `sampled_any` actually produces them.
        let case = (0..64)
            .map(|i| FuzzCase::sampled_any(0xC0FFEE, i, false, true))
            .find(|c| c.format == "stackvm")
            .expect("some case in 64 draws is stackvm");
        let mut case = case;
        case.keep_classes = Some(
            case.module()
                .functions
                .iter()
                .take(2)
                .map(|f| f.name.clone())
                .collect(),
        );
        case.violation = Some("example".into());
        let rendered = case.to_json().render();
        let back = FuzzCase::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(case, back);
        // The module regenerates identically through the round trip.
        assert_eq!(
            lbr_stackvm::write_module(&case.module()),
            lbr_stackvm::write_module(&back.module())
        );
    }

    #[test]
    fn no_stackvm_opt_out_draws_classfile_only() {
        for i in 0..64 {
            let case = FuzzCase::sampled_any(0xC0FFEE, i, false, false);
            assert_eq!(case.format, "classfile");
            assert!(case.stack_workload.is_none());
            // The classfile stream is unperturbed by the format draw.
            assert_eq!(case, FuzzCase::sampled(0xC0FFEE, i, false));
        }
    }

    #[test]
    fn rejects_foreign_and_corrupt_payloads() {
        assert!(FuzzCase::from_json(&Json::parse("{}").unwrap()).is_err());
        let mut case = FuzzCase::sampled(1, 0, false).to_json();
        if let Json::Obj(map) = &mut case {
            map.insert("decompiler".into(), Json::str("z"));
        }
        assert!(FuzzCase::from_json(&case).is_err());
    }
}
