//! Differential fuzzing for the whole reduction stack.
//!
//! Three PRs of optimization (watched-literal engine, speculative
//! parallel probing, the caching daemon) all promise the same thing:
//! *results never change, only speed*. This crate turns that promise into
//! a generative test. A seed-deterministic stream of random-but-valid
//! inputs — classfile programs and (one case in three) stackvm modules,
//! built on [`lbr_workload`]'s planners and [`lbr_prng`] — is pushed
//! through every progression — the GBR engine, the legacy scan baseline,
//! DPLL/MSA conditioning, the ddmin baseline, cold/warm/fault-injected
//! persistent caches, and the service daemon — and the results are
//! cross-checked against the invariants listed in [`run`] (and DESIGN.md
//! §Fuzzing architecture).
//!
//! On a violation the case is shrunk with our own [`lbr_core::ddmin`] at
//! item granularity and persisted as a replayable `FUZZ_CASE_*.json`
//! holding nothing but seeds and configuration — see [`FuzzCase`]. The
//! `fuzz` binary in `lbr-bench` drives [`run_campaign`] from the command
//! line and `--replay`s case files; ci.sh runs a bounded campaign as a
//! deterministic gate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod case;
mod run;
mod shrink;

pub use case::{bugset_by_name, stack_bugset_by_name, FuzzCase};
pub use run::{class_names, item_names, subprogram, CaseOutcome, Harness, COST_SECS};
pub use shrink::shrink_case;

use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Knobs of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed of the deterministic case stream.
    pub master_seed: u64,
    /// Stop once this much wall time has elapsed (after `min_cases`).
    pub budget: Duration,
    /// Never stop before this many eligible cases ran, budget or not —
    /// what makes a CI gate deterministic in coverage.
    pub min_cases: u64,
    /// Hard case-count cap (exact when set; overrides the budget).
    pub max_cases: Option<u64>,
    /// Arm the intentionally-broken oracle progression (self-test).
    pub break_oracle: bool,
    /// Mix stackvm cases into the stream (progression P12: roughly one
    /// case in three runs the second frontend through the identical
    /// generic progression body). `fuzz --no-stackvm` turns it off.
    pub stackvm: bool,
    /// Where `FUZZ_CASE_*.json` files for violations are written.
    pub out_dir: PathBuf,
    /// Print per-violation and progress lines to stderr.
    pub log: bool,
}

/// What a campaign did.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Eligible cases run through the progressions.
    pub cases_run: u64,
    /// Sampled cases skipped (oracle not failing).
    pub cases_skipped: u64,
    /// Total progressions exercised.
    pub progressions: u64,
    /// Total predicate calls of the reference runs.
    pub predicate_calls: u64,
    /// Cases that violated at least one invariant.
    pub violations: u64,
    /// Replayable case files written (one per violating case, capped).
    pub case_files: Vec<PathBuf>,
}

/// At most this many shrunk case files are persisted per campaign; a
/// systemic bug would otherwise flood the output directory.
const MAX_CASE_FILES: usize = 10;

/// Runs a campaign: sample → run every progression → on violation shrink
/// and persist. Deterministic in the sequence of cases; the budget only
/// decides how far past `min_cases` the stream is consumed.
pub fn run_campaign(config: &CampaignConfig, harness: &Harness) -> io::Result<CampaignSummary> {
    std::fs::create_dir_all(&config.out_dir)?;
    let started = Instant::now();
    let mut summary = CampaignSummary::default();
    let mut index = 0u64;
    loop {
        if let Some(max) = config.max_cases {
            if summary.cases_run >= max {
                break;
            }
        } else if summary.cases_run >= config.min_cases && started.elapsed() >= config.budget {
            break;
        }
        let case = FuzzCase::sampled_any(
            config.master_seed,
            index,
            config.break_oracle,
            config.stackvm,
        );
        index += 1;
        let outcome = harness.run_case(&case, true);
        if outcome.skipped {
            summary.cases_skipped += 1;
            continue;
        }
        summary.cases_run += 1;
        summary.progressions += outcome.progressions as u64;
        summary.predicate_calls += outcome.predicate_calls;
        if !outcome.violations.is_empty() {
            summary.violations += 1;
            let violation = outcome.violations.join("; ");
            if config.log {
                eprintln!(
                    "fuzz: case {} (seed {:016x}) VIOLATES: {violation}",
                    case.index, config.master_seed
                );
            }
            if summary.case_files.len() < MAX_CASE_FILES {
                if config.log {
                    eprintln!("fuzz: shrinking case {} …", case.index);
                }
                let shrunk = shrink_case(&case, harness, &violation);
                let path = config
                    .out_dir
                    .join(format!("FUZZ_CASE_{}.json", case.index));
                shrunk.save(&path)?;
                if config.log {
                    eprintln!(
                        "fuzz: shrunk to {} classes, wrote {}",
                        shrunk.keep_classes.as_ref().map_or(0, Vec::len),
                        path.display()
                    );
                }
                summary.case_files.push(path);
            }
        } else if config.log && summary.cases_run.is_multiple_of(50) {
            eprintln!(
                "fuzz: {} cases clean ({} progressions, {:.1}s)",
                summary.cases_run,
                summary.progressions,
                started.elapsed().as_secs_f64()
            );
        }
    }
    Ok(summary)
}
