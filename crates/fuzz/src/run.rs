//! The differential harness: one generated case, every progression, all
//! invariants cross-checked.
//!
//! The invariants (numbered here and in DESIGN.md §Fuzzing architecture):
//!
//! - **I1** every result still induces the oracle's full error message;
//! - **I2** every result verifies *and* survives a binary round trip
//!   (serialize → parse → equal → verify);
//! - **I3** no result is larger than its input;
//! - **I4** the GBR result, predicate-call count, and probe trace are
//!   bit-identical across the legacy scan engine, speculative probe
//!   threads, a cold persistent cache, that cache re-opened warm, a cache
//!   with injected I/O faults, and the service daemon;
//! - **I5** the logical reducer's result is never more than 25% larger
//!   than the ddmin baseline's (a regression tripwire: both reducers are
//!   heuristics and ddmin occasionally wins small cases by a few bytes,
//!   but GBR losing badly means the logical model stopped guiding the
//!   search);
//! - **I6** a warm cache actually answers probes (warm hits observed);
//! - **I7** cache faults only ever cost re-runs (subsumed by I4: the
//!   faulty run must equal the fault-free one);
//! - **I8** the CDCL engine agrees with legacy DPLL: the CDCL-backed
//!   session replays the reference search bit-identically (same reduced
//!   bytes, calls, trace), and on the case's logical model the two
//!   solvers return the same SAT verdict, the same lex-least model, and
//!   the same model count.
//!
//! The progression suite itself is generic over [`Input`], so the stackvm
//! frontend (progression P12) runs the exact same body — only the
//! frontend-specific pieces (parse, oracle, model build) differ, and the
//! broken-oracle self-test (P9) stays classfile-only.

use crate::case::FuzzCase;
use lbr_classfile::{verify_program, Program};
use lbr_cluster::{run_worker, ClusterServer, WorkerOptions};
use lbr_core::{EngineChoice, Input, InputOracle, TestOutcome};
use lbr_decompiler::DecompilerOracle;
use lbr_jreduce::{build_model, check_report, ReductionReport, ReductionSession, RunOptions};
use lbr_logic::{count_models, CdclEngine, Cnf, CountSession, Var, VarSet};
use lbr_service::{
    namespace_digest, Client, Daemon, DaemonConfig, FaultPlan, Json, PersistentOracleCache,
};
use lbr_stackvm::{build_stack_model, StackOracle};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The modeled per-probe cost, matching the service's default so daemon
/// traces are comparable.
pub const COST_SECS: f64 = 33.0;

/// The base session every progression starts from: the paper's reducer at
/// the service's modeled cost. Progressions differ only in the session
/// knobs they chain on top (strategy, options, an attached cache).
fn session<'s, I, O>(input: &'s I, oracle: &'s O) -> ReductionSession<'s, I, O>
where
    I: Input,
    O: InputOracle<I>,
{
    ReductionSession::new(input, oracle)
        .strategy("logical/greedy")
        .cost_per_call(COST_SECS)
}

/// The outcome of running one case through the progressions.
#[derive(Debug, Clone, Default)]
pub struct CaseOutcome {
    /// The case did not qualify (oracle not failing, or a shrunk subset
    /// that no longer verifies) and was not counted.
    pub skipped: bool,
    /// Invariant violations, empty on a clean case.
    pub violations: Vec<String>,
    /// Progressions exercised.
    pub progressions: usize,
    /// Predicate calls of the reference run (throughput reporting).
    pub predicate_calls: u64,
}

impl CaseOutcome {
    fn skipped() -> CaseOutcome {
        CaseOutcome {
            skipped: true,
            ..CaseOutcome::default()
        }
    }
}

struct DaemonHandle {
    client: Client,
    thread: JoinHandle<io::Result<()>>,
}

/// An in-process reduction cluster: a clustered coordinator daemon, its
/// worker-facing listener, and one worker node over loopback TCP.
struct ClusterHandle {
    client: Client,
    thread: JoinHandle<io::Result<()>>,
    server: Arc<ClusterServer>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<io::Result<()>>>,
}

/// Modeled probe latency for the cluster progression: just enough that
/// the worker node wins probe batches from the coordinator's inline
/// path, so the distributed merge is genuinely exercised.
const CLUSTER_LATENCY_MICROS: u64 = 500;

/// Owns the scratch directory and the optional in-process daemon the
/// progressions run against. One harness serves a whole fuzz run.
pub struct Harness {
    scratch: PathBuf,
    daemon: Option<DaemonHandle>,
    cluster: Option<ClusterHandle>,
    job_counter: std::cell::Cell<u64>,
}

impl Harness {
    /// Creates a harness with a fresh scratch directory (removed on drop).
    pub fn new(scratch: PathBuf) -> io::Result<Harness> {
        std::fs::create_dir_all(&scratch)?;
        Ok(Harness {
            scratch,
            daemon: None,
            cluster: None,
            job_counter: std::cell::Cell::new(0),
        })
    }

    /// Starts the in-process reduction daemon so `run_case` can exercise
    /// the service path.
    pub fn with_daemon(mut self) -> io::Result<Harness> {
        let state_dir = self.scratch.join("daemon");
        let daemon = Daemon::start(DaemonConfig::new(state_dir, 1))?;
        let client = Client::connect(daemon.local_addr().to_string());
        let thread = std::thread::spawn(move || daemon.run());
        if !client.wait_ready(Duration::from_secs(5)) {
            return Err(io::Error::other("daemon did not become ready"));
        }
        self.daemon = Some(DaemonHandle { client, thread });
        Ok(self)
    }

    /// Whether the daemon progression is available.
    pub fn has_daemon(&self) -> bool {
        self.daemon.is_some()
    }

    /// Starts an in-process reduction cluster (clustered coordinator plus
    /// one worker node over loopback TCP) so `run_case` can exercise the
    /// distributed path.
    pub fn with_cluster(mut self) -> io::Result<Harness> {
        let state_dir = self.scratch.join("cluster");
        std::fs::create_dir_all(&state_dir)?;
        let cache = Arc::new(PersistentOracleCache::open(state_dir.join("oracle.cache"))?);
        let server = ClusterServer::start(&state_dir, Arc::clone(&cache), 4)?;
        let daemon = Daemon::start_clustered(
            DaemonConfig::new(state_dir, 1),
            cache,
            Arc::clone(&server) as _,
        )?;
        let client = Client::connect(daemon.local_addr().to_string());
        let thread = std::thread::spawn(move || daemon.run());
        if !client.wait_ready(Duration::from_secs(5)) {
            return Err(io::Error::other("clustered daemon did not become ready"));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut options = WorkerOptions::new(server.local_addr().to_string(), "fuzz-worker");
        options.stop = Some(Arc::clone(&stop));
        let workers = vec![std::thread::spawn(move || run_worker(&options))];
        self.cluster = Some(ClusterHandle {
            client,
            thread,
            server,
            stop,
            workers,
        });
        Ok(self)
    }

    /// Whether the cluster progression is available.
    pub fn has_cluster(&self) -> bool {
        self.cluster.is_some()
    }

    /// Runs `case` through every progression and cross-checks the
    /// invariants. `with_daemon` additionally routes the case through the
    /// service (ignored if the harness has no daemon); the shrinker turns
    /// it off to keep ddmin probes cheap.
    ///
    /// Stackvm cases (P12) run the identical generic progression body
    /// with the stackvm frontend's parser, oracle, and logical model;
    /// only the broken-oracle self-test (P9) is classfile-specific.
    pub fn run_case(&self, case: &FuzzCase, with_daemon: bool) -> CaseOutcome {
        if case.format == "stackvm" {
            let module = case.module();
            if !module.validate().is_empty() {
                return CaseOutcome::skipped();
            }
            let oracle = StackOracle::new(&module, case.stack_bugs());
            if !oracle.is_failing() {
                return CaseOutcome::skipped();
            }
            let cnf = build_stack_model(&module)
                .map(|m| m.cnf)
                .map_err(|e| e.to_string());
            return self.run_progressions(case, &module, &oracle, cnf, with_daemon);
        }

        let program = case.program();
        if !verify_program(&program).is_empty() {
            return CaseOutcome::skipped();
        }
        let oracle = DecompilerOracle::new(&program, case.bugs());
        if !oracle.is_failing() {
            return CaseOutcome::skipped();
        }
        let cnf = build_model(&program)
            .map(|m| m.cnf)
            .map_err(|e| e.to_string());
        let mut out = self.run_progressions(case, &program, &oracle, cnf, with_daemon);

        // P9 (armed by `fuzz --break-oracle`): a deliberately lying
        // predicate that accepts any verifying subprogram. The harness
        // must catch its result losing the error message — this is the
        // self-test that proves violations are detected and shrunk.
        if case.break_oracle {
            out.progressions += 1;
            let reduced = broken_oracle_reduce(&program);
            if !oracle.preserves_failure(&reduced) {
                out.violations.push(format!(
                    "I1 broken-oracle: result ({} classes) loses the error message",
                    reduced.len()
                ));
            }
        }

        out
    }

    /// The format-generic progression body: P0–P8 plus the CDCL (P10)
    /// and cluster (P11) replays, cross-checked under I1–I8. `cnf` is
    /// the frontend's logical model for the direct solver-agreement leg
    /// of I8 (an `Err` is itself a violation — the input verified, so
    /// the model must build).
    fn run_progressions<I, O>(
        &self,
        case: &FuzzCase,
        input: &I,
        oracle: &O,
        cnf: Result<Cnf, String>,
        with_daemon: bool,
    ) -> CaseOutcome
    where
        I: Input,
        O: InputOracle<I>,
    {
        let mut out = CaseOutcome::default();

        // P0: the reference — GBR over the logical model, default options.
        let reference = match session(input, oracle).run() {
            Ok(report) => report,
            Err(e) => {
                out.violations.push(format!("reference run failed: {e}"));
                return out;
            }
        };
        out.progressions += 1;
        out.predicate_calls = reference.predicate_calls;
        soundness("I1-I3 reference", &reference, &mut out.violations);

        // P1+P2: sessions that must replay the identical search (I4) —
        // the legacy scan engine, and speculative parallel probing (which
        // may change nothing but speed).
        let identical: [(&str, RunOptions); 2] = [
            ("legacy-scan", RunOptions::legacy()),
            (
                "probe-threads-2",
                RunOptions {
                    probe_threads: 2,
                    ..RunOptions::default()
                },
            ),
        ];
        for (tag, options) in identical {
            self.identical_to(input, oracle, &reference, tag, &options, &mut out);
        }

        // P10 (I8): the CDCL engine — bit-identical session replay plus
        // direct solver agreement on the case's logical model.
        self.cdcl_progression(input, oracle, &cnf, &reference, &mut out);

        // P3: the DPLL-conditioned MSA strategy — its own sound result
        // (a different search, so no bit-identity with the reference).
        match session(input, oracle).strategy("logical/dpll+min").run() {
            Ok(report) => {
                out.progressions += 1;
                soundness("I1-I3 dpll-minimize", &report, &mut out.violations);
            }
            Err(e) => out
                .violations
                .push(format!("dpll-minimize run failed: {e}")),
        }

        // P13–P15: the baseline zoo from the strategy registry — HDD over
        // the containment tree, transformation passes before GBR, and the
        // trace-guided GBR mode. Each is its own search (no bit-identity
        // with the reference), checked for soundness (I1–I3).
        for (tag, name) in [
            ("hdd", "hdd"),
            ("transform", "transform"),
            ("trace-guided", "logical/trace-guided"),
        ] {
            match session(input, oracle).strategy(name).run() {
                Ok(report) => {
                    out.progressions += 1;
                    soundness(&format!("I1-I3 {tag}"), &report, &mut out.violations);
                }
                Err(e) => out.violations.push(format!("{tag} run failed: {e}")),
            }
        }

        // P4: the ddmin baseline — sound, and never beaten by GBR (I5).
        match session(input, oracle).strategy("ddmin-items").run() {
            Ok(report) => {
                out.progressions += 1;
                soundness("I1-I3 ddmin-items", &report, &mut out.violations);
                // I5 is a regression tripwire, not a theorem: both
                // reducers are heuristics, and on tiny programs ddmin
                // occasionally wins by a handful of bytes (fuzzing found
                // such cases immediately — see tests/fuzz_regressions/).
                // What must never happen is GBR losing *badly*: that
                // would mean the logical model stopped guiding the
                // search.
                let bound = report.final_metrics.bytes + report.final_metrics.bytes / 4;
                if reference.final_metrics.bytes > bound {
                    out.violations.push(format!(
                        "I5: GBR result ({} bytes) more than 25% above the ddmin baseline ({} bytes)",
                        reference.final_metrics.bytes, report.final_metrics.bytes
                    ));
                }
            }
            Err(e) => out.violations.push(format!("ddmin-items run failed: {e}")),
        }

        // P5+P6: cold persistent cache, then the same cache re-opened warm.
        self.cache_progressions(case, input, oracle, &reference, &mut out);

        // P7: a cache with injected I/O faults must degrade to misses,
        // never to a different result.
        self.faulty_cache_progression(case, input, oracle, &reference, &mut out);

        // P8: the daemon path — submit the container, compare the result
        // file bit for bit.
        if with_daemon {
            if let Some(daemon) = &self.daemon {
                self.service_progression(
                    &daemon.client,
                    "daemon",
                    0,
                    case,
                    input,
                    &reference,
                    &mut out,
                );
            }
            // P11: the distributed cluster — the same container through a
            // clustered coordinator with a TCP worker node must replay
            // the reference bit-identically; this is the ordered-verdict
            // merge (and the shared cache tier) under the same I1–I8
            // cross-checks as the single-host daemon.
            if let Some(cluster) = &self.cluster {
                self.service_progression(
                    &cluster.client,
                    "cluster",
                    CLUSTER_LATENCY_MICROS,
                    case,
                    input,
                    &reference,
                    &mut out,
                );
            }
        }

        out
    }

    /// Re-runs the reference strategy under different `options` and
    /// asserts bit-identity (I4).
    fn identical_to<I, O>(
        &self,
        input: &I,
        oracle: &O,
        reference: &ReductionReport<I>,
        tag: &str,
        options: &RunOptions,
        out: &mut CaseOutcome,
    ) where
        I: Input,
        O: InputOracle<I>,
    {
        match session(input, oracle).options(*options).run() {
            Ok(report) => {
                out.progressions += 1;
                diff_reports("I4", tag, reference, &report, &mut out.violations);
            }
            Err(e) => out.violations.push(format!("{tag} run failed: {e}")),
        }
    }

    /// I8: the CDCL progression. The CDCL-backed session must replay the
    /// DPLL reference bit-identically (both engines compute the same
    /// lex-least model, so only solver effort may differ), and on the
    /// case's logical model the two solvers must agree directly — same
    /// SAT verdict, same model, same model count (with and without CDCL
    /// component probes).
    fn cdcl_progression<I, O>(
        &self,
        input: &I,
        oracle: &O,
        cnf: &Result<Cnf, String>,
        reference: &ReductionReport<I>,
        out: &mut CaseOutcome,
    ) where
        I: Input,
        O: InputOracle<I>,
    {
        let options = RunOptions {
            engine: EngineChoice::Cdcl,
            ..RunOptions::default()
        };
        match session(input, oracle).options(options).run() {
            Ok(report) => {
                out.progressions += 1;
                if !report.strategy.ends_with("+cdcl") {
                    out.violations.push(format!(
                        "I8 cdcl-engine: strategy label {:?} is missing +cdcl",
                        report.strategy
                    ));
                }
                diff_reports("I8", "cdcl-engine", reference, &report, &mut out.violations);
            }
            Err(e) => out.violations.push(format!("cdcl-engine run failed: {e}")),
        }
        let cnf = match cnf {
            Ok(cnf) => cnf,
            Err(e) => {
                out.violations.push(format!("I8: model build failed: {e}"));
                return;
            }
        };
        let order = lbr_core::closure_size_order(cnf);
        let dpll = lbr_logic::dpll::solve(cnf, &order);
        let mut engine = CdclEngine::new(cnf, cnf.num_vars());
        let cdcl = engine.solve(&order, &[]);
        if dpll != cdcl {
            out.violations.push(format!(
                "I8: solvers disagree on the model (dpll {:?}, cdcl {:?})",
                dpll, cdcl
            ));
        }
        // Model-count agreement only on small formulas: the counter's u128
        // total overflows past 2^128 models, and counting is exponential in
        // the worst case, so large cases would also blow the time budget.
        if cnf.num_vars() <= 64 {
            let plain = count_models(cnf);
            let probed = CountSession::new().with_cdcl_probes(true).count(cnf);
            if plain != probed {
                out.violations.push(format!(
                    "I8: model counts disagree (plain {plain}, cdcl-probed {probed})"
                ));
            }
        }
    }

    fn cache_progressions<I, O>(
        &self,
        case: &FuzzCase,
        input: &I,
        oracle: &O,
        reference: &ReductionReport<I>,
        out: &mut CaseOutcome,
    ) where
        I: Input,
        O: InputOracle<I>,
    {
        let path = self
            .scratch
            .join(format!("cache-{:016x}-{}", case.master_seed, case.index));
        let namespace = namespace_digest(&case.decompiler, &input.to_bytes());
        let run_with_cache = |cache: &PersistentOracleCache| {
            let scoped = cache.namespaced(namespace);
            session(input, oracle).cache(&scoped).run()
        };
        let cold_cache = match PersistentOracleCache::open(&path) {
            Ok(cache) => cache,
            Err(e) => {
                out.violations.push(format!("cold cache open failed: {e}"));
                return;
            }
        };
        match run_with_cache(&cold_cache) {
            Ok(report) => {
                out.progressions += 1;
                diff_reports("I4", "cold-cache", reference, &report, &mut out.violations);
            }
            Err(e) => out.violations.push(format!("cold-cache run failed: {e}")),
        }
        if let Err(e) = cold_cache.save_if_dirty() {
            out.violations.push(format!("cache save failed: {e}"));
            return;
        }
        let warm_cache = match PersistentOracleCache::open(&path) {
            Ok(cache) => cache,
            Err(e) => {
                out.violations.push(format!("warm cache open failed: {e}"));
                return;
            }
        };
        match run_with_cache(&warm_cache) {
            Ok(report) => {
                out.progressions += 1;
                diff_reports("I4", "warm-cache", reference, &report, &mut out.violations);
                if warm_cache.stats().warm_hits == 0 {
                    out.violations
                        .push("I6 warm-cache: no probe was answered from disk".to_string());
                }
            }
            Err(e) => out.violations.push(format!("warm-cache run failed: {e}")),
        }
        let _ = std::fs::remove_file(&path);
    }

    fn faulty_cache_progression<I, O>(
        &self,
        case: &FuzzCase,
        input: &I,
        oracle: &O,
        reference: &ReductionReport<I>,
        out: &mut CaseOutcome,
    ) where
        I: Input,
        O: InputOracle<I>,
    {
        let path = self
            .scratch
            .join(format!("faulty-{:016x}-{}", case.master_seed, case.index));
        let cache = match PersistentOracleCache::open(&path) {
            Ok(cache) => cache,
            Err(e) => {
                out.violations
                    .push(format!("faulty cache open failed: {e}"));
                return;
            }
        };
        cache.inject_faults(FaultPlan {
            rate: 0.4,
            seed: FuzzCase::case_seed(case.master_seed, case.index) ^ 0xFA_17,
        });
        let namespace = namespace_digest(&case.decompiler, &input.to_bytes());
        let scoped = cache.namespaced(namespace);
        match session(input, oracle).cache(&scoped).run() {
            Ok(report) => {
                out.progressions += 1;
                diff_reports(
                    "I4",
                    "faulty-cache",
                    reference,
                    &report,
                    &mut out.violations,
                );
            }
            Err(e) => out.violations.push(format!("faulty-cache run failed: {e}")),
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Runs `case` through a service front door (`client`) and compares
    /// the job result against the in-process `reference` run: exact
    /// predicate-call count, trace digest, and output bytes (I4). Both
    /// the single-host daemon (`tag = "daemon"`, zero latency) and the
    /// clustered coordinator (`tag = "cluster"`, enough modeled probe
    /// latency that the TCP worker actually participates) go through
    /// here; the job spec carries the case's format tag so the daemon
    /// picks the matching frontend.
    #[allow(clippy::too_many_arguments)]
    fn service_progression<I: Input>(
        &self,
        client: &Client,
        tag: &str,
        latency_micros: u64,
        case: &FuzzCase,
        input: &I,
        reference: &ReductionReport<I>,
        out: &mut CaseOutcome,
    ) {
        let job = self.job_counter.get();
        self.job_counter.set(job + 1);
        let input_path = self.scratch.join(format!("job-{job}.lbrc"));
        let output = self.scratch.join(format!("job-{job}-out.lbrc"));
        if let Err(e) = std::fs::write(&input_path, input.to_bytes()) {
            out.violations
                .push(format!("{tag} input write failed: {e}"));
            return;
        }
        let mut fields = vec![
            ("input", Json::str(input_path.display().to_string())),
            ("output", Json::str(output.display().to_string())),
            ("decompiler", Json::str(&case.decompiler)),
            ("format", Json::str(I::FORMAT)),
        ];
        if latency_micros > 0 {
            fields.push(("probe_latency_micros", Json::count(latency_micros)));
        }
        let spec = Json::obj_from(fields);
        let result = client.submit(&spec).and_then(|id| client.wait_result(id));
        let result = match result {
            Ok(result) => result,
            Err(e) => {
                out.violations.push(format!("{tag} job failed: {e}"));
                return;
            }
        };
        out.progressions += 1;
        let v = &mut out.violations;
        if result.str_field("status") != Some("done") {
            v.push(format!(
                "{tag}: job ended {:?} ({:?})",
                result.str_field("status"),
                result.str_field("error")
            ));
            return;
        }
        if result.u64_field("predicate_calls") != Some(reference.predicate_calls) {
            v.push(format!(
                "I4 {tag}: {:?} predicate calls, reference made {}",
                result.u64_field("predicate_calls"),
                reference.predicate_calls
            ));
        }
        let expected_digest = format!("{:016x}", reference.trace.digest());
        if result.str_field("trace_digest") != Some(expected_digest.as_str()) {
            v.push(format!(
                "I4 {tag}: trace digest {:?}, reference {expected_digest}",
                result.str_field("trace_digest")
            ));
        }
        match std::fs::read(&output) {
            Ok(bytes) if bytes == reference.reduced.to_bytes() => {}
            Ok(_) => v.push(format!("I4 {tag}: output bytes differ from the reference")),
            Err(e) => v.push(format!("{tag} output unreadable: {e}")),
        }
        let _ = std::fs::remove_file(&input_path);
        let _ = std::fs::remove_file(&output);
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        if let Some(daemon) = self.daemon.take() {
            let _ = daemon.client.shutdown();
            let _ = daemon.thread.join();
        }
        if let Some(cluster) = self.cluster.take() {
            cluster.stop.store(true, Ordering::SeqCst);
            let _ = cluster.client.shutdown();
            for worker in cluster.workers {
                let _ = worker.join();
            }
            cluster.server.shutdown();
            let _ = cluster.thread.join();
        }
        let _ = std::fs::remove_dir_all(&self.scratch);
    }
}

/// The sorted class names of a program.
pub fn class_names(program: &Program) -> Vec<String> {
    program.names().map(str::to_string).collect()
}

/// The shrinkable item names of a case's input: class names for a
/// classfile case, function and global names for a stackvm case. These
/// are the atoms the shrinker's ddmin deletes (via `keep_classes`).
pub fn item_names(case: &FuzzCase) -> Vec<String> {
    if case.format == "stackvm" {
        let module = case.module();
        module
            .functions
            .iter()
            .map(|f| f.name.clone())
            .chain(module.globals.iter().map(|g| g.name.clone()))
            .collect()
    } else {
        class_names(&case.program())
    }
}

/// The subprogram keeping exactly the classes of `names` selected by
/// `set`.
pub fn subprogram(program: &Program, names: &[String], set: &VarSet) -> Program {
    let mut sub = program.clone();
    for (i, name) in names.iter().enumerate() {
        if !set.contains(Var::new(i as u32)) {
            sub.remove(name);
        }
    }
    sub
}

/// The "reducer" driven by an intentionally-broken oracle: its predicate
/// accepts *any* verifying subprogram — it never checks the error message
/// — so class-level ddmin happily deletes everything. The surrounding
/// invariant check must catch the lie.
fn broken_oracle_reduce(program: &Program) -> Program {
    let names = class_names(program);
    let universe = names.len();
    let atoms: Vec<VarSet> = (0..universe)
        .map(|i| VarSet::from_iter_with_universe(universe, [Var::new(i as u32)]))
        .collect();
    let (kept, _) = lbr_core::ddmin(&atoms, universe, |set: &VarSet| {
        let sub = subprogram(program, &names, set);
        if verify_program(&sub).is_empty() {
            TestOutcome::Fail
        } else {
            TestOutcome::Unresolved
        }
    });
    subprogram(program, &names, &kept)
}

/// Appends a violation for every invariant of [`check_report`] the report
/// breaks (I1: error preserved, I2: verifies + binary round trip, I3: not
/// grown).
fn soundness<I: Input>(tag: &str, report: &ReductionReport<I>, violations: &mut Vec<String>) {
    if let Err(e) = check_report(report) {
        violations.push(format!("{tag}: {e}"));
    }
}

/// Appends violations under invariant `inv` (I4 for the replay
/// progressions, I8 for the CDCL engine) wherever `report` differs from
/// `reference` in result bytes, predicate calls, or the deterministic
/// probe trace.
fn diff_reports<I: Input>(
    inv: &str,
    tag: &str,
    reference: &ReductionReport<I>,
    report: &ReductionReport<I>,
    violations: &mut Vec<String>,
) {
    if report.reduced.to_bytes() != reference.reduced.to_bytes() {
        violations.push(format!(
            "{inv} {tag}: reduced bytes differ from the reference"
        ));
    }
    if report.predicate_calls != reference.predicate_calls {
        violations.push(format!(
            "{inv} {tag}: {} predicate calls, reference made {}",
            report.predicate_calls, reference.predicate_calls
        ));
    }
    if !report.trace.same_probe_sequence(&reference.trace) {
        violations.push(format!(
            "{inv} {tag}: probe trace diverges from the reference"
        ));
    }
}
