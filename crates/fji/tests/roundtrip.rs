//! Property test: pretty-printing any FJI AST and re-parsing yields the
//! same AST.

use lbr_fji::{parse_expr, parse_program, pretty, pretty_expr, Expr, Program};
use lbr_fji::{ClassDecl, Constructor, Field, InterfaceDecl, Method, Signature, TypeDecl};
use proptest::prelude::*;

const KEYWORDS: [&str; 8] = [
    "class", "extends", "implements", "interface", "return", "new", "super", "this",
];

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,5}".prop_filter("not a keyword", |s| !KEYWORDS.contains(&s.as_str()))
}

fn arb_type_name() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,5}".prop_filter("not a keyword", |s| !KEYWORDS.contains(&s.as_str()))
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_ident().prop_map(Expr::Var),
        Just(Expr::this()),
        arb_type_name().prop_map(|c| Expr::New(c, vec![])),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), arb_ident()).prop_map(|(e, f)| e.field(f)),
            (inner.clone(), arb_ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(e, m, args)| e.call(m, args)),
            (arb_type_name(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(c, args)| Expr::New(c, args)),
            (arb_type_name(), inner).prop_map(|(t, e)| e.cast(t)),
        ]
    })
}

fn arb_params() -> impl Strategy<Value = Vec<Field>> {
    prop::collection::vec(
        (arb_type_name(), arb_ident()).prop_map(|(t, n)| Field::new(t, n)),
        0..3,
    )
}

fn arb_class() -> impl Strategy<Value = ClassDecl> {
    (
        arb_type_name(),
        arb_type_name(),
        arb_type_name(),
        arb_params(), // fields
        arb_params(), // ctor params
        prop::collection::vec(arb_ident(), 0..2),
        prop::collection::vec(
            (arb_type_name(), arb_ident(), arb_params(), arb_expr())
                .prop_map(|(ret, name, params, body)| Method { ret, name, params, body }),
            0..3,
        ),
    )
        .prop_map(|(name, superclass, interface, fields, cparams, super_args, methods)| {
            let inits = fields
                .iter()
                .map(|f| (f.name.clone(), f.name.clone()))
                .collect();
            ClassDecl {
                name,
                superclass,
                interface,
                fields,
                ctor: Constructor {
                    params: cparams,
                    super_args,
                    inits,
                },
                methods,
            }
        })
}

fn arb_interface() -> impl Strategy<Value = InterfaceDecl> {
    (
        arb_type_name(),
        prop::collection::vec(
            (arb_type_name(), arb_ident(), arb_params())
                .prop_map(|(ret, name, params)| Signature { ret, name, params }),
            0..3,
        ),
    )
        .prop_map(|(name, sigs)| InterfaceDecl { name, sigs })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(
            prop_oneof![
                arb_class().prop_map(TypeDecl::Class),
                arb_interface().prop_map(TypeDecl::Interface),
            ],
            0..4,
        ),
        arb_expr(),
    )
        .prop_map(|(decls, main)| Program { decls, main })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_roundtrip(e in arb_expr()) {
        let printed = pretty_expr(&e);
        let back = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of {printed:?} failed: {err}"));
        prop_assert_eq!(back, e, "printed: {}", printed);
    }

    #[test]
    fn program_roundtrip(p in arb_program()) {
        let printed = pretty(&p);
        let back = parse_program(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        prop_assert_eq!(back, p, "printed:\n{}", printed);
    }
}
