//! Randomized property test: pretty-printing any FJI AST and re-parsing
//! yields the same AST. Driven by the workspace's internal seeded PRNG so
//! the test runs offline; each case is reproducible from its printed seed.

use lbr_fji::{parse_expr, parse_program, pretty, pretty_expr, Expr, Program};
use lbr_fji::{ClassDecl, Constructor, Field, InterfaceDecl, Method, Signature, TypeDecl};
use lbr_prng::{SliceChoose, SplitMix64};

const KEYWORDS: [&str; 8] = [
    "class",
    "extends",
    "implements",
    "interface",
    "return",
    "new",
    "super",
    "this",
];

const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const LOWER_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
const UPPER: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

fn rand_word(rng: &mut SplitMix64, first: &[u8], rest: &[u8]) -> String {
    loop {
        let len = rng.gen_range(0..=5usize);
        let mut s = String::new();
        s.push(*first.choose(rng).unwrap() as char);
        for _ in 0..len {
            s.push(*rest.choose(rng).unwrap() as char);
        }
        if !KEYWORDS.contains(&s.as_str()) {
            return s;
        }
    }
}

fn rand_ident(rng: &mut SplitMix64) -> String {
    rand_word(rng, LOWER, LOWER_REST)
}

fn rand_type_name(rng: &mut SplitMix64) -> String {
    rand_word(rng, UPPER, ALNUM)
}

/// A random expression with at most `depth` levels of nesting.
fn rand_expr(rng: &mut SplitMix64, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..3u32) {
            0 => Expr::Var(rand_ident(rng)),
            1 => Expr::this(),
            _ => Expr::New(rand_type_name(rng), vec![]),
        };
    }
    let args = |rng: &mut SplitMix64, depth| -> Vec<Expr> {
        (0..rng.gen_range(0..3usize))
            .map(|_| rand_expr(rng, depth))
            .collect()
    };
    match rng.gen_range(0..4u32) {
        0 => rand_expr(rng, depth - 1).field(rand_ident(rng)),
        1 => {
            let recv = rand_expr(rng, depth - 1);
            let m = rand_ident(rng);
            let a = args(rng, depth - 1);
            recv.call(m, a)
        }
        2 => {
            let c = rand_type_name(rng);
            let a = args(rng, depth - 1);
            Expr::New(c, a)
        }
        _ => rand_expr(rng, depth - 1).cast(rand_type_name(rng)),
    }
}

fn rand_params(rng: &mut SplitMix64) -> Vec<Field> {
    (0..rng.gen_range(0..3usize))
        .map(|_| Field::new(rand_type_name(rng), rand_ident(rng)))
        .collect()
}

fn rand_class(rng: &mut SplitMix64) -> ClassDecl {
    let name = rand_type_name(rng);
    let superclass = rand_type_name(rng);
    let interface = rand_type_name(rng);
    let fields = rand_params(rng);
    let cparams = rand_params(rng);
    let super_args = (0..rng.gen_range(0..2usize))
        .map(|_| rand_ident(rng))
        .collect();
    let methods = (0..rng.gen_range(0..3usize))
        .map(|_| Method {
            ret: rand_type_name(rng),
            name: rand_ident(rng),
            params: rand_params(rng),
            body: rand_expr(rng, 3),
        })
        .collect();
    let inits = fields
        .iter()
        .map(|f| (f.name.clone(), f.name.clone()))
        .collect();
    ClassDecl {
        name,
        superclass,
        interface,
        fields,
        ctor: Constructor {
            params: cparams,
            super_args,
            inits,
        },
        methods,
    }
}

fn rand_interface(rng: &mut SplitMix64) -> InterfaceDecl {
    InterfaceDecl {
        name: rand_type_name(rng),
        sigs: (0..rng.gen_range(0..3usize))
            .map(|_| Signature {
                ret: rand_type_name(rng),
                name: rand_ident(rng),
                params: rand_params(rng),
            })
            .collect(),
    }
}

fn rand_program(rng: &mut SplitMix64) -> Program {
    let decls = (0..rng.gen_range(0..4usize))
        .map(|_| {
            if rng.gen_bool(0.5) {
                TypeDecl::Class(rand_class(rng))
            } else {
                TypeDecl::Interface(rand_interface(rng))
            }
        })
        .collect();
    Program {
        decls,
        main: rand_expr(rng, 3),
    }
}

#[test]
fn expr_roundtrip() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let e = rand_expr(&mut rng, 3);
        let printed = pretty_expr(&e);
        let back = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("seed {seed}: reparse of {printed:?} failed: {err}"));
        assert_eq!(back, e, "seed {seed}: printed: {printed}");
    }
}

#[test]
fn program_roundtrip() {
    for seed in 1000..1256u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let p = rand_program(&mut rng);
        let printed = pretty(&p);
        let back = parse_program(&printed)
            .unwrap_or_else(|err| panic!("seed {seed}: reparse failed: {err}\n{printed}"));
        assert_eq!(back, p, "seed {seed}: printed:\n{printed}");
    }
}
