//! The running example of the paper (Figures 1–3).
//!
//! [`figure1_program`] is the input program of Figure 1a, expressed in FJI
//! exactly as Section 3 prescribes: every class extends `Object`,
//! constructors are canonical, `M` implicitly implements `EmptyInterface`,
//! and `String` is a preserved built-in. [`figure2_cnf`] is the constraint
//! set of Figure 2 transcribed by hand; the crate's tests verify the
//! type checker generates an equivalent model with exactly 6,766 valid
//! sub-inputs, of which [`figure1b_solution`] is the minimum.

use crate::ast::Program;
use crate::parser::parse_program;
use crate::vars::{Item, ItemRegistry};
use lbr_logic::{Clause, Cnf, Lit, Var, VarSet};

/// Source text of the Figure 1a input program.
pub const FIGURE1_SOURCE: &str = "
class A extends Object implements I {
  A() { super(); }
  String m() { return this.m(); }
  B n() { return new B(); }
}
class B extends Object implements I {
  B() { super(); }
  String m() { return this.m(); }
  B n() { return new B(); }
}
interface I {
  String m();
  B n();
}
class M extends Object implements EmptyInterface {
  M() { super(); }
  String x(I a) { return a.m(); }
  String main() { return new M().x(new A()); }
}
new M().main();
";

/// The input program of Figure 1a.
///
/// # Panics
///
/// Never panics — the embedded source is well-formed (tested).
pub fn figure1_program() -> Program {
    parse_program(FIGURE1_SOURCE).expect("the Figure 1a source is well-formed")
}

/// Looks up the paper's 20 variables in registry order.
fn item(name: &str) -> Item {
    match name {
        "A" | "B" | "M" => Item::Class(name.to_owned()),
        "I" => Item::Interface("I".to_owned()),
        "A<I" => Item::Impl("A".into(), "I".into()),
        "B<I" => Item::Impl("B".into(), "I".into()),
        _ => {
            let (owner, rest) = name.split_once('.').expect("owner.member");
            let (method, bang) = match rest.split_once('!') {
                Some((m, _)) => (m, true),
                None => (rest, false),
            };
            let method = method.trim_end_matches("()");
            if bang {
                Item::MethodCode(owner.to_owned(), method.to_owned())
            } else if owner == "I" {
                Item::Signature(owner.to_owned(), method.to_owned())
            } else {
                Item::Method(owner.to_owned(), method.to_owned())
            }
        }
    }
}

/// Resolves a paper-style variable name (e.g. `"A.m()!code"`) against the
/// registry of [`figure1_program`].
pub fn figure2_var(reg: &ItemRegistry, name: &str) -> Var {
    reg.var(&item(name))
        .unwrap_or_else(|| panic!("unknown figure-2 variable {name}"))
}

/// The dependency constraints of Figure 2 *without* the final requirement
/// `[M.main()!code]` — the model whose satisfying assignments are the
/// 6,766 valid sub-inputs the paper counts with sharpSAT.
pub fn figure2_dependency_cnf(reg: &ItemRegistry) -> Cnf {
    let full = figure2_cnf(reg);
    let mut out = Cnf::new(reg.len());
    for c in full.clauses() {
        if c.len() > 1 {
            out.add_clause(c.clone());
        }
    }
    out
}

/// The dependency constraints of Figure 2, including the final requirement
/// `[M.main()!code]`, as a CNF over the registry of [`figure1_program`].
pub fn figure2_cnf(reg: &ItemRegistry) -> Cnf {
    let v = |name: &str| figure2_var(reg, name);
    let edge = |from: &str, to: &str| Clause::edge(v(from), v(to));
    let mut cnf = Cnf::new(reg.len());

    // Syntactic dependencies.
    for (from, to) in [
        ("A.n()!code", "A.n()"),
        ("A.n()", "A"),
        ("A.m()!code", "A.m()"),
        ("A.m()", "A"),
        ("B.n()!code", "B.n()"),
        ("B.n()", "B"),
        ("B.m()!code", "B.m()"),
        ("B.m()", "B"),
        ("A<I", "A"),
        ("B<I", "B"),
        ("I.m()", "I"),
        ("I.n()", "I"),
        ("M.x()!code", "M.x()"),
        ("M.x()", "M"),
        ("M.main()!code", "M.main()"),
        ("M.main()", "M"),
    ] {
        cnf.add_clause(edge(from, to));
    }

    // Referential semantic dependencies.
    for (from, to) in [
        ("A<I", "I"),
        ("B<I", "I"),
        ("A.n()", "B"),
        ("B.n()", "B"),
        ("I.n()", "B"),
        ("M.x()", "I"),
        ("M.x()!code", "I.m()"),
        ("M.x()!code", "I"),
        ("M.main()!code", "M.x()"),
        ("M.main()!code", "A"),
        ("M.main()!code", "M"),
    ] {
        cnf.add_clause(edge(from, to));
    }

    // Non-referential semantic dependencies.
    for (c_impl, sig, method) in [
        ("A<I", "I.m()", "A.m()"),
        ("A<I", "I.n()", "A.n()"),
        ("B<I", "I.m()", "B.m()"),
        ("B<I", "I.n()", "B.n()"),
    ] {
        cnf.add_clause(Clause::implication([v(c_impl), v(sig)], [v(method)]));
    }
    cnf.add_clause(edge("M.main()!code", "A<I"));
    cnf.add_clause(Clause::unit(Lit::pos(v("M.main()!code"))));
    cnf
}

/// The optimal reduction of Figure 1b, as the paper lists it: all of `M`,
/// class `A` with `m` (and its code) and the implements relation, and
/// interface `I` with signature `m`.
pub fn figure1b_solution(reg: &ItemRegistry) -> VarSet {
    let names = [
        "A<I",
        "A.m()",
        "A.m()!code",
        "A",
        "I.m()",
        "I",
        "M.x()!code",
        "M.x()",
        "M.main()!code",
        "M.main()",
        "M",
    ];
    let mut s = VarSet::empty(reg.len());
    for n in names {
        s.insert(figure2_var(reg, n));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::typecheck;

    #[test]
    fn program_parses_and_has_20_variables() {
        let p = figure1_program();
        let reg = ItemRegistry::from_program(&p);
        assert_eq!(reg.len(), 20, "the paper counts 20 separate items");
    }

    #[test]
    fn program_type_checks() {
        let p = figure1_program();
        let reg = ItemRegistry::from_program(&p);
        typecheck(&p, &reg).expect("Figure 1a type checks");
    }

    #[test]
    fn figure2_has_33_constraints() {
        // 32 + 1 duplicate; our transcription keeps the duplicate
        // ([B.n()] ⇒ [B] appears both syntactically and referentially) but
        // the canonical clause set dedups it, plus the root requirement.
        let p = figure1_program();
        let reg = ItemRegistry::from_program(&p);
        let mut cnf = figure2_cnf(&reg);
        let removed = cnf.dedup_clauses();
        assert_eq!(removed, 1, "exactly one duplicated clause (shown gray)");
        assert_eq!(cnf.len(), 32);
    }

    #[test]
    fn fj_needs_only_graphs_fji_needs_logic() {
        // "While we can model the dependencies of Featherweight Java with
        // graph constraints, we need the full power of propositional logic
        // for FJI." — a pure-FJ program (no interfaces) generates a model
        // that is 100% graph constraints; the FJI example does not.
        let fj = crate::parser::parse_program(
            "class P extends Object implements EmptyInterface {
               P() { super(); }
               String m() { return this.m(); }
             }
             class Q extends P implements EmptyInterface {
               Q() { super(); }
               String t() { return new P().m(); }
             }
             new Q().t();",
        )
        .expect("parses");
        let reg = ItemRegistry::from_program(&fj);
        let formula = crate::typecheck::typecheck(&fj, &reg).expect("type checks");
        let mut cnf = formula.to_cnf();
        cnf.ensure_vars(reg.len());
        assert!(
            (cnf.graph_fraction() - 1.0).abs() < 1e-9,
            "FJ model must be all graph constraints: {:?}",
            cnf.shape_histogram()
        );

        let fji = figure1_program();
        let fji_reg = ItemRegistry::from_program(&fji);
        let fji_cnf = crate::typecheck::typecheck_decls(&fji, &fji_reg)
            .expect("type checks")
            .to_cnf();
        assert!(
            fji_cnf.graph_fraction() < 1.0,
            "the FJI example needs non-graph clauses"
        );
        assert!(
            fji_cnf.shape_histogram().general >= 4,
            "the four mAny clauses"
        );
    }

    #[test]
    fn model_counts_match_the_paper() {
        let p = figure1_program();
        let reg = ItemRegistry::from_program(&p);
        // "there are 6,766 valid programs left" — the dependency model.
        let dep = figure2_dependency_cnf(&reg);
        assert_eq!(lbr_logic::count_models(&dep), 6_766);
        // Conjoining the tool's requirement narrows the search space.
        assert_eq!(lbr_logic::count_models(&figure2_cnf(&reg)), 543);
    }

    #[test]
    fn generated_constraints_equivalent_to_figure2() {
        let p = figure1_program();
        let reg = ItemRegistry::from_program(&p);
        let formula = crate::typecheck::typecheck_decls(&p, &reg).expect("type checks");
        let mut generated = formula.to_cnf();
        generated.ensure_vars(reg.len());
        let fig2 = figure2_dependency_cnf(&reg);
        // Semantic equivalence: same model count, and the conjunction has
        // the same count (so neither side has extra models).
        let n = lbr_logic::count_models(&generated);
        assert_eq!(n, 6_766);
        let mut both = generated.clone();
        both.and(&fig2);
        assert_eq!(lbr_logic::count_models(&both), 6_766);
    }

    #[test]
    fn solution_satisfies_figure2() {
        let p = figure1_program();
        let reg = ItemRegistry::from_program(&p);
        let cnf = figure2_cnf(&reg);
        let solution = figure1b_solution(&reg);
        assert!(cnf.eval(&solution));
        assert_eq!(solution.len(), 11);
    }
}
