//! Abstract syntax of Featherweight Java with Interfaces (Figure 4).
//!
//! FJI is Featherweight Java (Igarashi, Pierce & Wadler 1999) extended so
//! that each class implements exactly one interface; an interface is a
//! collection of method signatures. Three type names are built in and never
//! reduced: `Object` (the root class), `String` (an opaque class, so method
//! bodies have something to return), and `EmptyInterface` (the interface a
//! class is rewired to when its `implements` relation is removed).

use std::fmt;

/// The built-in root class.
pub const OBJECT: &str = "Object";
/// The built-in empty interface every program implicitly contains:
/// `interface EmptyInterface { }`.
pub const EMPTY_INTERFACE: &str = "EmptyInterface";
/// The built-in opaque `String` class (kept while reducing, like in the
/// paper's example).
pub const STRING: &str = "String";

/// Whether `name` is one of the built-in, never-reduced type names.
pub fn is_builtin(name: &str) -> bool {
    name == OBJECT || name == EMPTY_INTERFACE || name == STRING
}

/// A program `P = (R̄, e)`: type declarations plus a main expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The type declarations `R̄` in source order.
    pub decls: Vec<TypeDecl>,
    /// The main expression `e`.
    pub main: Expr,
}

/// A type declaration `R ::= L | Q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDecl {
    /// A class declaration.
    Class(ClassDecl),
    /// An interface declaration.
    Interface(InterfaceDecl),
}

impl TypeDecl {
    /// The declared type's name.
    pub fn name(&self) -> &str {
        match self {
            TypeDecl::Class(c) => &c.name,
            TypeDecl::Interface(i) => &i.name,
        }
    }
}

/// `class C extends D implements I { T̄ f̄; K M̄ }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDecl {
    /// The class name `C`.
    pub name: String,
    /// The superclass `D`.
    pub superclass: String,
    /// The implemented interface `I` (possibly [`EMPTY_INTERFACE`]).
    pub interface: String,
    /// The fields `T̄ f̄`.
    pub fields: Vec<Field>,
    /// The constructor `K`.
    pub ctor: Constructor,
    /// The methods `M̄`.
    pub methods: Vec<Method>,
}

impl ClassDecl {
    /// Finds a method by name.
    pub fn method(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// `interface I { S̄ }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDecl {
    /// The interface name `I`.
    pub name: String,
    /// The signatures `S̄`.
    pub sigs: Vec<Signature>,
}

impl InterfaceDecl {
    /// Finds a signature by name.
    pub fn sig(&self, name: &str) -> Option<&Signature> {
        self.sigs.iter().find(|s| s.name == name)
    }
}

/// A typed name, used for fields and parameters (`T f`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// The type name `T`.
    pub ty: String,
    /// The field or parameter name.
    pub name: String,
}

impl Field {
    /// Creates a typed name.
    pub fn new(ty: impl Into<String>, name: impl Into<String>) -> Self {
        Field {
            ty: ty.into(),
            name: name.into(),
        }
    }
}

/// The (canonical) constructor
/// `C(Ū ḡ, T̄ f̄) { super(ḡ); this.f̄ = f̄; }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constructor {
    /// All parameters: superclass fields then own fields.
    pub params: Vec<Field>,
    /// Arguments forwarded to `super(…)`.
    pub super_args: Vec<String>,
    /// Field initializations `this.f = f`, as `(field, parameter)` pairs.
    pub inits: Vec<(String, String)>,
}

impl Constructor {
    /// The canonical constructor for a class whose superclass contributes
    /// `super_fields` and which declares `own_fields`.
    pub fn canonical(super_fields: &[Field], own_fields: &[Field]) -> Self {
        Constructor {
            params: super_fields.iter().chain(own_fields).cloned().collect(),
            super_args: super_fields.iter().map(|f| f.name.clone()).collect(),
            inits: own_fields
                .iter()
                .map(|f| (f.name.clone(), f.name.clone()))
                .collect(),
        }
    }
}

/// A method `T m(T̄ x̄) { return e; }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    /// Return type `T`.
    pub ret: String,
    /// Method name `m`.
    pub name: String,
    /// Parameters `T̄ x̄`.
    pub params: Vec<Field>,
    /// The body expression `e` (of `return e;`).
    pub body: Expr,
}

/// A signature `T m(T̄ x̄);`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Return type `T`.
    pub ret: String,
    /// Method name `m`.
    pub name: String,
    /// Parameters `T̄ x̄`.
    pub params: Vec<Field>,
}

impl Signature {
    /// The `(parameter types, return type)` pair, for comparison with
    /// `mtype`.
    pub fn method_type(&self) -> (Vec<String>, String) {
        (
            self.params.iter().map(|p| p.ty.clone()).collect(),
            self.ret.clone(),
        )
    }
}

/// Expressions `e ::= x | e.f | e.m(ē) | new C(ē) | (T) e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A variable (including `this`).
    Var(String),
    /// Field access `e.f`.
    Field(Box<Expr>, String),
    /// Method invocation `e.m(ē)`.
    Call(Box<Expr>, String, Vec<Expr>),
    /// Object creation `new C(ē)`.
    New(String, Vec<Expr>),
    /// Cast `(T) e`.
    Cast(String, Box<Expr>),
}

impl Expr {
    /// `this`.
    pub fn this() -> Expr {
        Expr::Var("this".to_owned())
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// A method call on this expression.
    pub fn call(self, method: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(Box::new(self), method.into(), args)
    }

    /// A field access on this expression.
    pub fn field(self, field: impl Into<String>) -> Expr {
        Expr::Field(Box::new(self), field.into())
    }

    /// Object creation.
    pub fn new_object(class: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::New(class.into(), args)
    }

    /// A cast of this expression.
    pub fn cast(self, ty: impl Into<String>) -> Expr {
        Expr::Cast(ty.into(), Box::new(self))
    }
}

impl Program {
    /// Looks up a class by name. Built-in `Object` and `String` resolve to
    /// implicit empty classes.
    pub fn class(&self, name: &str) -> Option<ClassDecl> {
        if name == OBJECT || name == STRING {
            return Some(ClassDecl {
                name: name.to_owned(),
                superclass: OBJECT.to_owned(),
                interface: EMPTY_INTERFACE.to_owned(),
                fields: Vec::new(),
                ctor: Constructor::canonical(&[], &[]),
                methods: Vec::new(),
            });
        }
        self.decls.iter().find_map(|d| match d {
            TypeDecl::Class(c) if c.name == name => Some(c.clone()),
            _ => None,
        })
    }

    /// Looks up an interface by name. `EmptyInterface` resolves to the
    /// implicit `interface EmptyInterface { }`.
    pub fn interface(&self, name: &str) -> Option<InterfaceDecl> {
        if name == EMPTY_INTERFACE {
            return Some(InterfaceDecl {
                name: EMPTY_INTERFACE.to_owned(),
                sigs: Vec::new(),
            });
        }
        self.decls.iter().find_map(|d| match d {
            TypeDecl::Interface(i) if i.name == name => Some(i.clone()),
            _ => None,
        })
    }

    /// Whether `name` is a declared (or built-in) class.
    pub fn is_class(&self, name: &str) -> bool {
        self.class(name).is_some()
    }

    /// Whether `name` is a declared (or built-in) interface.
    pub fn is_interface(&self, name: &str) -> bool {
        self.interface(name).is_some()
    }

    /// Whether `name` is any known type.
    pub fn is_type(&self, name: &str) -> bool {
        self.is_class(name) || self.is_interface(name)
    }

    /// Iterates over user-declared classes.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDecl> {
        self.decls.iter().filter_map(|d| match d {
            TypeDecl::Class(c) => Some(c),
            _ => None,
        })
    }

    /// Iterates over user-declared interfaces.
    pub fn interfaces(&self) -> impl Iterator<Item = &InterfaceDecl> {
        self.decls.iter().filter_map(|d| match d {
            TypeDecl::Interface(i) => Some(i),
            _ => None,
        })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::pretty(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins() {
        assert!(is_builtin("Object"));
        assert!(is_builtin("String"));
        assert!(is_builtin("EmptyInterface"));
        assert!(!is_builtin("A"));
    }

    #[test]
    fn builtin_lookup() {
        let p = Program {
            decls: vec![],
            main: Expr::this(),
        };
        assert!(p.class(OBJECT).is_some());
        assert!(p.class(STRING).is_some());
        assert!(p.interface(EMPTY_INTERFACE).is_some());
        assert!(p.class("A").is_none());
        assert!(p.is_type(STRING));
        assert!(!p.is_type("Nope"));
    }

    #[test]
    fn canonical_constructor() {
        let sup = [Field::new("String", "g")];
        let own = [Field::new("A", "f")];
        let k = Constructor::canonical(&sup, &own);
        assert_eq!(k.params.len(), 2);
        assert_eq!(k.super_args, vec!["g"]);
        assert_eq!(k.inits, vec![("f".to_owned(), "f".to_owned())]);
    }

    #[test]
    fn expr_builders() {
        let e = Expr::new_object("M", vec![]).call("x", vec![Expr::new_object("A", vec![])]);
        match &e {
            Expr::Call(recv, m, args) => {
                assert_eq!(m, "x");
                assert_eq!(args.len(), 1);
                assert_eq!(**recv, Expr::New("M".into(), vec![]));
            }
            _ => panic!("expected call"),
        }
    }

    #[test]
    fn signature_method_type() {
        let s = Signature {
            ret: "String".into(),
            name: "m".into(),
            params: vec![Field::new("I", "a")],
        };
        assert_eq!(s.method_type(), (vec!["I".to_owned()], "String".to_owned()));
    }
}
