//! The program reducer `reduce(P, φ)` (Figure 5).
//!
//! Given a truth assignment `φ` over `V(P)` — represented as the set of
//! true variables — the reducer keeps, rewires, or drops each construct:
//!
//! * a class with `φ([C]) = 0` is removed entirely,
//! * `φ([C ◁ I]) = 0` rewires `implements I` to `implements
//!   EmptyInterface`,
//! * a method with `φ([C.m()!code]) = 0` but `φ([C.m()]) = 1` keeps its
//!   header and gets the trivial body `return this.m(x̄);`,
//! * a signature with `φ([I.m()]) = 0` is removed from its interface.
//!
//! Theorem 3.1 guarantees the result type checks whenever `φ` satisfies the
//! generated constraints.

use crate::ast::*;
use crate::vars::{Item, ItemRegistry};
use lbr_logic::VarSet;

/// Applies `reduce(P, φ)` where `φ` assigns true exactly to `keep`.
///
/// Items without a registered variable (built-ins) are always kept.
///
/// # Examples
///
/// ```
/// use lbr_fji::{figure1_program, reduce, ItemRegistry};
/// use lbr_logic::VarSet;
/// let program = figure1_program();
/// let reg = ItemRegistry::from_program(&program);
/// // φ = all false: every class and interface is removed.
/// let reduced = reduce(&program, &reg, &VarSet::empty(reg.len()));
/// assert!(reduced.decls.is_empty());
/// ```
pub fn reduce(program: &Program, reg: &ItemRegistry, keep: &VarSet) -> Program {
    let kept = |item: &Item| reg.var(item).is_none_or(|v| keep.contains(v));
    let mut decls = Vec::new();
    for decl in &program.decls {
        match decl {
            TypeDecl::Class(c) => {
                if !kept(&Item::Class(c.name.clone())) {
                    continue;
                }
                let interface = if c.interface != EMPTY_INTERFACE
                    && kept(&Item::Impl(c.name.clone(), c.interface.clone()))
                {
                    c.interface.clone()
                } else {
                    EMPTY_INTERFACE.to_owned()
                };
                let mut methods = Vec::new();
                for m in &c.methods {
                    if !kept(&Item::Method(c.name.clone(), m.name.clone())) {
                        continue;
                    }
                    if kept(&Item::MethodCode(c.name.clone(), m.name.clone())) {
                        methods.push(m.clone());
                    } else {
                        methods.push(trivial_method(m));
                    }
                }
                decls.push(TypeDecl::Class(ClassDecl {
                    name: c.name.clone(),
                    superclass: c.superclass.clone(),
                    interface,
                    fields: c.fields.clone(),
                    ctor: c.ctor.clone(),
                    methods,
                }));
            }
            TypeDecl::Interface(i) => {
                if !kept(&Item::Interface(i.name.clone())) {
                    continue;
                }
                let sigs = i
                    .sigs
                    .iter()
                    .filter(|s| kept(&Item::Signature(i.name.clone(), s.name.clone())))
                    .cloned()
                    .collect();
                decls.push(TypeDecl::Interface(InterfaceDecl {
                    name: i.name.clone(),
                    sigs,
                }));
            }
        }
    }
    Program {
        decls,
        main: program.main.clone(),
    }
}

/// The trivial body of Figure 5: `T m(T̄ x̄) { return this.m(x̄); }`.
fn trivial_method(m: &Method) -> Method {
    Method {
        ret: m.ret.clone(),
        name: m.name.clone(),
        params: m.params.clone(),
        body: Expr::this().call(
            m.name.clone(),
            m.params.iter().map(|p| Expr::var(p.name.clone())).collect(),
        ),
    }
}

/// A crude size metric for FJI programs: the number of AST nodes. Useful
/// for comparing reductions.
pub fn program_size(program: &Program) -> usize {
    let mut size = 1 + expr_size(&program.main);
    for d in &program.decls {
        match d {
            TypeDecl::Class(c) => {
                size += 2 + c.fields.len() + c.ctor.params.len();
                for m in &c.methods {
                    size += 1 + m.params.len() + expr_size(&m.body);
                }
            }
            TypeDecl::Interface(i) => {
                size += 1;
                for s in &i.sigs {
                    size += 1 + s.params.len();
                }
            }
        }
    }
    size
}

fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::Var(_) => 1,
        Expr::Field(r, _) => 1 + expr_size(r),
        Expr::Call(r, _, args) => 1 + expr_size(r) + args.iter().map(expr_size).sum::<usize>(),
        Expr::New(_, args) => 1 + args.iter().map(expr_size).sum::<usize>(),
        Expr::Cast(_, r) => 1 + expr_size(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn program() -> Program {
        parse_program(
            "class A extends Object implements I {
               A() { super(); }
               String m() { return this.m(); }
             }
             interface I { String m(); }
             new A();",
        )
        .expect("parses")
    }

    fn keep_items(reg: &ItemRegistry, items: &[Item]) -> VarSet {
        let mut s = VarSet::empty(reg.len());
        for i in items {
            s.insert(reg.var(i).expect("registered"));
        }
        s
    }

    #[test]
    fn drop_implements_rewires_to_empty() {
        let p = program();
        let reg = ItemRegistry::from_program(&p);
        let keep = keep_items(
            &reg,
            &[
                Item::Class("A".into()),
                Item::Method("A".into(), "m".into()),
                Item::MethodCode("A".into(), "m".into()),
                Item::Interface("I".into()),
                Item::Signature("I".into(), "m".into()),
            ],
        );
        let r = reduce(&p, &reg, &keep);
        let a = r.class("A").expect("A kept");
        assert_eq!(a.interface, EMPTY_INTERFACE);
        assert!(r.interface("I").is_some());
    }

    #[test]
    fn drop_code_gives_trivial_body() {
        let p = parse_program(
            "class A extends Object implements EmptyInterface {
               A() { super(); }
               String m(String s) { return s; }
             }
             new A();",
        )
        .unwrap();
        let reg = ItemRegistry::from_program(&p);
        let keep = keep_items(
            &reg,
            &[
                Item::Class("A".into()),
                Item::Method("A".into(), "m".into()),
            ],
        );
        let r = reduce(&p, &reg, &keep);
        let m = &r.class("A").unwrap().methods[0];
        assert_eq!(
            m.body,
            Expr::this().call("m", vec![Expr::var("s")]),
            "trivial body is `return this.m(s);`"
        );
    }

    #[test]
    fn drop_method_removes_it() {
        let p = program();
        let reg = ItemRegistry::from_program(&p);
        let keep = keep_items(&reg, &[Item::Class("A".into())]);
        let r = reduce(&p, &reg, &keep);
        assert!(r.class("A").unwrap().methods.is_empty());
    }

    #[test]
    fn drop_signature_removes_it() {
        let p = program();
        let reg = ItemRegistry::from_program(&p);
        let keep = keep_items(&reg, &[Item::Interface("I".into())]);
        let r = reduce(&p, &reg, &keep);
        assert!(r.interface("I").unwrap().sigs.is_empty());
    }

    #[test]
    fn keep_everything_is_identity_modulo_nothing() {
        let p = program();
        let reg = ItemRegistry::from_program(&p);
        let all = VarSet::full(reg.len());
        assert_eq!(reduce(&p, &reg, &all), p);
    }

    #[test]
    fn size_metric_monotone() {
        let p = program();
        let reg = ItemRegistry::from_program(&p);
        let all = VarSet::full(reg.len());
        let none = VarSet::empty(reg.len());
        assert!(program_size(&reduce(&p, &reg, &all)) > program_size(&reduce(&p, &reg, &none)));
    }
}
