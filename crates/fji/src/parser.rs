//! A recursive-descent parser for FJI source text.
//!
//! The grammar is Figure 4 of the paper, with Java-like concrete syntax;
//! `//` line comments and `/* */` block comments are allowed. Output of
//! [`crate::pretty::pretty`] parses back to the same AST.

use crate::ast::*;
use std::fmt;

/// A parse error with a position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a full FJI program: declarations followed by the main expression
/// terminated with `;`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
///
/// # Examples
///
/// ```
/// let src = "
///   class A extends Object implements EmptyInterface {
///     A() { super(); }
///     String m() { return this.m(); }
///   }
///   new A().m();
/// ";
/// let program = lbr_fji::parse_program(src)?;
/// assert_eq!(program.decls.len(), 1);
/// # Ok::<(), lbr_fji::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut decls = Vec::new();
    while p.peek_keyword("class") || p.peek_keyword("interface") {
        if p.peek_keyword("class") {
            decls.push(TypeDecl::Class(p.class()?));
        } else {
            decls.push(TypeDecl::Interface(p.interface()?));
        }
    }
    let main = p.expr()?;
    p.expect_punct(';')?;
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing input after main expression"));
    }
    Ok(Program { decls, main })
}

/// Parses a single expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing input after expression"));
    }
    Ok(e)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    offset: usize,
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(ParseError {
                        offset: start,
                        message: "unterminated block comment".into(),
                    });
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Spanned {
                tok: Tok::Ident(src[start..i].to_owned()),
                offset: start,
            });
        } else if "(){};.,=".contains(c) {
            out.push(Spanned {
                tok: Tok::Punct(c),
                offset: i,
            });
            i += 1;
        } else {
            return Err(ParseError {
                offset: i,
                message: format!("unexpected character {c:?}"),
            });
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.tokens.get(self.pos).map_or(usize::MAX, |t| t.offset),
            message: message.into(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<&Tok> {
        self.tokens.get(self.pos + ahead).map(|s| &s.tok)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(0), Some(Tok::Ident(s)) if s == kw)
    }

    fn peek_punct(&self, c: char) -> bool {
        matches!(self.peek(0), Some(Tok::Punct(p)) if *p == c)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(self.error(format!("expected {kw:?}, found {other:?}"))),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.error(format!("expected {c:?}, found {other:?}"))),
        }
    }

    fn class(&mut self) -> Result<ClassDecl, ParseError> {
        self.expect_keyword("class")?;
        let name = self.expect_ident()?;
        self.expect_keyword("extends")?;
        let superclass = self.expect_ident()?;
        self.expect_keyword("implements")?;
        let interface = self.expect_ident()?;
        self.expect_punct('{')?;
        let mut fields = Vec::new();
        let mut ctor: Option<Constructor> = None;
        let mut methods = Vec::new();
        while !self.peek_punct('}') {
            // Disambiguate: ctor = `C (`, field = `T f ;`, method = `T m (`.
            let is_ctor = matches!(self.peek(0), Some(Tok::Ident(s)) if *s == name)
                && matches!(self.peek(1), Some(Tok::Punct('(')));
            if is_ctor {
                if ctor.is_some() {
                    return Err(self.error("duplicate constructor"));
                }
                ctor = Some(self.constructor()?);
            } else {
                let ty = self.expect_ident()?;
                let member = self.expect_ident()?;
                if self.peek_punct(';') {
                    self.bump();
                    fields.push(Field::new(ty, member));
                } else {
                    methods.push(self.method_tail(ty, member)?);
                }
            }
        }
        self.expect_punct('}')?;
        let ctor = ctor.ok_or_else(|| self.error(format!("class {name} lacks a constructor")))?;
        Ok(ClassDecl {
            name,
            superclass,
            interface,
            fields,
            ctor,
            methods,
        })
    }

    fn constructor(&mut self) -> Result<Constructor, ParseError> {
        let _name = self.expect_ident()?;
        let params = self.params()?;
        self.expect_punct('{')?;
        self.expect_keyword("super")?;
        self.expect_punct('(')?;
        let mut super_args = Vec::new();
        while !self.peek_punct(')') {
            if !super_args.is_empty() {
                self.expect_punct(',')?;
            }
            super_args.push(self.expect_ident()?);
        }
        self.expect_punct(')')?;
        self.expect_punct(';')?;
        let mut inits = Vec::new();
        while self.peek_keyword("this") {
            self.bump();
            self.expect_punct('.')?;
            let field = self.expect_ident()?;
            self.expect_punct('=')?;
            let param = self.expect_ident()?;
            self.expect_punct(';')?;
            inits.push((field, param));
        }
        self.expect_punct('}')?;
        Ok(Constructor {
            params,
            super_args,
            inits,
        })
    }

    fn method_tail(&mut self, ret: String, name: String) -> Result<Method, ParseError> {
        let params = self.params()?;
        self.expect_punct('{')?;
        self.expect_keyword("return")?;
        let body = self.expr()?;
        self.expect_punct(';')?;
        self.expect_punct('}')?;
        Ok(Method {
            ret,
            name,
            params,
            body,
        })
    }

    fn interface(&mut self) -> Result<InterfaceDecl, ParseError> {
        self.expect_keyword("interface")?;
        let name = self.expect_ident()?;
        self.expect_punct('{')?;
        let mut sigs = Vec::new();
        while !self.peek_punct('}') {
            let ret = self.expect_ident()?;
            let mname = self.expect_ident()?;
            let params = self.params()?;
            self.expect_punct(';')?;
            sigs.push(Signature {
                ret,
                name: mname,
                params,
            });
        }
        self.expect_punct('}')?;
        Ok(InterfaceDecl { name, sigs })
    }

    fn params(&mut self) -> Result<Vec<Field>, ParseError> {
        self.expect_punct('(')?;
        let mut out = Vec::new();
        while !self.peek_punct(')') {
            if !out.is_empty() {
                self.expect_punct(',')?;
            }
            let ty = self.expect_ident()?;
            let name = self.expect_ident()?;
            out.push(Field::new(ty, name));
        }
        self.expect_punct(')')?;
        Ok(out)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.peek_punct('.') {
            self.bump();
            let member = self.expect_ident()?;
            if self.peek_punct('(') {
                let args = self.args()?;
                e = Expr::Call(Box::new(e), member, args);
            } else {
                e = Expr::Field(Box::new(e), member);
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        if self.peek_keyword("new") {
            self.bump();
            let class = self.expect_ident()?;
            let args = self.args()?;
            return Ok(Expr::New(class, args));
        }
        if self.peek_punct('(') {
            // Either a cast `(T) e` or a parenthesized expression `(e)`.
            // `( Ident )` followed by a token that can start an expression
            // is a cast.
            let is_cast = matches!(self.peek(1), Some(Tok::Ident(_)))
                && matches!(self.peek(2), Some(Tok::Punct(')')))
                && matches!(self.peek(3), Some(Tok::Ident(_)) | Some(Tok::Punct('(')));
            self.bump(); // '('
            if is_cast {
                let ty = self.expect_ident()?;
                self.expect_punct(')')?;
                let inner = self.primary()?;
                // Allow postfix on the cast operand? No: `(T) e.f` parses
                // as `(T)(e.f)` in Java; keep the operand primary-only and
                // rely on parentheses, which the pretty printer emits.
                return Ok(Expr::Cast(ty, Box::new(inner)));
            }
            let inner = self.expr()?;
            self.expect_punct(')')?;
            return Ok(inner);
        }
        let ident = self.expect_ident()?;
        Ok(Expr::Var(ident))
    }

    fn args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_punct('(')?;
        let mut out = Vec::new();
        while !self.peek_punct(')') {
            if !out.is_empty() {
                self.expect_punct(',')?;
            }
            out.push(self.expr()?);
        }
        self.expect_punct(')')?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::{pretty, pretty_expr};

    #[test]
    fn parses_expressions() {
        assert_eq!(parse_expr("x").unwrap(), Expr::var("x"));
        assert_eq!(
            parse_expr("new A()").unwrap(),
            Expr::new_object("A", vec![])
        );
        assert_eq!(parse_expr("this.s").unwrap(), Expr::this().field("s"));
        assert_eq!(
            parse_expr("a.m(b, new C())").unwrap(),
            Expr::var("a").call("m", vec![Expr::var("b"), Expr::new_object("C", vec![])])
        );
    }

    #[test]
    fn parses_casts() {
        assert_eq!(parse_expr("(I) a").unwrap(), Expr::var("a").cast("I"));
        assert_eq!(
            parse_expr("((I) a).m()").unwrap(),
            Expr::var("a").cast("I").call("m", vec![])
        );
        // Parenthesized expression, not a cast.
        assert_eq!(parse_expr("(a)").unwrap(), Expr::var("a"));
        assert_eq!(
            parse_expr("(a.m())").unwrap(),
            Expr::var("a").call("m", vec![])
        );
    }

    #[test]
    fn parses_class_with_fields_and_ctor() {
        let src = "
          class A extends Object implements I {
            String s;
            A(String s) { super(); this.s = s; }
            String m() { return this.s; }
          }
          interface I { String m(); }
          new A(x).m();
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls.len(), 2);
        let a = p.class("A").unwrap();
        assert_eq!(a.fields, vec![Field::new("String", "s")]);
        assert_eq!(a.ctor.inits, vec![("s".to_owned(), "s".to_owned())]);
        assert_eq!(a.methods.len(), 1);
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// header\nclass A extends Object implements EmptyInterface { /* c1 */ A() { super(); } }\nnew A(); // done";
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls.len(), 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_program("class {").is_err());
        assert!(parse_expr("new ()").is_err());
        assert!(parse_program("class A extends Object implements I { }\nx;").is_err()); // no ctor
        assert!(parse_expr("x ~").is_err());
        assert!(parse_program("/* unterminated").is_err());
    }

    #[test]
    fn pretty_roundtrip() {
        let src = "
          class A extends Object implements I {
            A() { super(); }
            String m() { return this.m(); }
            B n() { return new B(); }
          }
          class B extends Object implements EmptyInterface {
            B() { super(); }
          }
          interface I { String m(); }
          new A().m();
        ";
        let p1 = parse_program(src).unwrap();
        let printed = pretty(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "pretty output must reparse identically");
    }

    #[test]
    fn cast_roundtrip() {
        let e = parse_expr("((I) a).m()").unwrap();
        let printed = pretty_expr(&e);
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }
}
