//! The constraint-generating type checker `⊢ P | π` (Figures 6 and 7).
//!
//! Type checking *simultaneously* verifies the program and produces a
//! propositional formula `π` over the variables `V(P)` modeling every
//! internal dependency: syntactic (children require their parents),
//! referential (mentioning a construct requires it) and non-referential
//! (e.g. "if `C` implements `I` and `I` keeps signature `m`, some method
//! `m` must remain reachable from `C`" — the `mAny` constraints no
//! dependency graph can express).
//!
//! Theorem 3.1: if `⊢ P | π` and `φ ⊨ π`, then `reduce(P, φ)` type checks.

use crate::ast::*;
use crate::vars::{Item, ItemRegistry};
use lbr_logic::Formula;
use std::collections::HashMap;
use std::fmt;

/// A type error found while checking a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A type name with no declaration.
    UnknownType(String),
    /// A name was declared twice.
    DuplicateDecl(String),
    /// A member was declared twice within one type.
    DuplicateMember {
        /// Enclosing type.
        owner: String,
        /// Member name.
        member: String,
    },
    /// A class `extends` a non-class or `implements` a non-interface.
    BadKind {
        /// The name used.
        name: String,
        /// What was expected ("class"/"interface").
        expected: &'static str,
    },
    /// The constructor is not the canonical FJ constructor.
    BadConstructor(String),
    /// A method overrides a superclass method at a different type.
    BadOverride {
        /// Class declaring the override.
        class: String,
        /// Method name.
        method: String,
    },
    /// An unbound variable in an expression.
    UnboundVar(String),
    /// No field `field` on type `ty`.
    NoSuchField {
        /// Receiver type.
        ty: String,
        /// Field name.
        field: String,
    },
    /// No method `method` on type `ty`.
    NoSuchMethod {
        /// Receiver type.
        ty: String,
        /// Method name.
        method: String,
    },
    /// `sub` is not a subtype of `sup`.
    NotSubtype {
        /// The smaller type.
        sub: String,
        /// The required supertype.
        sup: String,
    },
    /// Wrong number of arguments.
    ArityMismatch {
        /// What was called.
        target: String,
        /// Expected count.
        expected: usize,
        /// Found count.
        found: usize,
    },
    /// A class does not implement (or inherit) a signature of its
    /// interface at the right type.
    SignatureUnimplemented {
        /// The class.
        class: String,
        /// The signature name.
        method: String,
    },
    /// Cyclic inheritance.
    InheritanceCycle(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownType(t) => write!(f, "unknown type {t}"),
            TypeError::DuplicateDecl(t) => write!(f, "duplicate declaration of {t}"),
            TypeError::DuplicateMember { owner, member } => {
                write!(f, "duplicate member {member} in {owner}")
            }
            TypeError::BadKind { name, expected } => write!(f, "{name} is not a {expected}"),
            TypeError::BadConstructor(c) => write!(f, "non-canonical constructor in {c}"),
            TypeError::BadOverride { class, method } => {
                write!(f, "invalid override of {method} in {class}")
            }
            TypeError::UnboundVar(x) => write!(f, "unbound variable {x}"),
            TypeError::NoSuchField { ty, field } => write!(f, "no field {field} on {ty}"),
            TypeError::NoSuchMethod { ty, method } => write!(f, "no method {method} on {ty}"),
            TypeError::NotSubtype { sub, sup } => write!(f, "{sub} is not a subtype of {sup}"),
            TypeError::ArityMismatch {
                target,
                expected,
                found,
            } => write!(f, "{target} expects {expected} arguments, found {found}"),
            TypeError::SignatureUnimplemented { class, method } => {
                write!(f, "{class} does not implement signature {method}")
            }
            TypeError::InheritanceCycle(c) => write!(f, "inheritance cycle through {c}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Type checks `program` and returns the dependency formula `π`.
///
/// # Errors
///
/// Returns the first [`TypeError`] found; a reduced program produced by
/// [`crate::reduce`] from any `φ ⊨ π` never errors (Theorem 3.1, verified
/// exhaustively in this crate's tests).
///
/// # Examples
///
/// ```
/// use lbr_fji::{figure1_program, typecheck, ItemRegistry};
/// let program = figure1_program();
/// let reg = ItemRegistry::from_program(&program);
/// let formula = typecheck(&program, &reg)?;
/// let cnf = formula.to_cnf();
/// assert!(cnf.len() > 20);
/// # Ok::<(), lbr_fji::TypeError>(())
/// ```
pub fn typecheck(program: &Program, reg: &ItemRegistry) -> Result<Formula, TypeError> {
    let checker = Checker { program, reg };
    checker.program()
}

/// Type checks without caring about the formula (used on reduced programs).
pub fn typechecks(program: &Program) -> Result<(), TypeError> {
    let reg = ItemRegistry::from_program(program);
    typecheck(program, &reg).map(|_| ())
}

/// Type checks only the declarations `R̄` of the program, skipping the main
/// expression.
///
/// This is the constraint set Figure 2 prints: the dependencies of the
/// class table alone. The tool's entry-point requirement (e.g.
/// `[M.main()!code]`) is conjoined *after* generation, exactly as the
/// paper describes.
///
/// # Errors
///
/// As for [`typecheck`].
pub fn typecheck_decls(program: &Program, reg: &ItemRegistry) -> Result<Formula, TypeError> {
    let checker = Checker { program, reg };
    checker.decls_only()
}

struct Checker<'p> {
    program: &'p Program,
    reg: &'p ItemRegistry,
}

type MethodType = (Vec<String>, String);

impl Checker<'_> {
    // ------------------------------------------------------------------
    // Figure 6: helper rules.
    // ------------------------------------------------------------------

    /// `fields(P, C)`: superclass fields then own fields.
    fn fields(&self, class: &str) -> Result<Vec<Field>, TypeError> {
        self.check_acyclic(class)?;
        if class == OBJECT {
            return Ok(Vec::new());
        }
        let decl = self
            .program
            .class(class)
            .ok_or_else(|| TypeError::UnknownType(class.to_owned()))?;
        let mut out = self.fields(&decl.superclass)?;
        out.extend(decl.fields.iter().cloned());
        Ok(out)
    }

    /// `mtype(P, m, T)` for classes (walking superclasses) and interfaces.
    fn mtype(&self, method: &str, ty: &str) -> Result<Option<MethodType>, TypeError> {
        if ty == OBJECT {
            return Ok(None);
        }
        if let Some(iface) = self.program.interface(ty) {
            return Ok(iface.sig(method).map(|s| s.method_type()));
        }
        let decl = self
            .program
            .class(ty)
            .ok_or_else(|| TypeError::UnknownType(ty.to_owned()))?;
        if let Some(m) = decl.method(method) {
            return Ok(Some((
                m.params.iter().map(|p| p.ty.clone()).collect(),
                m.ret.clone(),
            )));
        }
        self.mtype(method, &decl.superclass)
    }

    /// `mAny(P, m, T)`: the disjunction of method variables that can
    /// provide `m` on `T`. For classes this walks the superclass chain;
    /// for interfaces it is the signature variable.
    fn many(&self, method: &str, ty: &str) -> Result<Formula, TypeError> {
        if ty == OBJECT || ty == STRING {
            return Ok(Formula::ff());
        }
        if self.program.interface(ty).is_some() {
            let iface = self.program.interface(ty).expect("checked");
            return Ok(if iface.sig(method).is_some() {
                self.reg
                    .formula(&Item::Signature(ty.to_owned(), method.to_owned()))
            } else {
                Formula::ff()
            });
        }
        let decl = self
            .program
            .class(ty)
            .ok_or_else(|| TypeError::UnknownType(ty.to_owned()))?;
        let rest = self.many(method, &decl.superclass)?;
        Ok(if decl.method(method).is_some() {
            Formula::or([
                self.reg
                    .formula(&Item::Method(ty.to_owned(), method.to_owned())),
                rest,
            ])
        } else {
            rest
        })
    }

    /// Subtyping `P ⊢ T ≤ T' | π`: reflexivity, superclass steps (free),
    /// and implements steps (cost `[C ◁ I]`). Returns `None` when no
    /// derivation exists.
    fn subtype(&self, sub: &str, sup: &str) -> Result<Option<Formula>, TypeError> {
        if sub == sup {
            return Ok(Some(Formula::tt()));
        }
        if self.program.interface(sub).is_some() {
            // Interfaces are only subtypes of themselves in FJI.
            return Ok(None);
        }
        if sub == OBJECT {
            return Ok(None);
        }
        let decl = self
            .program
            .class(sub)
            .ok_or_else(|| TypeError::UnknownType(sub.to_owned()))?;
        // Superclass chain first — that derivation carries no constraint.
        if let Some(pi) = self.subtype(&decl.superclass, sup)? {
            return Ok(Some(pi));
        }
        // Implements step.
        if decl.interface == sup {
            return Ok(Some(
                self.reg
                    .formula(&Item::Impl(decl.name.clone(), decl.interface.clone())),
            ));
        }
        Ok(None)
    }

    /// `override(P, m, D, T̄ → T)`: if the superclass defines `m`, its type
    /// must be identical.
    fn check_override(
        &self,
        method: &str,
        superclass: &str,
        mt: &MethodType,
        class: &str,
    ) -> Result<(), TypeError> {
        match self.mtype(method, superclass)? {
            Some(existing) if existing != *mt => Err(TypeError::BadOverride {
                class: class.to_owned(),
                method: method.to_owned(),
            }),
            _ => Ok(()),
        }
    }

    fn check_acyclic(&self, class: &str) -> Result<(), TypeError> {
        let mut seen = vec![class.to_owned()];
        let mut cur = class.to_owned();
        while cur != OBJECT {
            let decl = self.program.class(&cur).ok_or_else(|| {
                if self.program.is_interface(&cur) {
                    TypeError::BadKind {
                        name: cur.clone(),
                        expected: "class",
                    }
                } else {
                    TypeError::UnknownType(cur.clone())
                }
            })?;
            cur = decl.superclass.clone();
            if seen.contains(&cur) {
                return Err(TypeError::InheritanceCycle(class.to_owned()));
            }
            seen.push(cur.clone());
        }
        Ok(())
    }

    /// The `[T]` formula of a type name, erroring on unknown types.
    fn type_var(&self, name: &str) -> Result<Formula, TypeError> {
        if !self.program.is_type(name) {
            return Err(TypeError::UnknownType(name.to_owned()));
        }
        Ok(self.reg.type_formula(self.program, name))
    }

    // ------------------------------------------------------------------
    // Figure 7: type rules.
    // ------------------------------------------------------------------

    fn program(&self) -> Result<Formula, TypeError> {
        let decls = self.decls_only()?;
        let (_ty, pi) = self.expr(&HashMap::new(), &self.program.main)?;
        Ok(Formula::and([decls, pi]))
    }

    fn decls_only(&self) -> Result<Formula, TypeError> {
        // Reject duplicate type names (including clashes with built-ins).
        let mut names: Vec<&str> = Vec::new();
        for d in &self.program.decls {
            let n = d.name();
            if names.contains(&n) || is_builtin(n) {
                return Err(TypeError::DuplicateDecl(n.to_owned()));
            }
            names.push(n);
        }
        let mut parts = Vec::new();
        for d in &self.program.decls {
            parts.push(match d {
                TypeDecl::Class(c) => self.class_ok(c)?,
                TypeDecl::Interface(i) => self.interface_ok(i)?,
            });
        }
        Ok(Formula::and(parts))
    }

    fn class_ok(&self, c: &ClassDecl) -> Result<Formula, TypeError> {
        self.check_acyclic(&c.name)?;
        // Superclass must be a class, interface an interface.
        if !self.program.is_class(&c.superclass) {
            return Err(if self.program.is_type(&c.superclass) {
                TypeError::BadKind {
                    name: c.superclass.clone(),
                    expected: "class",
                }
            } else {
                TypeError::UnknownType(c.superclass.clone())
            });
        }
        let iface = self.program.interface(&c.interface).ok_or_else(|| {
            if self.program.is_type(&c.interface) {
                TypeError::BadKind {
                    name: c.interface.clone(),
                    expected: "interface",
                }
            } else {
                TypeError::UnknownType(c.interface.clone())
            }
        })?;
        // Duplicate members.
        let mut seen = Vec::new();
        for m in &c.methods {
            if seen.contains(&&m.name) {
                return Err(TypeError::DuplicateMember {
                    owner: c.name.clone(),
                    member: m.name.clone(),
                });
            }
            seen.push(&m.name);
        }
        let mut seen_fields = Vec::new();
        for f in &c.fields {
            self.type_var(&f.ty)?; // field types must exist
            if seen_fields.contains(&&f.name) {
                return Err(TypeError::DuplicateMember {
                    owner: c.name.clone(),
                    member: f.name.clone(),
                });
            }
            seen_fields.push(&f.name);
        }
        // Constructor must be canonical:
        // K = C(Ū ḡ, T̄ f̄) { super(ḡ); this.f̄ = f̄; }.
        let super_fields = self.fields(&c.superclass)?;
        let expected = Constructor::canonical(&super_fields, &c.fields);
        if c.ctor != expected {
            return Err(TypeError::BadConstructor(c.name.clone()));
        }
        // Methods.
        let mut parts = Vec::new();
        for m in &c.methods {
            parts.push(self.method_ok(c, m)?);
        }
        // Signatures of the interface, relative to this class.
        for s in &iface.sigs {
            parts.push(self.signature_ok_for_class(c, &iface.name, s)?);
        }
        // ([C] ⇒ [D] ∧ [Ū] ∧ [T̄]) ∧ ([C◁I] ⇒ [C] ∧ [I]).
        let class_var = self.reg.formula(&Item::Class(c.name.clone()));
        let mut requires = vec![self.type_var(&c.superclass)?];
        for f in super_fields.iter().chain(&c.fields) {
            requires.push(self.type_var(&f.ty)?);
        }
        parts.push(class_var.clone().implies(Formula::and(requires)));
        if c.interface != EMPTY_INTERFACE {
            let impl_var = self
                .reg
                .formula(&Item::Impl(c.name.clone(), c.interface.clone()));
            parts.push(impl_var.implies(Formula::and([class_var, self.type_var(&c.interface)?])));
        }
        Ok(Formula::and(parts))
    }

    fn method_ok(&self, c: &ClassDecl, m: &Method) -> Result<Formula, TypeError> {
        let mt: MethodType = (
            m.params.iter().map(|p| p.ty.clone()).collect(),
            m.ret.clone(),
        );
        self.check_override(&m.name, &c.superclass, &mt, &c.name)?;
        // Parameter names must be distinct.
        let mut seen = Vec::new();
        for p in &m.params {
            if seen.contains(&&p.name) || p.name == "this" {
                return Err(TypeError::DuplicateMember {
                    owner: format!("{}.{}", c.name, m.name),
                    member: p.name.clone(),
                });
            }
            seen.push(&p.name);
        }
        let mut env: HashMap<String, String> = m
            .params
            .iter()
            .map(|p| (p.name.clone(), p.ty.clone()))
            .collect();
        env.insert("this".to_owned(), c.name.clone());
        let (body_ty, pi1) = self.expr(&env, &m.body)?;
        let pi2 = self
            .subtype(&body_ty, &m.ret)?
            .ok_or_else(|| TypeError::NotSubtype {
                sub: body_ty.clone(),
                sup: m.ret.clone(),
            })?;
        // ([C.m()] ⇒ [C] ∧ [T̄] ∧ [T]) ∧ ([C.m()!code] ⇒ [C.m()] ∧ π₁ ∧ π₂).
        let method_var = self
            .reg
            .formula(&Item::Method(c.name.clone(), m.name.clone()));
        let code_var = self
            .reg
            .formula(&Item::MethodCode(c.name.clone(), m.name.clone()));
        let mut requires = vec![self.reg.formula(&Item::Class(c.name.clone()))];
        for p in &m.params {
            requires.push(self.type_var(&p.ty)?);
        }
        requires.push(self.type_var(&m.ret)?);
        Ok(Formula::and([
            method_var.clone().implies(Formula::and(requires)),
            code_var.implies(Formula::and([method_var, pi1, pi2])),
        ]))
    }

    fn interface_ok(&self, i: &InterfaceDecl) -> Result<Formula, TypeError> {
        let mut seen = Vec::new();
        let mut parts = Vec::new();
        for s in &i.sigs {
            if seen.contains(&&s.name) {
                return Err(TypeError::DuplicateMember {
                    owner: i.name.clone(),
                    member: s.name.clone(),
                });
            }
            seen.push(&s.name);
            // [I.m()] ⇒ [I] ∧ [T̄] ∧ [T].
            let mut requires = vec![self.reg.formula(&Item::Interface(i.name.clone()))];
            for p in &s.params {
                requires.push(self.type_var(&p.ty)?);
            }
            requires.push(self.type_var(&s.ret)?);
            let sig_var = self
                .reg
                .formula(&Item::Signature(i.name.clone(), s.name.clone()));
            parts.push(sig_var.implies(Formula::and(requires)));
        }
        Ok(Formula::and(parts))
    }

    /// "Signature typing relative to a class": `mtype(P, m, C)` must match
    /// the signature, and `([C◁I] ∧ [I.m()]) ⇒ mAny(P, m, C)`.
    fn signature_ok_for_class(
        &self,
        c: &ClassDecl,
        iface: &str,
        s: &Signature,
    ) -> Result<Formula, TypeError> {
        match self.mtype(&s.name, &c.name)? {
            Some(mt) if mt == s.method_type() => {}
            _ => {
                return Err(TypeError::SignatureUnimplemented {
                    class: c.name.clone(),
                    method: s.name.clone(),
                })
            }
        }
        let impl_var = self
            .reg
            .formula(&Item::Impl(c.name.clone(), iface.to_owned()));
        let sig_var = self
            .reg
            .formula(&Item::Signature(iface.to_owned(), s.name.clone()));
        let many = self.many(&s.name, &c.name)?;
        Ok(Formula::and([impl_var, sig_var]).implies(many))
    }

    /// Expression typing `P, Γ ⊢ e : T | π`.
    fn expr(
        &self,
        env: &HashMap<String, String>,
        e: &Expr,
    ) -> Result<(String, Formula), TypeError> {
        match e {
            Expr::Var(x) => {
                let ty = env.get(x).ok_or_else(|| TypeError::UnboundVar(x.clone()))?;
                Ok((ty.clone(), Formula::tt()))
            }
            Expr::Field(recv, field) => {
                let (recv_ty, pi) = self.expr(env, recv)?;
                if self.program.interface(&recv_ty).is_some() {
                    return Err(TypeError::NoSuchField {
                        ty: recv_ty,
                        field: field.clone(),
                    });
                }
                let fields = self.fields(&recv_ty)?;
                let f = fields.iter().find(|f| f.name == *field).ok_or_else(|| {
                    TypeError::NoSuchField {
                        ty: recv_ty.clone(),
                        field: field.clone(),
                    }
                })?;
                Ok((f.ty.clone(), pi))
            }
            Expr::Call(recv, method, args) => {
                let (recv_ty, pi) = self.expr(env, recv)?;
                let (param_tys, ret) =
                    self.mtype(method, &recv_ty)?
                        .ok_or_else(|| TypeError::NoSuchMethod {
                            ty: recv_ty.clone(),
                            method: method.clone(),
                        })?;
                if args.len() != param_tys.len() {
                    return Err(TypeError::ArityMismatch {
                        target: format!("{recv_ty}.{method}()"),
                        expected: param_tys.len(),
                        found: args.len(),
                    });
                }
                let mut parts = vec![self.type_var(&recv_ty)?, pi];
                for (arg, want) in args.iter().zip(&param_tys) {
                    let (got, pi_arg) = self.expr(env, arg)?;
                    let pi_sub =
                        self.subtype(&got, want)?
                            .ok_or_else(|| TypeError::NotSubtype {
                                sub: got.clone(),
                                sup: want.clone(),
                            })?;
                    parts.push(pi_arg);
                    parts.push(pi_sub);
                }
                parts.push(self.many(method, &recv_ty)?);
                Ok((ret, Formula::and(parts)))
            }
            Expr::New(class, args) => {
                let decl = self.program.class(class).ok_or_else(|| {
                    if self.program.is_type(class) {
                        TypeError::BadKind {
                            name: class.clone(),
                            expected: "class",
                        }
                    } else {
                        TypeError::UnknownType(class.clone())
                    }
                })?;
                let fields = self.fields(&decl.name)?;
                if args.len() != fields.len() {
                    return Err(TypeError::ArityMismatch {
                        target: format!("new {class}()"),
                        expected: fields.len(),
                        found: args.len(),
                    });
                }
                let mut parts = vec![self.type_var(class)?];
                for (arg, want) in args.iter().zip(&fields) {
                    let (got, pi_arg) = self.expr(env, arg)?;
                    let pi_sub =
                        self.subtype(&got, &want.ty)?
                            .ok_or_else(|| TypeError::NotSubtype {
                                sub: got.clone(),
                                sup: want.ty.clone(),
                            })?;
                    parts.push(pi_arg);
                    parts.push(pi_sub);
                }
                Ok((class.clone(), Formula::and(parts)))
            }
            Expr::Cast(ty, inner) => {
                let (_inner_ty, pi) = self.expr(env, inner)?;
                let tv = self.type_var(ty)?;
                Ok((ty.clone(), Formula::and([tv, pi])))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::vars::ItemRegistry;

    fn check(src: &str) -> Result<Formula, TypeError> {
        let p = parse_program(src).expect("parses");
        let reg = ItemRegistry::from_program(&p);
        typecheck(&p, &reg)
    }

    #[test]
    fn minimal_program_checks() {
        let f = check(
            "class A extends Object implements EmptyInterface { A() { super(); } }\nnew A();",
        )
        .unwrap();
        // π is just [A] for the main expression.
        let cnf = f.to_cnf();
        assert_eq!(cnf.len(), 1);
    }

    #[test]
    fn field_access_types() {
        check(
            "class A extends Object implements EmptyInterface {
               String s;
               A(String s) { super(); this.s = s; }
               String m() { return this.s; }
             }
             new A(x);",
        )
        .unwrap_err(); // x unbound in main
        let ok = check(
            "class A extends Object implements EmptyInterface {
               String s;
               A(String s) { super(); this.s = s; }
               String m() { return this.s; }
             }
             new A(new A(new B().t()).m());
            ",
        );
        // B unknown.
        assert!(matches!(ok, Err(TypeError::UnknownType(_))));
    }

    #[test]
    fn inherited_fields_in_constructor() {
        check(
            "class A extends Object implements EmptyInterface {
               String s;
               A(String s) { super(); this.s = s; }
             }
             class B extends A implements EmptyInterface {
               String t;
               B(String s, String t) { super(s); this.t = t; }
               String both() { return this.s; }
             }
             new A(new B(a, b).t);",
        )
        .unwrap_err(); // a, b unbound — but class bodies themselves check
        let err = check(
            "class A extends Object implements EmptyInterface {
               String s;
               A(String s) { super(); this.s = s; }
             }
             class B extends A implements EmptyInterface {
               String t;
               B(String t) { super(); this.t = t; }
             }
             new B(new A(x).s);",
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::BadConstructor(_)), "{err:?}");
    }

    #[test]
    fn override_must_match() {
        let err = check(
            "class A extends Object implements EmptyInterface {
               A() { super(); }
               String m() { return this.m(); }
             }
             class B extends A implements EmptyInterface {
               B() { super(); }
               B m() { return new B(); }
             }
             new B();",
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::BadOverride { .. }), "{err:?}");
    }

    #[test]
    fn signature_must_be_implemented() {
        let err = check(
            "class A extends Object implements I {
               A() { super(); }
             }
             interface I { String m(); }
             new A();",
        )
        .unwrap_err();
        assert!(
            matches!(err, TypeError::SignatureUnimplemented { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn signature_can_be_inherited() {
        // B inherits A.m(), satisfying I via inheritance — the paper's
        // "we can refer to methods that are defined in a superclass".
        let f = check(
            "class A extends Object implements EmptyInterface {
               A() { super(); }
               String m() { return this.m(); }
             }
             class B extends A implements I {
               B() { super(); }
             }
             interface I { String m(); }
             new B().m();",
        )
        .unwrap();
        // The relative-signature constraint must mention [A.m()] through
        // mAny(P, m, B) = mAny(P, m, A) = [A.m()].
        let text = format!("{f:?}");
        assert!(
            text.contains('v'),
            "formula should mention variables: {text}"
        );
    }

    #[test]
    fn call_through_interface() {
        check(
            "class A extends Object implements I {
               A() { super(); }
               String m() { return this.m(); }
             }
             interface I { String m(); }
             class M extends Object implements EmptyInterface {
               M() { super(); }
               String x(I a) { return a.m(); }
             }
             new M().x(new A());",
        )
        .unwrap();
    }

    #[test]
    fn cast_requires_type_exists() {
        let err = check(
            "class A extends Object implements EmptyInterface {
               A() { super(); }
               Object m() { return (Missing) this; }
             }
             new A();",
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::UnknownType(_)));
        // Downcasts are allowed (FJ-style): Object → A.
        check(
            "class A extends Object implements EmptyInterface {
               A() { super(); }
               A m(Object o) { return (A) o; }
             }
             new A();",
        )
        .unwrap();
    }

    #[test]
    fn arity_checked() {
        let err = check(
            "class A extends Object implements EmptyInterface {
               A() { super(); }
               String m(String s) { return s; }
             }
             new A().m();",
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::ArityMismatch { .. }));
    }

    #[test]
    fn inheritance_cycle_detected() {
        let err = check(
            "class A extends B implements EmptyInterface { A() { super(); } }
             class B extends A implements EmptyInterface { B() { super(); } }
             new A();",
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::InheritanceCycle(_)), "{err:?}");
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let err = check(
            "class A extends Object implements EmptyInterface { A() { super(); } }
             class A extends Object implements EmptyInterface { A() { super(); } }
             new A();",
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::DuplicateDecl(_)));
        let err = check(
            "class String extends Object implements EmptyInterface { String() { super(); } }
             new String();",
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::DuplicateDecl(_)));
    }

    #[test]
    fn class_cannot_extend_interface() {
        let err = check(
            "interface I { }
             class A extends I implements EmptyInterface { A() { super(); } }
             new A();",
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::BadKind { .. }), "{err:?}");
    }

    #[test]
    fn interface_not_instantiable() {
        let err = check("interface I { }\nnew I();").unwrap_err();
        assert!(matches!(err, TypeError::BadKind { .. }));
    }
}
