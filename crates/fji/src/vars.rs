//! The Boolean variables `V(P)` of a program (Section 3).
//!
//! Six kinds of variables toggle the removable constructs: `[C]` a class,
//! `[I]` an interface, `[C ◁ I]` an implements relation, `[C.m()]` a
//! method, `[C.m()!code]` a method body, and `[I.m()]` a signature.
//! Built-in types (`Object`, `String`, `EmptyInterface`) are never reduced,
//! so they get no variables — "we replace their variables with true".

use crate::ast::{is_builtin, Program, EMPTY_INTERFACE};
use lbr_logic::{Formula, Var, VarSet};
use std::collections::HashMap;
use std::fmt;

/// A reducible construct of an FJI program.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Item {
    /// `[C]` — the class itself.
    Class(String),
    /// `[I]` — the interface itself.
    Interface(String),
    /// `[C ◁ I]` — that `C` implements `I` (removal rewires to
    /// `EmptyInterface`).
    Impl(String, String),
    /// `[C.m()]` — the method `m` in class `C`.
    Method(String, String),
    /// `[C.m()!code]` — the body of `C.m()` (removal replaces it with a
    /// trivial body).
    MethodCode(String, String),
    /// `[I.m()]` — the signature `m` in interface `I`.
    Signature(String, String),
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Class(c) => write!(f, "[{c}]"),
            Item::Interface(i) => write!(f, "[{i}]"),
            Item::Impl(c, i) => write!(f, "[{c}<{i}]"),
            Item::Method(c, m) => write!(f, "[{c}.{m}()]"),
            Item::MethodCode(c, m) => write!(f, "[{c}.{m}()!code]"),
            Item::Signature(i, m) => write!(f, "[{i}.{m}()]"),
        }
    }
}

/// Maps the items of a program to dense logic variables and back.
///
/// Built-in types yield no variable; [`ItemRegistry::formula`] returns the
/// constant `true` for them, so constraint generation can mention them
/// uniformly.
///
/// # Examples
///
/// ```
/// use lbr_fji::{figure1_program, ItemRegistry, Item};
/// let program = figure1_program();
/// let reg = ItemRegistry::from_program(&program);
/// assert_eq!(reg.len(), 20); // the paper's 20 variables
/// assert!(reg.var(&Item::Impl("A".into(), "I".into())).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ItemRegistry {
    items: Vec<Item>,
    index: HashMap<Item, Var>,
}

impl ItemRegistry {
    /// Collects the variables of `program` in declaration order (classes:
    /// `[C]`, `[C◁I]`, then per method `[C.m()]`, `[C.m()!code]`;
    /// interfaces: `[I]` then `[I.m()]` per signature).
    pub fn from_program(program: &Program) -> Self {
        let mut reg = ItemRegistry::default();
        for class in program.classes() {
            reg.add(Item::Class(class.name.clone()));
            if class.interface != EMPTY_INTERFACE {
                reg.add(Item::Impl(class.name.clone(), class.interface.clone()));
            }
            for m in &class.methods {
                reg.add(Item::Method(class.name.clone(), m.name.clone()));
                reg.add(Item::MethodCode(class.name.clone(), m.name.clone()));
            }
        }
        for iface in program.interfaces() {
            reg.add(Item::Interface(iface.name.clone()));
            for s in &iface.sigs {
                reg.add(Item::Signature(iface.name.clone(), s.name.clone()));
            }
        }
        reg
    }

    fn add(&mut self, item: Item) -> Var {
        if let Some(&v) = self.index.get(&item) {
            return v;
        }
        let v = Var::new(self.items.len() as u32);
        self.items.push(item.clone());
        self.index.insert(item, v);
        v
    }

    /// The variable of an item, or `None` for unregistered (built-in or
    /// foreign) items.
    pub fn var(&self, item: &Item) -> Option<Var> {
        self.index.get(item).copied()
    }

    /// The item of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not from this registry.
    pub fn item(&self, v: Var) -> &Item {
        &self.items[v.index()]
    }

    /// Number of registered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items are registered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All items in variable order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The formula for an item: its variable, or `true` for built-ins.
    pub fn formula(&self, item: &Item) -> Formula {
        match self.var(item) {
            Some(v) => Formula::var(v),
            None => Formula::tt(),
        }
    }

    /// The formula for a type name used in a constraint position: `true`
    /// for built-ins, `[C]` or `[I]` otherwise.
    pub fn type_formula(&self, program: &Program, name: &str) -> Formula {
        if is_builtin(name) {
            return Formula::tt();
        }
        if program.is_class(name) {
            self.formula(&Item::Class(name.to_owned()))
        } else {
            self.formula(&Item::Interface(name.to_owned()))
        }
    }

    /// Renders a solution the way the paper prints them.
    pub fn render_solution(&self, solution: &VarSet) -> String {
        let mut parts: Vec<String> = solution.iter().map(|v| self.item(v).to_string()).collect();
        parts.sort();
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn tiny_program() -> Program {
        Program {
            decls: vec![
                TypeDecl::Class(ClassDecl {
                    name: "A".into(),
                    superclass: OBJECT.into(),
                    interface: "I".into(),
                    fields: vec![],
                    ctor: Constructor::canonical(&[], &[]),
                    methods: vec![Method {
                        ret: STRING.into(),
                        name: "m".into(),
                        params: vec![],
                        body: Expr::this().call("m", vec![]),
                    }],
                }),
                TypeDecl::Interface(InterfaceDecl {
                    name: "I".into(),
                    sigs: vec![Signature {
                        ret: STRING.into(),
                        name: "m".into(),
                        params: vec![],
                    }],
                }),
            ],
            main: Expr::this(),
        }
    }

    #[test]
    fn registry_items_in_order() {
        let p = tiny_program();
        let reg = ItemRegistry::from_program(&p);
        let names: Vec<String> = reg.items().iter().map(|i| i.to_string()).collect();
        assert_eq!(
            names,
            vec!["[A]", "[A<I]", "[A.m()]", "[A.m()!code]", "[I]", "[I.m()]"]
        );
    }

    #[test]
    fn builtins_are_true() {
        let p = tiny_program();
        let reg = ItemRegistry::from_program(&p);
        assert_eq!(reg.type_formula(&p, STRING), Formula::tt());
        assert_eq!(reg.type_formula(&p, OBJECT), Formula::tt());
        assert!(matches!(reg.type_formula(&p, "A"), Formula::Var(_)));
        assert!(matches!(reg.type_formula(&p, "I"), Formula::Var(_)));
    }

    #[test]
    fn empty_interface_has_no_impl_var() {
        let mut p = tiny_program();
        if let TypeDecl::Class(c) = &mut p.decls[0] {
            c.interface = EMPTY_INTERFACE.into();
        }
        let reg = ItemRegistry::from_program(&p);
        assert!(reg
            .var(&Item::Impl("A".into(), EMPTY_INTERFACE.into()))
            .is_none());
        assert_eq!(reg.len(), 5);
    }

    #[test]
    fn item_display() {
        assert_eq!(
            Item::MethodCode("A".into(), "m".into()).to_string(),
            "[A.m()!code]"
        );
        assert_eq!(Item::Impl("A".into(), "I".into()).to_string(), "[A<I]");
    }

    #[test]
    fn render_solution_sorted() {
        let p = tiny_program();
        let reg = ItemRegistry::from_program(&p);
        let mut s = VarSet::empty(reg.len());
        s.insert(reg.var(&Item::Class("A".into())).unwrap());
        s.insert(reg.var(&Item::Interface("I".into())).unwrap());
        assert_eq!(reg.render_solution(&s), "[A], [I]");
    }
}
