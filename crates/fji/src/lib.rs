//! Featherweight Java with Interfaces (FJI) — the formal core of *Logical
//! Bytecode Reduction* (Section 3).
//!
//! FJI extends Featherweight Java with single-interface implementation; it
//! is "a convenient setting in which to show that reduced programs type
//! check". This crate provides:
//!
//! * the [`ast`] and a [`parser`](parse_program) / [`pretty`](mod@pretty) printer,
//! * the Boolean variables `V(P)` via [`ItemRegistry`] (six item kinds:
//!   classes, interfaces, implements relations, methods, method bodies,
//!   signatures),
//! * the constraint-generating type checker [`typecheck`] (`⊢ P | π`,
//!   Figures 6–7),
//! * the reducer [`reduce`] (`reduce(P, φ)`, Figure 5),
//! * the paper's running example ([`figure1_program`], [`figure2_cnf`],
//!   [`figure1b_solution`]).
//!
//! Theorem 3.1 — every satisfying assignment reduces to a program that
//! type checks — is verified exhaustively over all 6,766 models of the
//! example in this crate's integration tests.
//!
//! # Example
//!
//! ```
//! use lbr_fji::{figure1_program, typecheck_decls, ItemRegistry};
//! use lbr_logic::count_models;
//!
//! let program = figure1_program();
//! let reg = ItemRegistry::from_program(&program);
//! let formula = typecheck_decls(&program, &reg)?;
//! let mut cnf = formula.to_cnf();
//! cnf.ensure_vars(reg.len());
//! // The paper counts 6,766 valid sub-inputs with sharpSAT.
//! assert_eq!(count_models(&cnf), 6_766);
//! # Ok::<(), lbr_fji::TypeError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
mod example;
mod parser;
pub mod pretty;
mod reduce;
mod typecheck;
mod vars;

pub use ast::{
    ClassDecl, Constructor, Expr, Field, InterfaceDecl, Method, Program, Signature, TypeDecl,
};
pub use example::{
    figure1_program, figure1b_solution, figure2_cnf, figure2_dependency_cnf, figure2_var,
    FIGURE1_SOURCE,
};
pub use parser::{parse_expr, parse_program, ParseError};
pub use pretty::{line_count, pretty, pretty_expr};
pub use reduce::{program_size, reduce};
pub use typecheck::{typecheck, typecheck_decls, typechecks, TypeError};
pub use vars::{Item, ItemRegistry};
