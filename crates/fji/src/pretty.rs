//! Pretty printer for FJI programs.
//!
//! The output parses back with [`crate::parser::parse_program`]; round-trip
//! stability is tested below and property-tested in the crate's integration
//! tests.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a program as FJI source text.
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    for decl in &program.decls {
        match decl {
            TypeDecl::Class(c) => pretty_class(&mut out, c),
            TypeDecl::Interface(i) => pretty_interface(&mut out, i),
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{};", pretty_expr(&program.main));
    out
}

fn pretty_class(out: &mut String, c: &ClassDecl) {
    let _ = writeln!(
        out,
        "class {} extends {} implements {} {{",
        c.name, c.superclass, c.interface
    );
    for f in &c.fields {
        let _ = writeln!(out, "  {} {};", f.ty, f.name);
    }
    // Constructor.
    let params = params_text(&c.ctor.params);
    let supers = c.ctor.super_args.join(", ");
    let _ = write!(out, "  {}({}) {{ super({});", c.name, params, supers);
    for (field, param) in &c.ctor.inits {
        let _ = write!(out, " this.{field} = {param};");
    }
    let _ = writeln!(out, " }}");
    for m in &c.methods {
        let _ = writeln!(
            out,
            "  {} {}({}) {{ return {}; }}",
            m.ret,
            m.name,
            params_text(&m.params),
            pretty_expr(&m.body)
        );
    }
    let _ = writeln!(out, "}}");
}

fn pretty_interface(out: &mut String, i: &InterfaceDecl) {
    let _ = writeln!(out, "interface {} {{", i.name);
    for s in &i.sigs {
        let _ = writeln!(out, "  {} {}({});", s.ret, s.name, params_text(&s.params));
    }
    let _ = writeln!(out, "}}");
}

fn params_text(params: &[Field]) -> String {
    params
        .iter()
        .map(|p| format!("{} {}", p.ty, p.name))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders an expression.
pub fn pretty_expr(e: &Expr) -> String {
    match e {
        Expr::Var(x) => x.clone(),
        Expr::Field(recv, f) => format!("{}.{}", pretty_receiver(recv), f),
        Expr::Call(recv, m, args) => {
            format!("{}.{}({})", pretty_receiver(recv), m, args_text(args))
        }
        Expr::New(c, args) => format!("new {}({})", c, args_text(args)),
        Expr::Cast(t, inner) => {
            // The cast operand parses as a primary; calls and field
            // accesses need explicit parentheses to round-trip (otherwise
            // `(T) a.m()` re-parses as `((T) a).m()`).
            let operand = match inner.as_ref() {
                Expr::Call(..) | Expr::Field(..) => format!("({})", pretty_expr(inner)),
                _ => pretty_expr(inner),
            };
            format!("(({t}) {operand})")
        }
    }
}

/// Receivers of `.` need parentheses around casts to re-parse.
fn pretty_receiver(e: &Expr) -> String {
    pretty_expr(e)
}

fn args_text(args: &[Expr]) -> String {
    args.iter().map(pretty_expr).collect::<Vec<_>>().join(", ")
}

/// Number of non-blank source lines in the pretty-printed program — the
/// "lines in the decompiled program" size metric of the paper's examples.
pub fn line_count(program: &Program) -> usize {
    pretty(program)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_expressions() {
        let e = Expr::new_object("M", vec![]).call("x", vec![Expr::new_object("A", vec![])]);
        assert_eq!(pretty_expr(&e), "new M().x(new A())");
        let cast = Expr::var("a").cast("I").call("m", vec![]);
        assert_eq!(pretty_expr(&cast), "((I) a).m()");
        let field = Expr::this().field("s");
        assert_eq!(pretty_expr(&field), "this.s");
    }

    #[test]
    fn prints_class() {
        let c = ClassDecl {
            name: "A".into(),
            superclass: OBJECT.into(),
            interface: "I".into(),
            fields: vec![Field::new(STRING, "s")],
            ctor: Constructor::canonical(&[], &[Field::new(STRING, "s")]),
            methods: vec![Method {
                ret: STRING.into(),
                name: "m".into(),
                params: vec![],
                body: Expr::this().field("s"),
            }],
        };
        let mut out = String::new();
        pretty_class(&mut out, &c);
        assert!(out.contains("class A extends Object implements I {"));
        assert!(out.contains("String s;"));
        assert!(out.contains("A(String s) { super(); this.s = s; }"));
        assert!(out.contains("String m() { return this.s; }"));
    }

    #[test]
    fn line_count_ignores_blanks() {
        let p = Program {
            decls: vec![],
            main: Expr::this(),
        };
        assert_eq!(line_count(&p), 1);
    }
}
