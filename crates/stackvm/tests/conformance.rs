//! Verifier conformance suite: every `R####` rule in [`lbr_stackvm::RULES`]
//! has one positive case (a module the rule accepts) and one negative case
//! (a module that violates exactly that rule), plus a table-driven
//! coverage test that fails when a rule is added to the verifier without
//! a conformance entry here.
//!
//! The cases are deliberately minimal — each negative module is the
//! smallest body that trips its rule — so a conformance failure points at
//! the rule, not at an unrelated interaction.

use lbr_stackvm::{rule, verify_module, Function, Global, Module, Op, Sig, Ty, RULES};

/// One conformance entry: the rule under test, a module it accepts, and a
/// module that violates it.
struct Case {
    rule: &'static str,
    positive: Module,
    negative: Module,
}

fn module_of(f: Function) -> Module {
    [f].into_iter().collect()
}

fn func(name: &str, body: Vec<Op>) -> Function {
    let mut f = Function::new(name, vec![], None);
    f.body = body;
    f
}

/// The conformance table, in rule-code order.
fn cases() -> Vec<Case> {
    let mut table = vec![
        // R0001: operand stack must not underflow.
        Case {
            rule: "R0001",
            positive: module_of(func("f", vec![Op::PushInt(1), Op::Drop, Op::Return])),
            negative: module_of(func("f", vec![Op::Drop, Op::Return])),
        },
        // R0002: operands must have the type the opcode consumes.
        Case {
            rule: "R0002",
            positive: module_of(func(
                "f",
                vec![
                    Op::PushInt(1),
                    Op::PushInt(2),
                    Op::Add,
                    Op::Drop,
                    Op::Return,
                ],
            )),
            negative: module_of(func(
                "f",
                vec![
                    Op::PushBool(true),
                    Op::PushInt(2),
                    Op::Add,
                    Op::Drop,
                    Op::Return,
                ],
            )),
        },
        // R0003: branch targets must lie inside the function body.
        Case {
            rule: "R0003",
            positive: module_of(func("f", vec![Op::Jump(1), Op::Return])),
            negative: module_of(func("f", vec![Op::Jump(9), Op::Return])),
        },
        // R0004: all paths into a merge point must agree on the stack. The
        // negative merges the empty stack (branch taken) with [Int] (fall
        // through) at the Return.
        Case {
            rule: "R0004",
            positive: module_of(func(
                "f",
                vec![Op::PushBool(true), Op::JumpIf(3), Op::Trap, Op::Return],
            )),
            negative: module_of(func(
                "f",
                vec![
                    Op::PushBool(true),
                    Op::JumpIf(3),
                    Op::PushInt(7),
                    Op::Return,
                ],
            )),
        },
    ];

    // R0005: return must pop exactly the declared return type.
    let mut pos = Function::new("f", vec![], Some(Ty::Int));
    pos.body = vec![Op::PushInt(1), Op::Return];
    let mut neg = Function::new("f", vec![], Some(Ty::Int));
    neg.body = vec![Op::Return];
    table.push(Case {
        rule: "R0005",
        positive: module_of(pos),
        negative: module_of(neg),
    });

    // R0006: call targets must name an existing function.
    let mut pos = Module::new();
    pos.functions
        .push(func("main", vec![Op::Call("helper".into()), Op::Return]));
    pos.functions.push(func("helper", vec![Op::Return]));
    table.push(Case {
        rule: "R0006",
        positive: pos,
        negative: module_of(func("main", vec![Op::Call("nope".into()), Op::Return])),
    });

    // R0007: call arguments must match the callee's parameter types.
    let callee = || {
        let mut c = Function::new("callee", vec![Ty::Int], None);
        c.body = vec![Op::Return];
        c
    };
    let mut pos = Module::new();
    pos.functions.push(func(
        "main",
        vec![Op::PushInt(1), Op::Call("callee".into()), Op::Return],
    ));
    pos.functions.push(callee());
    let mut neg = Module::new();
    neg.functions.push(func(
        "main",
        vec![Op::PushBool(true), Op::Call("callee".into()), Op::Return],
    ));
    neg.functions.push(callee());
    table.push(Case {
        rule: "R0007",
        positive: pos,
        negative: neg,
    });

    // R0008: local slot indices must be in bounds.
    let mut pos = Function::new("f", vec![Ty::Int], None);
    pos.body = vec![Op::LocalGet(0), Op::Drop, Op::Return];
    table.push(Case {
        rule: "R0008",
        positive: module_of(pos),
        negative: module_of(func("f", vec![Op::LocalGet(5), Op::Drop, Op::Return])),
    });

    // R0009: global accesses must name an existing global.
    let mut pos = Module::new();
    pos.globals.push(Global::new("g", Ty::Int));
    pos.functions.push(func(
        "f",
        vec![Op::GlobalGet("g".into()), Op::Drop, Op::Return],
    ));
    table.push(Case {
        rule: "R0009",
        positive: pos,
        negative: module_of(func(
            "f",
            vec![Op::GlobalGet("g".into()), Op::Drop, Op::Return],
        )),
    });

    // R0010: call_indirect needs at least one function of its signature.
    // The positive dispatches on the caller's own `() -> ()` signature;
    // the negative asks for a signature no function has.
    table.push(Case {
        rule: "R0010",
        positive: module_of(func(
            "f",
            vec![
                Op::PushInt(0),
                Op::CallIndirect(Sig::new(vec![], None)),
                Op::Return,
            ],
        )),
        negative: module_of(func(
            "f",
            vec![
                Op::PushInt(0),
                Op::CallIndirect(Sig::new(vec![Ty::Bool], Some(Ty::Bool))),
                Op::Return,
            ],
        )),
    });

    // R0011: control must not fall off the end of the body.
    table.push(Case {
        rule: "R0011",
        positive: module_of(func("f", vec![Op::PushInt(1), Op::Drop, Op::Return])),
        negative: module_of(func("f", vec![Op::PushInt(1), Op::Drop])),
    });

    // R0012: operand stack must stay within the declared max_stack.
    let mut pos = Function::new("f", vec![], None);
    pos.max_stack = 2;
    pos.body = vec![
        Op::PushInt(1),
        Op::PushInt(2),
        Op::Add,
        Op::Drop,
        Op::Return,
    ];
    let mut neg = Function::new("f", vec![], None);
    neg.max_stack = 1;
    neg.body = vec![
        Op::PushInt(1),
        Op::PushInt(2),
        Op::Add,
        Op::Drop,
        Op::Return,
    ];
    table.push(Case {
        rule: "R0012",
        positive: module_of(pos),
        negative: module_of(neg),
    });

    table
}

fn case_for(id: &str) -> Case {
    cases()
        .into_iter()
        .find(|c| c.rule == id)
        .unwrap_or_else(|| panic!("no conformance case for {id}"))
}

fn assert_accepts(id: &str, module: &Module) {
    let errors = verify_module(module);
    assert!(
        errors.is_empty(),
        "{id} positive case rejected: {:?}",
        errors
    );
}

fn assert_rejects_with(id: &str, module: &Module) {
    let errors = verify_module(module);
    assert!(
        errors.iter().any(|e| e.rule == id),
        "{id} negative case did not trip {id}: {:?}",
        errors
    );
}

/// Table-driven coverage: the conformance table and the verifier's RULES
/// export must list exactly the same codes, in the same order, and every
/// entry's positive/negative pair must behave. Adding a rule to the
/// verifier without a conformance case fails here.
#[test]
fn every_rule_has_a_conformance_case() {
    let table = cases();
    let table_ids: Vec<&str> = table.iter().map(|c| c.rule).collect();
    let rule_ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    assert_eq!(table_ids, rule_ids, "conformance table out of sync");
    for case in &table {
        assert!(rule(case.rule).is_some());
        assert_accepts(case.rule, &case.positive);
        assert_rejects_with(case.rule, &case.negative);
    }
}

/// The negative cases are *minimal*: each trips only its own rule (no
/// collateral codes), so a failure identifies the rule unambiguously.
#[test]
fn negative_cases_trip_only_their_own_rule() {
    for case in cases() {
        let codes: std::collections::BTreeSet<&str> = verify_module(&case.negative)
            .iter()
            .map(|e| e.rule)
            .collect();
        assert_eq!(
            codes,
            [case.rule].into_iter().collect(),
            "{} negative case trips extra rules",
            case.rule
        );
    }
}

#[test]
fn r0001_stack_underflow() {
    let case = case_for("R0001");
    assert_accepts("R0001", &case.positive);
    assert_rejects_with("R0001", &case.negative);
}

#[test]
fn r0002_operand_type() {
    let case = case_for("R0002");
    assert_accepts("R0002", &case.positive);
    assert_rejects_with("R0002", &case.negative);
}

#[test]
fn r0003_branch_target_bounds() {
    let case = case_for("R0003");
    assert_accepts("R0003", &case.positive);
    assert_rejects_with("R0003", &case.negative);
}

#[test]
fn r0004_merge_agreement() {
    let case = case_for("R0004");
    assert_accepts("R0004", &case.positive);
    assert_rejects_with("R0004", &case.negative);
}

#[test]
fn r0005_return_type() {
    let case = case_for("R0005");
    assert_accepts("R0005", &case.positive);
    assert_rejects_with("R0005", &case.negative);
}

#[test]
fn r0006_call_resolution() {
    let case = case_for("R0006");
    assert_accepts("R0006", &case.positive);
    assert_rejects_with("R0006", &case.negative);
}

#[test]
fn r0007_call_arguments() {
    let case = case_for("R0007");
    assert_accepts("R0007", &case.positive);
    assert_rejects_with("R0007", &case.negative);
}

#[test]
fn r0008_local_bounds() {
    let case = case_for("R0008");
    assert_accepts("R0008", &case.positive);
    assert_rejects_with("R0008", &case.negative);
}

#[test]
fn r0009_global_resolution() {
    let case = case_for("R0009");
    assert_accepts("R0009", &case.positive);
    assert_rejects_with("R0009", &case.negative);
}

#[test]
fn r0010_indirect_candidates() {
    let case = case_for("R0010");
    assert_accepts("R0010", &case.positive);
    assert_rejects_with("R0010", &case.negative);
}

#[test]
fn r0011_fall_off_end() {
    let case = case_for("R0011");
    assert_accepts("R0011", &case.positive);
    assert_rejects_with("R0011", &case.negative);
}

#[test]
fn r0012_max_stack() {
    let case = case_for("R0012");
    assert_accepts("R0012", &case.positive);
    assert_rejects_with("R0012", &case.negative);
}
