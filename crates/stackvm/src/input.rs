//! The stackvm frontend behind the format-agnostic [`Input`] trait.
//!
//! Same adapter shape as the classfile frontend: the logical model is
//! [`build_stack_model`]'s CNF with [`reduce_module`] as the solution
//! applier, the coarse model is [`UnitGraph`]'s unit graph, and
//! serialization/validation delegate to the binary format and the
//! verifier. With this impl in place, every pipeline entry point —
//! sessions, the daemon, the fuzzer — runs stackvm modules unchanged.

use crate::graph::UnitGraph;
use crate::io::{module_byte_size, read_module, write_module};
use crate::model::build_stack_model;
use crate::module::Module;
use crate::reducer::reduce_module;
use crate::verify::verify_module;
use lbr_core::{CoarseModel, Input, InputModel};
use lbr_logic::VarSet;

impl Input for Module {
    const FORMAT: &'static str = "stackvm";

    fn model(&self) -> Result<InputModel<'_, Self>, String> {
        let model = build_stack_model(self).map_err(|e| e.to_string())?;
        let stats = model.stats();
        let registry = model.registry;
        // Containment depth: functions and globals are top-level units,
        // bodies are nested inside their functions.
        let levels = registry
            .iter()
            .map(|(_, item)| match item {
                crate::StackItem::Body(_) => 1,
                _ => 0,
            })
            .collect();
        Ok(InputModel {
            cnf: model.cnf,
            stats,
            levels,
            materialize: Box::new(move |keep: &VarSet| reduce_module(self, &registry, keep)),
        })
    }

    fn coarse_model(&self) -> CoarseModel<'_, Self> {
        let ug = UnitGraph::new(self);
        CoarseModel {
            graph: ug.graph.clone(),
            materialize: Box::new(move |keep: &VarSet| ug.subset_module(self, keep)),
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        write_module(self)
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        read_module(bytes).map_err(|e| e.to_string())
    }

    fn byte_size(&self) -> usize {
        module_byte_size(self)
    }

    fn unit_count(&self) -> usize {
        self.unit_count()
    }

    fn validate(&self) -> Vec<String> {
        verify_module(self)
            .into_iter()
            .map(|e| e.to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Function, Global, Op, Ty};

    fn sample() -> Module {
        let mut m = Module::new();
        m.globals.push(Global::new("g", Ty::Int));
        let mut main = Function::new("main", vec![], None);
        main.body = vec![Op::Call("helper".into()), Op::Return];
        m.functions.push(main);
        let mut helper = Function::new("helper", vec![], None);
        helper.body = vec![Op::GlobalGet("g".into()), Op::Drop, Op::Return];
        m.functions.push(helper);
        m
    }

    #[test]
    fn serialization_matches_concrete_functions() {
        let m = sample();
        assert_eq!(m.to_bytes(), write_module(&m));
        assert_eq!(Module::from_bytes(&m.to_bytes()), Ok(m.clone()));
        assert_eq!(Input::byte_size(&m), module_byte_size(&m));
        assert_eq!(Input::unit_count(&m), 3);
        assert!(m.validate().is_empty());
        assert_eq!(<Module as Input>::FORMAT, "stackvm");
    }

    #[test]
    fn model_materializes_like_reduce_module() {
        let m = sample();
        let trait_model = m.model().expect("model builds");
        let concrete = build_stack_model(&m).expect("model builds");
        assert_eq!(trait_model.cnf, concrete.cnf);
        assert_eq!(trait_model.stats, concrete.stats());
        let keep = VarSet::full(trait_model.cnf.num_vars());
        assert_eq!(
            (trait_model.materialize)(&keep),
            reduce_module(&m, &concrete.registry, &keep)
        );
    }

    #[test]
    fn coarse_model_materializes_closed_subsets() {
        let m = sample();
        let coarse = m.coarse_model();
        assert_eq!(coarse.graph.len(), 3);
        let ug = UnitGraph::new(&m);
        let node = ug.function_node(&m, "helper").unwrap();
        let closure = coarse.graph.closure_of([node]);
        let sub = (coarse.materialize)(&closure);
        assert!(sub.function("main").is_none());
        assert!(sub.function("helper").is_some());
        assert!(sub.global("g").is_some());
        assert!(sub.validate().is_empty());
    }
}
