//! The stack-machine bytecode format: modules, functions, globals, ops.
//!
//! A [`Module`] is the second input format behind `lbr-core`'s `Input`
//! trait. It is deliberately smaller than the classfile format — two
//! value types, twenty-odd opcodes, structured control flow by absolute
//! branch targets — because its job is to exercise the *format-agnostic*
//! half of the reducer, not to model a production VM. What it does have
//! is a real abstract-interpretation verifier (see [`crate::verify`])
//! whose resolution callbacks generate the reduction constraints.

use std::fmt;

/// A value type on the operand stack, in locals, and in globals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Bool => write!(f, "bool"),
        }
    }
}

/// A function signature: parameter types plus optional return type.
/// `CallIndirect` dispatches on signatures, so equality matters.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sig {
    pub params: Vec<Ty>,
    pub ret: Option<Ty>,
}

impl Sig {
    pub fn new(params: Vec<Ty>, ret: Option<Ty>) -> Self {
        Sig { params, ret }
    }
}

impl fmt::Display for Sig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")?;
        match &self.ret {
            Some(r) => write!(f, " -> {r}"),
            None => Ok(()),
        }
    }
}

/// One instruction. Branch targets are absolute indices into the body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// Push an integer constant.
    PushInt(i64),
    /// Push a boolean constant.
    PushBool(bool),
    /// Pop two ints, push their sum.
    Add,
    /// Pop two ints, push their difference.
    Sub,
    /// Pop two ints, push their product.
    Mul,
    /// Pop two ints, push whether they are equal.
    Eq,
    /// Pop two ints, push whether the first is less than the second.
    Lt,
    /// Pop a bool, push its negation.
    Not,
    /// Duplicate the top of the stack.
    Dup,
    /// Discard the top of the stack.
    Drop,
    /// Push the value of local slot `n` (params occupy the low slots).
    LocalGet(u32),
    /// Pop into local slot `n`.
    LocalSet(u32),
    /// Push the value of a named module global.
    GlobalGet(String),
    /// Pop into a named module global.
    GlobalSet(String),
    /// Call a function by name: pops its params, pushes its return.
    Call(String),
    /// Pop an int index and dispatch to *some* function with this
    /// signature. The verifier only demands that at least one function
    /// with a matching signature exists — which is exactly an
    /// Or-constraint over the candidates.
    CallIndirect(Sig),
    /// Unconditional branch to an absolute instruction index.
    Jump(u32),
    /// Pop a bool; branch to the target when it is true.
    JumpIf(u32),
    /// Return from the function (pops the declared return value, if any).
    Return,
    /// Halt with a runtime error. Verifies under any stack — this is the
    /// body stub the reducer leaves behind, mirroring the classfile
    /// reducer's `aconst_null; athrow`.
    Trap,
}

/// A named module-level mutable variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Global {
    pub name: String,
    pub ty: Ty,
}

impl Global {
    pub fn new(name: impl Into<String>, ty: Ty) -> Self {
        Global {
            name: name.into(),
            ty,
        }
    }
}

/// One function: signature, extra local slots, a declared operand-stack
/// budget, and a body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Function {
    pub name: String,
    pub params: Vec<Ty>,
    pub ret: Option<Ty>,
    /// Types of the local slots *after* the params: local slot `i` is
    /// `params[i]` for `i < params.len()`, else `locals[i - params.len()]`.
    pub locals: Vec<Ty>,
    /// Declared maximum operand-stack depth; the verifier enforces it.
    pub max_stack: u32,
    pub body: Vec<Op>,
}

impl Function {
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> Self {
        Function {
            name: name.into(),
            params,
            ret,
            locals: Vec::new(),
            max_stack: 8,
            body: vec![Op::Trap],
        }
    }

    /// The function's signature (what `CallIndirect` matches on).
    pub fn sig(&self) -> Sig {
        Sig::new(self.params.clone(), self.ret)
    }

    /// Total number of local slots (params + extra locals).
    pub fn local_count(&self) -> usize {
        self.params.len() + self.locals.len()
    }

    /// The type of local slot `n`, if it exists.
    pub fn local_ty(&self, n: u32) -> Option<Ty> {
        let n = n as usize;
        if n < self.params.len() {
            Some(self.params[n])
        } else {
            self.locals.get(n - self.params.len()).copied()
        }
    }
}

/// A module: an ordered list of functions and globals. Order is part of
/// the format (serialization round-trips it), and the item registry
/// derives variable numbering from it, so reduction is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    pub functions: Vec<Function>,
    pub globals: Vec<Global>,
}

impl Module {
    pub fn new() -> Self {
        Module::default()
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Look up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Number of top-level units (functions + globals); the stackvm
    /// analog of a program's class count.
    pub fn unit_count(&self) -> usize {
        self.functions.len() + self.globals.len()
    }
}

impl FromIterator<Function> for Module {
    fn from_iter<I: IntoIterator<Item = Function>>(iter: I) -> Self {
        Module {
            functions: iter.into_iter().collect(),
            globals: Vec::new(),
        }
    }
}
