//! The logical model of a stackvm module, generated *by the verifier*.
//!
//! [`build_stack_model`] runs [`verify_module_with`] once over the
//! original module with a constraint-collecting hook implementation:
//! every resolution the verifier performs becomes one implication, so
//! the set of constraints is — by construction — exactly what the
//! verifier will re-check on any reduced candidate. Structural facts
//! (a body belongs to its function) are added directly; `call_indirect`
//! resolutions become Or-constraints over the candidate set, the
//! beyond-graph clause shape that motivates the logical reducer.

use crate::item::StackRegistry;
use crate::module::{Module, Sig};
use crate::verify::{verify_module_with, VerifyError, VerifyHooks};
use lbr_core::ModelStats;
use lbr_logic::{Cnf, Formula, Var};
use std::collections::BTreeSet;
use std::fmt;

/// The module failed verification, so no model exists.
#[derive(Debug, Clone)]
pub struct StackModelError {
    /// The verifier's findings.
    pub errors: Vec<VerifyError>,
}

impl fmt::Display for StackModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "module does not verify: ")?;
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for StackModelError {}

/// A module's items and dependency constraints.
#[derive(Debug, Clone)]
pub struct StackModel {
    /// The item ↔ variable numbering.
    pub registry: StackRegistry,
    /// The dependency constraints in CNF.
    pub cnf: Cnf,
}

impl StackModel {
    /// Summary statistics for reports.
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            items: self.registry.len(),
            clauses: self.cnf.len(),
            graph_fraction: self.cnf.graph_fraction(),
        }
    }
}

/// The verifier hook that records resolutions as dependency edges.
/// Edges are deduplicated and sorted, so clause order is deterministic
/// regardless of how many times a body mentions the same name.
struct Collector<'m> {
    module: &'m Module,
    registry: &'m StackRegistry,
    /// `a ⇒ b` edges.
    implications: BTreeSet<(Var, Var)>,
    /// `a ⇒ b₁ ∨ … ∨ bₙ` edges (the R0010 candidate sets).
    any: BTreeSet<(Var, Vec<Var>)>,
}

impl Collector<'_> {
    fn function_index(&self, name: &str) -> Option<usize> {
        self.module.functions.iter().position(|f| f.name == name)
    }

    fn global_index(&self, name: &str) -> Option<usize> {
        self.module.globals.iter().position(|g| g.name == name)
    }
}

impl VerifyHooks for Collector<'_> {
    fn on_call(&mut self, caller: &str, callee: &str) {
        let (Some(c), Some(t)) = (self.function_index(caller), self.function_index(callee)) else {
            return;
        };
        self.implications
            .insert((self.registry.body_var(c), self.registry.function_var(t)));
    }

    fn on_global(&mut self, function: &str, global: &str) {
        let (Some(f), Some(g)) = (self.function_index(function), self.global_index(global)) else {
            return;
        };
        self.implications.insert((
            self.registry.body_var(f),
            self.registry.global_var(self.module, g),
        ));
    }

    fn on_call_indirect(&mut self, caller: &str, _sig: &Sig, candidates: &[String]) {
        let Some(c) = self.function_index(caller) else {
            return;
        };
        let vars: Vec<Var> = candidates
            .iter()
            .filter_map(|name| self.function_index(name))
            .map(|i| self.registry.function_var(i))
            .collect();
        self.any.insert((self.registry.body_var(c), vars));
    }
}

/// Builds the logical model by verifying the module with a
/// constraint-collecting hook.
///
/// # Errors
///
/// [`StackModelError`] when the module itself fails verification —
/// reduction preserves validity, so it must start from a valid input.
pub fn build_stack_model(module: &Module) -> Result<StackModel, StackModelError> {
    let registry = StackRegistry::from_module(module);
    let mut collector = Collector {
        module,
        registry: &registry,
        implications: BTreeSet::new(),
        any: BTreeSet::new(),
    };
    let errors = verify_module_with(module, &mut collector);
    if !errors.is_empty() {
        return Err(StackModelError { errors });
    }
    let mut cnf = Cnf::new(registry.len());
    // Structural: a body belongs to its function.
    for i in 0..module.functions.len() {
        Formula::var(registry.body_var(i))
            .implies(Formula::var(registry.function_var(i)))
            .to_cnf_into(&mut cnf);
    }
    for (from, to) in &collector.implications {
        Formula::var(*from)
            .implies(Formula::var(*to))
            .to_cnf_into(&mut cnf);
    }
    for (from, candidates) in &collector.any {
        Formula::var(*from)
            .implies(Formula::or(candidates.iter().map(|v| Formula::var(*v))))
            .to_cnf_into(&mut cnf);
    }
    Ok(StackModel { registry, cnf })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Function, Global, Op, Sig, Ty};
    use lbr_logic::VarSet;

    fn diamond() -> Module {
        let mut m = Module::new();
        m.globals.push(Global::new("g", Ty::Int));
        let mut main = Function::new("main", vec![], None);
        main.body = vec![
            Op::Call("left".into()),
            Op::Call("right".into()),
            Op::Return,
        ];
        m.functions.push(main);
        let mut left = Function::new("left", vec![], None);
        left.body = vec![Op::GlobalGet("g".into()), Op::Drop, Op::Return];
        m.functions.push(left);
        let mut right = Function::new("right", vec![], None);
        right.body = vec![
            Op::PushInt(0),
            Op::CallIndirect(Sig::new(vec![], None)),
            Op::Return,
        ];
        m.functions.push(right);
        m
    }

    #[test]
    fn collects_call_global_and_indirect_constraints() {
        let m = diamond();
        let model = build_stack_model(&m).expect("verifies");
        // 3 function/body pairs + 1 global = 7 vars.
        assert_eq!(model.cnf.num_vars(), 7);
        let reg = &model.registry;
        // Keeping main's body forces left and right to exist.
        let mut keep = VarSet::empty(7);
        keep.insert(reg.function_var(0));
        keep.insert(reg.body_var(0));
        assert!(!model.cnf.eval(&keep));
        keep.insert(reg.function_var(1));
        keep.insert(reg.function_var(2));
        assert!(model.cnf.eval(&keep));
        // Keeping left's body forces the global.
        keep.insert(reg.body_var(1));
        assert!(!model.cnf.eval(&keep));
        keep.insert(reg.global_var(&m, 0));
        assert!(model.cnf.eval(&keep));
        // Keeping right's body needs at least one ()->() function: all
        // three qualify, and function 0/1/2 are already kept.
        keep.insert(reg.body_var(2));
        assert!(model.cnf.eval(&keep));
    }

    #[test]
    fn invalid_module_has_no_model() {
        let mut f = Function::new("bad", vec![], None);
        f.body = vec![Op::Call("missing".into()), Op::Return];
        let m: Module = [f].into_iter().collect();
        assert!(build_stack_model(&m).is_err());
    }

    #[test]
    fn or_constraint_is_beyond_graph_shape() {
        let mut m = Module::new();
        let mut main = Function::new("main", vec![], None);
        main.body = vec![
            Op::PushInt(0),
            Op::CallIndirect(Sig::new(vec![], None)),
            Op::Return,
        ];
        m.functions.push(main);
        let mut a = Function::new("a", vec![], None);
        a.body = vec![Op::Return];
        m.functions.push(a);
        let mut b = Function::new("b", vec![], None);
        b.body = vec![Op::Return];
        m.functions.push(b);
        let model = build_stack_model(&m).expect("verifies");
        // With a 3-way Or clause present, the CNF is not pure-graph.
        assert!(model.stats().graph_fraction < 1.0);
    }
}
