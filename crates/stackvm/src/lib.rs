//! `lbr-stackvm`: the second input frontend — a small stack-machine
//! bytecode whose abstract-interpretation verifier *is* the constraint
//! generator.
//!
//! The crate mirrors the classfile frontend layer by layer so the two
//! can be compared differentially:
//!
//! | layer | classfile | stackvm |
//! |---|---|---|
//! | format | [`lbr_classfile`-style] classes | [`Module`] of functions + globals |
//! | verifier | structural + hierarchy checks | abstract interpretation, `R####` rules |
//! | constraints | verify hooks → implications | [`verify::VerifyHooks`] → implications |
//! | beyond-graph | interface `mAny` | `call_indirect` candidate Or |
//! | stub | `aconst_null; athrow` | [`Op::Trap`] |
//! | tool | buggy decompiler | buggy lowering pass ([`StackBugSet`]) |
//!
//! [`Module`] implements `lbr_core::Input` and [`StackOracle`]
//! implements `lbr_core::InputOracle`, so every pipeline entry point
//! runs this format unchanged.

mod bugs;
mod graph;
mod input;
mod io;
mod item;
mod model;
mod module;
mod oracle;
mod reducer;
pub mod verify;

pub use bugs::{StackBugKind, StackBugSet};
pub use graph::UnitGraph;
pub use io::{module_byte_size, read_module, write_module, ReadError};
pub use item::{StackItem, StackRegistry};
pub use model::{build_stack_model, StackModel, StackModelError};
pub use module::{Function, Global, Module, Op, Sig, Ty};
pub use oracle::StackOracle;
pub use reducer::reduce_module;
pub use verify::{rule, verify_module, verify_module_with, NoHooks, Rule, VerifyError, RULES};
