//! The abstract-interpretation verifier — and, through its hooks, the
//! logical constraint generator.
//!
//! The verifier walks each function body tracking an abstract operand
//! stack (a vector of [`Ty`]), following control flow and checking at
//! branch-merge points that every incoming path agrees on the stack. All
//! rules carry stable `R####` codes (listed in [`RULES`]) in the style of
//! PLC bytecode verifiers, grouped by category: R0001–R0002 stack
//! discipline, R0003–R0004 control flow, R0005 returns, R0006–R0010
//! resolution, R0011–R0012 structure.
//!
//! Every *resolution* a rule checks is reported to [`VerifyHooks`]: a
//! `Call` resolving its target (R0006/R0007), a `GlobalGet`/`GlobalSet`
//! resolving its global (R0009), a `CallIndirect` finding its candidate
//! set (R0010). The logical model builder implements the hooks to turn
//! each resolution into exactly one implication — so the constraint
//! generator *is* the verifier, per the paper's thesis that reduction
//! validity and verification are the same judgment.

use crate::module::{Function, Module, Op, Sig, Ty};
use std::fmt;

/// One verifier rule: stable code, what it checks, and the logical
/// constraint its resolutions induce (`—` when the rule is a pure check
/// with no reduction constraint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable `R####` code.
    pub id: &'static str,
    /// What the rule enforces.
    pub summary: &'static str,
    /// The implication the model builder emits when the rule's
    /// resolution succeeds on the original module.
    pub constraint: &'static str,
}

/// Every rule the verifier enforces, in code order. The conformance
/// suite is table-driven off this list: each entry must have a positive
/// and a negative test, and every code the verifier can emit must appear
/// here.
pub const RULES: [Rule; 12] = [
    Rule {
        id: "R0001",
        summary: "operand stack must not underflow",
        constraint: "—",
    },
    Rule {
        id: "R0002",
        summary: "operands must have the type the opcode consumes",
        constraint: "—",
    },
    Rule {
        id: "R0003",
        summary: "branch targets must lie inside the function body",
        constraint: "—",
    },
    Rule {
        id: "R0004",
        summary: "all paths into a merge point must agree on the stack",
        constraint: "—",
    },
    Rule {
        id: "R0005",
        summary: "return must pop exactly the declared return type",
        constraint: "—",
    },
    Rule {
        id: "R0006",
        summary: "call targets must name an existing function",
        constraint: "Body(f) ⇒ Function(g)",
    },
    Rule {
        id: "R0007",
        summary: "call arguments must match the callee's parameter types",
        constraint: "—",
    },
    Rule {
        id: "R0008",
        summary: "local slot indices must be in bounds",
        constraint: "—",
    },
    Rule {
        id: "R0009",
        summary: "global accesses must name an existing global",
        constraint: "Body(f) ⇒ Global(g)",
    },
    Rule {
        id: "R0010",
        summary: "call_indirect needs at least one function of its signature",
        constraint: "Body(f) ⇒ Function(g₁) ∨ … ∨ Function(gₙ)",
    },
    Rule {
        id: "R0011",
        summary: "control must not fall off the end of the body",
        constraint: "—",
    },
    Rule {
        id: "R0012",
        summary: "operand stack must stay within the declared max_stack",
        constraint: "—",
    },
];

/// Looks up a rule by its `R####` code.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One verification failure: rule code, offending function, instruction
/// index (when the failure is at an instruction), and detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The violated rule's `R####` code.
    pub rule: &'static str,
    /// The function being verified.
    pub function: String,
    /// Index of the offending instruction, when applicable.
    pub at: Option<usize>,
    /// Human-readable specifics.
    pub detail: String,
}

impl VerifyError {
    fn new(rule: &'static str, function: &str, at: Option<usize>, detail: String) -> Self {
        VerifyError {
            rule,
            function: function.to_string(),
            at,
            detail,
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(pc) => write!(
                f,
                "{}: fn {} @{}: {}",
                self.rule, self.function, pc, self.detail
            ),
            None => write!(f, "{}: fn {}: {}", self.rule, self.function, self.detail),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Resolution callbacks: every successful name resolution the verifier
/// performs is reported here, once per reachable instruction, in body
/// order. [`NoHooks`] ignores them; the model builder turns each into a
/// dependency constraint.
pub trait VerifyHooks {
    /// `caller`'s body calls `callee` directly (rule R0006).
    fn on_call(&mut self, caller: &str, callee: &str) {
        let _ = (caller, callee);
    }
    /// `function`'s body reads or writes `global` (rule R0009).
    fn on_global(&mut self, function: &str, global: &str) {
        let _ = (function, global);
    }
    /// `caller`'s body dispatches indirectly on `sig`; `candidates` are
    /// the functions with that signature, in module order (rule R0010).
    fn on_call_indirect(&mut self, caller: &str, sig: &Sig, candidates: &[String]) {
        let _ = (caller, sig, candidates);
    }
}

/// Hooks that discard every resolution (plain verification).
pub struct NoHooks;

impl VerifyHooks for NoHooks {}

/// Verifies every function of a module. Empty result means the module
/// is well-formed.
pub fn verify_module(module: &Module) -> Vec<VerifyError> {
    verify_module_with(module, &mut NoHooks)
}

/// Verifies every function, reporting each successful resolution to
/// `hooks` (in function order, then body order — deterministically).
pub fn verify_module_with(module: &Module, hooks: &mut dyn VerifyHooks) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for f in &module.functions {
        verify_function(module, f, hooks, &mut errors);
    }
    errors
}

/// The abstract operand stack at one program point. `None` = not yet
/// reached.
type AbstractStack = Vec<Ty>;

/// What one instruction does to the abstract state.
enum Flow {
    /// Continue to `pc + 1`.
    Fall,
    /// Branch unconditionally.
    Jump(usize),
    /// Branch or fall through.
    Branch(usize),
    /// Control leaves the function.
    Stop,
}

/// Verifies one function body by abstract interpretation: a dataflow
/// fixpoint computes the entry stack of every reachable instruction,
/// then a single in-order reporting pass re-checks each reachable
/// instruction, emitting errors and firing hooks deterministically.
fn verify_function(
    module: &Module,
    f: &Function,
    hooks: &mut dyn VerifyHooks,
    errors: &mut Vec<VerifyError>,
) {
    if f.body.is_empty() {
        errors.push(VerifyError::new(
            "R0011",
            &f.name,
            None,
            "empty body: control falls off the end".into(),
        ));
        return;
    }
    let n = f.body.len();
    // Fixpoint: entry[pc] is the abstract stack on entry, merged over all
    // incoming edges; `conflict[pc]` records a failed merge (R0004).
    let mut entry: Vec<Option<AbstractStack>> = vec![None; n];
    let mut conflict = vec![false; n];
    entry[0] = Some(Vec::new());
    let mut changed = true;
    while changed {
        changed = false;
        for pc in 0..n {
            let Some(stack) = entry[pc].clone() else {
                continue;
            };
            if conflict[pc] {
                continue;
            }
            let mut stack = stack;
            // Interpretation errors stop propagation here; the reporting
            // pass will surface them.
            let Ok(flow) = interpret(module, f, pc, &mut stack, &mut Silent) else {
                continue;
            };
            let mut merge = |target: usize, incoming: &AbstractStack| {
                if target >= n {
                    return; // R0003, reported later.
                }
                match &entry[target] {
                    None => {
                        entry[target] = Some(incoming.clone());
                        changed = true;
                    }
                    Some(existing) if existing == incoming => {}
                    Some(_) => {
                        if !conflict[target] {
                            conflict[target] = true;
                            changed = true;
                        }
                    }
                }
            };
            match flow {
                Flow::Fall => merge(pc + 1, &stack),
                Flow::Jump(t) => merge(t, &stack),
                Flow::Branch(t) => {
                    merge(t, &stack);
                    merge(pc + 1, &stack);
                }
                Flow::Stop => {}
            }
        }
    }
    // Reporting pass: reachable instructions in body order.
    for pc in 0..n {
        let Some(stack) = &entry[pc] else {
            continue;
        };
        if conflict[pc] {
            errors.push(VerifyError::new(
                "R0004",
                &f.name,
                Some(pc),
                "paths into this merge point disagree on the operand stack".into(),
            ));
            continue;
        }
        let mut stack = stack.clone();
        let mut reporter = Reporter {
            module,
            function: &f.name,
            pc,
            hooks,
            errors,
        };
        match interpret(module, f, pc, &mut stack, &mut reporter) {
            Ok(Flow::Fall) | Ok(Flow::Branch(_)) if pc + 1 == n => {
                errors.push(VerifyError::new(
                    "R0011",
                    &f.name,
                    Some(pc),
                    "control falls off the end of the body".into(),
                ));
            }
            _ => {}
        }
    }
}

/// Where interpretation reports errors and resolutions. The fixpoint
/// uses [`Silent`] (it may visit an instruction many times); the
/// reporting pass uses [`Reporter`] (exactly once per instruction).
trait Sink {
    fn error(&mut self, rule: &'static str, detail: String);
    fn call(&mut self, callee: &str);
    fn global(&mut self, global: &str);
    fn call_indirect(&mut self, sig: &Sig, candidates: &[String]);
}

struct Silent;

impl Sink for Silent {
    fn error(&mut self, _rule: &'static str, _detail: String) {}
    fn call(&mut self, _callee: &str) {}
    fn global(&mut self, _global: &str) {}
    fn call_indirect(&mut self, _sig: &Sig, _candidates: &[String]) {}
}

struct Reporter<'a, 'e> {
    module: &'a Module,
    function: &'a str,
    pc: usize,
    hooks: &'a mut dyn VerifyHooks,
    errors: &'e mut Vec<VerifyError>,
}

impl Sink for Reporter<'_, '_> {
    fn error(&mut self, rule: &'static str, detail: String) {
        self.errors
            .push(VerifyError::new(rule, self.function, Some(self.pc), detail));
    }
    fn call(&mut self, callee: &str) {
        self.hooks.on_call(self.function, callee);
    }
    fn global(&mut self, global: &str) {
        self.hooks.on_global(self.function, global);
    }
    fn call_indirect(&mut self, sig: &Sig, candidates: &[String]) {
        let _ = self.module;
        self.hooks.on_call_indirect(self.function, sig, candidates);
    }
}

/// Interprets one instruction against the abstract stack. On success the
/// stack is updated in place and the control flow returned; on failure
/// the error has been reported to `sink` and `Err` stops propagation.
fn interpret(
    module: &Module,
    f: &Function,
    pc: usize,
    stack: &mut AbstractStack,
    sink: &mut dyn Sink,
) -> Result<Flow, ()> {
    let op = &f.body[pc];
    let max = f.max_stack as usize;
    macro_rules! fail {
        ($rule:expr, $($arg:tt)*) => {{
            sink.error($rule, format!($($arg)*));
            return Err(());
        }};
    }
    let pop =
        |stack: &mut AbstractStack, want: Ty, sink: &mut dyn Sink, what: &str| -> Result<(), ()> {
            match stack.pop() {
                None => {
                    sink.error("R0001", format!("{what}: stack underflow"));
                    Err(())
                }
                Some(got) if got != want => {
                    sink.error("R0002", format!("{what}: expected {want}, found {got}"));
                    Err(())
                }
                Some(_) => Ok(()),
            }
        };
    let push = |stack: &mut AbstractStack, ty: Ty, sink: &mut dyn Sink| -> Result<(), ()> {
        stack.push(ty);
        if stack.len() > max {
            sink.error(
                "R0012",
                format!(
                    "stack depth {} exceeds declared max_stack {max}",
                    stack.len()
                ),
            );
            return Err(());
        }
        Ok(())
    };
    let check_target = |target: u32, sink: &mut dyn Sink| -> Result<usize, ()> {
        let t = target as usize;
        if t >= f.body.len() {
            sink.error(
                "R0003",
                format!("branch target {t} outside body of length {}", f.body.len()),
            );
            return Err(());
        }
        Ok(t)
    };
    match op {
        Op::PushInt(_) => push(stack, Ty::Int, sink)?,
        Op::PushBool(_) => push(stack, Ty::Bool, sink)?,
        Op::Add | Op::Sub | Op::Mul => {
            pop(stack, Ty::Int, sink, "arithmetic rhs")?;
            pop(stack, Ty::Int, sink, "arithmetic lhs")?;
            push(stack, Ty::Int, sink)?;
        }
        Op::Eq | Op::Lt => {
            pop(stack, Ty::Int, sink, "comparison rhs")?;
            pop(stack, Ty::Int, sink, "comparison lhs")?;
            push(stack, Ty::Bool, sink)?;
        }
        Op::Not => {
            pop(stack, Ty::Bool, sink, "not")?;
            push(stack, Ty::Bool, sink)?;
        }
        Op::Dup => match stack.last().copied() {
            None => fail!("R0001", "dup: stack underflow"),
            Some(t) => push(stack, t, sink)?,
        },
        Op::Drop => {
            if stack.pop().is_none() {
                fail!("R0001", "drop: stack underflow");
            }
        }
        Op::LocalGet(i) => match f.local_ty(*i) {
            None => fail!(
                "R0008",
                "local {i} out of bounds (function has {} slots)",
                f.local_count()
            ),
            Some(t) => push(stack, t, sink)?,
        },
        Op::LocalSet(i) => match f.local_ty(*i) {
            None => fail!(
                "R0008",
                "local {i} out of bounds (function has {} slots)",
                f.local_count()
            ),
            Some(t) => pop(stack, t, sink, "local.set")?,
        },
        Op::GlobalGet(name) => match module.global(name) {
            None => fail!("R0009", "unknown global `{name}`"),
            Some(g) => {
                sink.global(name);
                push(stack, g.ty, sink)?;
            }
        },
        Op::GlobalSet(name) => match module.global(name) {
            None => fail!("R0009", "unknown global `{name}`"),
            Some(g) => {
                let ty = g.ty;
                sink.global(name);
                pop(stack, ty, sink, "global.set")?;
            }
        },
        Op::Call(name) => match module.function(name) {
            None => fail!("R0006", "unknown function `{name}`"),
            Some(callee) => {
                let sig = callee.sig();
                sink.call(name);
                // Args are popped last-parameter-first.
                for (i, want) in sig.params.iter().enumerate().rev() {
                    match stack.pop() {
                        None => fail!("R0007", "call `{name}`: missing argument {i}"),
                        Some(got) if got != *want => fail!(
                            "R0007",
                            "call `{name}`: argument {i} expected {want}, found {got}"
                        ),
                        Some(_) => {}
                    }
                }
                if let Some(ret) = sig.ret {
                    push(stack, ret, sink)?;
                }
            }
        },
        Op::CallIndirect(sig) => {
            let candidates: Vec<String> = module
                .functions
                .iter()
                .filter(|g| g.sig() == *sig)
                .map(|g| g.name.clone())
                .collect();
            if candidates.is_empty() {
                fail!("R0010", "no function with signature {sig}");
            }
            sink.call_indirect(sig, &candidates);
            pop(stack, Ty::Int, sink, "call_indirect index")?;
            for (i, want) in sig.params.iter().enumerate().rev() {
                match stack.pop() {
                    None => fail!("R0007", "call_indirect: missing argument {i}"),
                    Some(got) if got != *want => fail!(
                        "R0007",
                        "call_indirect: argument {i} expected {want}, found {got}"
                    ),
                    Some(_) => {}
                }
            }
            if let Some(ret) = sig.ret {
                push(stack, ret, sink)?;
            }
        }
        Op::Jump(t) => return Ok(Flow::Jump(check_target(*t, sink)?)),
        Op::JumpIf(t) => {
            pop(stack, Ty::Bool, sink, "jump_if condition")?;
            return Ok(Flow::Branch(check_target(*t, sink)?));
        }
        Op::Return => {
            if let Some(want) = f.ret {
                match stack.pop() {
                    None => fail!("R0005", "return: expected {want}, stack is empty"),
                    Some(got) if got != want => {
                        fail!("R0005", "return: expected {want}, found {got}")
                    }
                    Some(_) => {}
                }
            }
            return Ok(Flow::Stop);
        }
        Op::Trap => return Ok(Flow::Stop),
    }
    Ok(Flow::Fall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Function, Global, Module, Op, Ty};

    fn module_of(f: Function) -> Module {
        [f].into_iter().collect()
    }

    #[test]
    fn trap_stub_always_verifies() {
        let f = Function::new("stub", vec![Ty::Int], Some(Ty::Bool));
        assert!(verify_module(&module_of(f)).is_empty());
    }

    #[test]
    fn straight_line_arithmetic_verifies() {
        let mut f = Function::new("f", vec![], Some(Ty::Int));
        f.body = vec![Op::PushInt(1), Op::PushInt(2), Op::Add, Op::Return];
        assert!(verify_module(&module_of(f)).is_empty());
    }

    #[test]
    fn loop_with_consistent_merge_verifies() {
        // 0: push 10; 1: local.set 0; 2: local.get 0; 3: push 0; 4: eq;
        // 5: jump_if 8; 6: push true; 7: jump_if 2; 8: return
        let mut f = Function::new("loop", vec![], None);
        f.locals = vec![Ty::Int];
        f.body = vec![
            Op::PushInt(10),
            Op::LocalSet(0),
            Op::LocalGet(0),
            Op::PushInt(0),
            Op::Eq,
            Op::JumpIf(8),
            Op::PushBool(true),
            Op::JumpIf(2),
            Op::Return,
        ];
        assert!(verify_module(&module_of(f)).is_empty());
    }

    #[test]
    fn resolutions_fire_hooks_in_order() {
        #[derive(Default)]
        struct Log(Vec<String>);
        impl VerifyHooks for Log {
            fn on_call(&mut self, caller: &str, callee: &str) {
                self.0.push(format!("call {caller}->{callee}"));
            }
            fn on_global(&mut self, function: &str, global: &str) {
                self.0.push(format!("global {function}->{global}"));
            }
            fn on_call_indirect(&mut self, caller: &str, _sig: &Sig, candidates: &[String]) {
                self.0
                    .push(format!("indirect {caller}->{}", candidates.join(",")));
            }
        }
        let mut m = Module::new();
        m.globals.push(Global::new("g", Ty::Int));
        let mut main = Function::new("main", vec![], None);
        main.body = vec![
            Op::GlobalGet("g".into()),
            Op::Drop,
            Op::Call("helper".into()),
            Op::PushInt(0),
            Op::CallIndirect(Sig::new(vec![], None)),
            Op::Return,
        ];
        m.functions.push(main);
        let mut helper = Function::new("helper", vec![], None);
        helper.body = vec![Op::Return];
        m.functions.push(helper);
        let mut log = Log::default();
        assert!(verify_module_with(&m, &mut log).is_empty());
        assert_eq!(
            log.0,
            vec![
                "global main->g",
                "call main->helper",
                "indirect main->main,helper",
            ]
        );
    }

    #[test]
    fn every_emitted_code_is_in_the_rules_table() {
        // Force one error of each kind and confirm the code is listed.
        let mut f = Function::new("bad", vec![], None);
        f.body = vec![Op::Drop];
        let errs = verify_module(&module_of(f));
        for e in &errs {
            assert!(rule(e.rule).is_some(), "unlisted rule {}", e.rule);
        }
    }
}
