//! Materializes a keep-set back into a module.
//!
//! Dropped globals and functions disappear; a function whose `Body`
//! item is dropped (but whose `Function` item survives for its callers)
//! keeps its signature and gets the `Trap` stub — a one-instruction
//! body that verifies under any signature, the stackvm analog of the
//! classfile reducer's `aconst_null; athrow` stub.

use crate::item::StackRegistry;
use crate::module::{Module, Op};
use lbr_logic::VarSet;

/// Builds the sub-module described by `keep`. Satisfying keep-sets of
/// the model's CNF always materialize to modules that verify.
pub fn reduce_module(module: &Module, registry: &StackRegistry, keep: &VarSet) -> Module {
    let mut out = Module::new();
    for (i, g) in module.globals.iter().enumerate() {
        if keep.contains(registry.global_var(module, i)) {
            out.globals.push(g.clone());
        }
    }
    for (i, f) in module.functions.iter().enumerate() {
        if !keep.contains(registry.function_var(i)) {
            continue;
        }
        let mut f = f.clone();
        if !keep.contains(registry.body_var(i)) {
            f.body = vec![Op::Trap];
            f.locals.clear();
            f.max_stack = 0;
        }
        out.functions.push(f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_stack_model;
    use crate::module::{Function, Global, Ty};
    use crate::verify::verify_module;

    fn sample() -> Module {
        let mut m = Module::new();
        m.globals.push(Global::new("g", Ty::Int));
        let mut main = Function::new("main", vec![], None);
        main.body = vec![Op::Call("helper".into()), Op::Return];
        m.functions.push(main);
        let mut helper = Function::new("helper", vec![], None);
        helper.body = vec![Op::GlobalGet("g".into()), Op::Drop, Op::Return];
        m.functions.push(helper);
        m
    }

    #[test]
    fn full_keep_set_is_identity() {
        let m = sample();
        let model = build_stack_model(&m).expect("verifies");
        let keep = VarSet::full(model.cnf.num_vars());
        assert_eq!(reduce_module(&m, &model.registry, &keep), m);
    }

    #[test]
    fn dropped_body_becomes_trap_stub() {
        let m = sample();
        let model = build_stack_model(&m).expect("verifies");
        let reg = &model.registry;
        let mut keep = VarSet::empty(model.cnf.num_vars());
        keep.insert(reg.function_var(0));
        keep.insert(reg.body_var(0));
        keep.insert(reg.function_var(1)); // helper survives, body stubbed
        assert!(model.cnf.eval(&keep));
        let reduced = reduce_module(&m, reg, &keep);
        assert_eq!(reduced.functions.len(), 2);
        assert!(reduced.globals.is_empty());
        assert_eq!(reduced.function("helper").unwrap().body, vec![Op::Trap]);
        // A satisfying keep-set materializes to a verifying module.
        assert!(verify_module(&reduced).is_empty());
    }

    #[test]
    fn empty_keep_set_is_empty_module() {
        let m = sample();
        let model = build_stack_model(&m).expect("verifies");
        let keep = VarSet::empty(model.cnf.num_vars());
        let reduced = reduce_module(&m, &model.registry, &keep);
        assert!(reduced.functions.is_empty() && reduced.globals.is_empty());
    }
}
