//! Reducible items of a stackvm module and their variable numbering.
//!
//! Three item kinds: a function's *existence* (its name and signature,
//! callable by others), its *body* (the instructions, stubbable to
//! `Trap`), and a global. Splitting function from body mirrors the
//! classfile registry's class/method-code split: the reducer can keep a
//! callee's signature alive for its callers while discarding the code.

use crate::module::Module;
use lbr_logic::{Var, VarSet};
use std::fmt;

/// One reducible item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackItem {
    /// Function `functions[i]` exists (name + signature).
    Function(usize),
    /// Function `functions[i]` keeps its real body (vs. a `Trap` stub).
    Body(usize),
    /// Global `globals[i]` exists.
    Global(usize),
}

impl fmt::Display for StackItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackItem::Function(i) => write!(f, "function#{i}"),
            StackItem::Body(i) => write!(f, "body#{i}"),
            StackItem::Global(i) => write!(f, "global#{i}"),
        }
    }
}

/// A deterministic item ↔ variable numbering for one module: for each
/// function in module order, `Function(i)` then `Body(i)`; then each
/// global in module order.
#[derive(Debug, Clone)]
pub struct StackRegistry {
    items: Vec<StackItem>,
}

impl StackRegistry {
    /// Numbers the items of a module.
    pub fn from_module(module: &Module) -> Self {
        let mut items = Vec::with_capacity(2 * module.functions.len() + module.globals.len());
        for i in 0..module.functions.len() {
            items.push(StackItem::Function(i));
            items.push(StackItem::Body(i));
        }
        for i in 0..module.globals.len() {
            items.push(StackItem::Global(i));
        }
        StackRegistry { items }
    }

    /// Number of items (= number of logical variables).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The item numbered `v`.
    pub fn item(&self, v: Var) -> Option<StackItem> {
        self.items.get(v.index()).copied()
    }

    /// The variable of `Function(i)`.
    pub fn function_var(&self, i: usize) -> Var {
        Var::new(2 * i as u32)
    }

    /// The variable of `Body(i)`.
    pub fn body_var(&self, i: usize) -> Var {
        Var::new(2 * i as u32 + 1)
    }

    /// The variable of `Global(i)`. Globals are numbered after all
    /// function/body pairs.
    pub fn global_var(&self, module: &Module, i: usize) -> Var {
        Var::new((2 * module.functions.len() + i) as u32)
    }

    /// Iterates items in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, StackItem)> + '_ {
        self.items
            .iter()
            .enumerate()
            .map(|(i, item)| (Var::new(i as u32), *item))
    }

    /// Renders a keep-set as item names, for reports and debugging.
    pub fn render_solution(&self, keep: &VarSet) -> Vec<String> {
        self.iter()
            .filter(|(v, _)| keep.contains(*v))
            .map(|(_, item)| item.to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Function, Global, Ty};

    #[test]
    fn numbering_is_functions_then_globals() {
        let mut m = Module::new();
        m.functions.push(Function::new("a", vec![], None));
        m.functions.push(Function::new("b", vec![], None));
        m.globals.push(Global::new("g", Ty::Int));
        let reg = StackRegistry::from_module(&m);
        assert_eq!(reg.len(), 5);
        assert_eq!(reg.item(reg.function_var(0)), Some(StackItem::Function(0)));
        assert_eq!(reg.item(reg.body_var(0)), Some(StackItem::Body(0)));
        assert_eq!(reg.item(reg.function_var(1)), Some(StackItem::Function(1)));
        assert_eq!(reg.item(reg.body_var(1)), Some(StackItem::Body(1)));
        assert_eq!(reg.item(reg.global_var(&m, 0)), Some(StackItem::Global(0)));
    }
}
