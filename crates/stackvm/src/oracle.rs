//! The stackvm black-box oracle: lower the module, compare error
//! messages — the second-format analog of the decompile-and-recompile
//! oracle. Records the original module's baseline errors and accepts a
//! sub-module iff every baseline message is still produced. Pure per
//! probe and `Send + Sync`, so one instance is shareable across probe
//! workers.

use crate::bugs::StackBugSet;
use crate::module::Module;
use std::collections::BTreeSet;

/// A lowering oracle for one (buggy) pass and one original module.
#[derive(Debug, Clone)]
pub struct StackOracle {
    bugs: StackBugSet,
    baseline: BTreeSet<String>,
}

/// Compile-time proof that the oracle can be shared across probe threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync + Clone>() {}
    assert_send_sync::<StackOracle>();
};

impl StackOracle {
    /// Builds the oracle, running the tool once on the original module
    /// to record the baseline error messages.
    pub fn new(original: &Module, bugs: StackBugSet) -> Self {
        let baseline = bugs.error_messages(original);
        StackOracle { bugs, baseline }
    }

    /// The error messages of the original module. Empty means the
    /// lowering pass handles this module correctly (not a benchmark).
    pub fn baseline(&self) -> &BTreeSet<String> {
        &self.baseline
    }

    /// Whether the original module actually triggers the pass's bugs.
    pub fn is_failing(&self) -> bool {
        !self.baseline.is_empty()
    }

    /// Runs the tool on a sub-module, returning its error messages.
    pub fn errors(&self, module: &Module) -> BTreeSet<String> {
        self.bugs.error_messages(module)
    }

    /// The black-box predicate `P`: does the sub-module still produce
    /// every baseline error message?
    pub fn preserves_failure(&self, module: &Module) -> bool {
        let errors = self.errors(module);
        self.baseline.iter().all(|e| errors.contains(e))
    }
}

/// The format-agnostic oracle interface the reduction pipeline consumes.
impl lbr_core::InputOracle<Module> for StackOracle {
    fn baseline(&self) -> &BTreeSet<String> {
        self.baseline()
    }

    fn errors(&self, module: &Module) -> BTreeSet<String> {
        self.errors(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugs::StackBugKind;
    use crate::module::{Function, Op, Sig};

    fn failing_module() -> Module {
        let mut main = Function::new("main", vec![], None);
        main.body = vec![
            Op::PushInt(0),
            Op::CallIndirect(Sig::new(vec![], None)),
            Op::Return,
        ];
        let mut other = Function::new("other", vec![], None);
        other.body = vec![Op::Return];
        [main, other].into_iter().collect()
    }

    #[test]
    fn oracle_detects_failure_and_subsets() {
        let m = failing_module();
        let oracle = StackOracle::new(
            &m,
            StackBugSet::of(&[StackBugKind::IndirectDispatchMiscompile]),
        );
        assert!(oracle.is_failing());
        assert!(oracle.preserves_failure(&m));
        // Stubbing main's body removes the failure.
        let mut smaller = m.clone();
        smaller.functions[0].body = vec![Op::Trap];
        assert!(!oracle.preserves_failure(&smaller));
    }

    #[test]
    fn correct_pass_is_not_failing() {
        let m = failing_module();
        let oracle = StackOracle::new(&m, StackBugSet::none());
        assert!(!oracle.is_failing());
    }
}
