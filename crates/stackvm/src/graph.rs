//! The coarse unit-dependency graph: the over-approximation the
//! graph-based baselines (J-Reduce-style binary reduction) run on.
//!
//! One node per unit (functions first, then globals). A function points
//! at every function it calls, every global it touches, and — because a
//! plain graph cannot express "at least one of" — at *every* candidate
//! of each `call_indirect`, the conservative closure of the R0010
//! Or-constraint. That over-approximation is exactly the imprecision
//! the logical model removes.

use crate::module::{Module, Op};
use lbr_core::DepGraph;
use lbr_logic::{Var, VarSet};

/// A module's coarse dependency graph over whole units.
#[derive(Debug, Clone)]
pub struct UnitGraph {
    /// The unit graph (closure semantics: keeping a node keeps its
    /// successors).
    pub graph: DepGraph,
    functions: usize,
}

impl UnitGraph {
    /// Builds the graph from body mentions.
    pub fn new(module: &Module) -> Self {
        let nf = module.functions.len();
        let n = nf + module.globals.len();
        let mut graph = DepGraph::new(n);
        let function_index = |name: &str| module.functions.iter().position(|f| f.name == name);
        let global_index = |name: &str| module.globals.iter().position(|g| g.name == name);
        for (i, f) in module.functions.iter().enumerate() {
            let from = Var::new(i as u32);
            for op in &f.body {
                match op {
                    Op::Call(name) => {
                        if let Some(j) = function_index(name) {
                            graph.add_edge(from, Var::new(j as u32));
                        }
                    }
                    Op::GlobalGet(name) | Op::GlobalSet(name) => {
                        if let Some(j) = global_index(name) {
                            graph.add_edge(from, Var::new((nf + j) as u32));
                        }
                    }
                    Op::CallIndirect(sig) => {
                        for (j, g) in module.functions.iter().enumerate() {
                            if g.sig() == *sig {
                                graph.add_edge(from, Var::new(j as u32));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        UnitGraph {
            graph,
            functions: nf,
        }
    }

    /// The node of the named function.
    pub fn function_node(&self, module: &Module, name: &str) -> Option<Var> {
        module
            .functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| Var::new(i as u32))
    }

    /// Materializes the sub-module keeping exactly the units in `keep`
    /// (whole functions with their bodies — the coarse path has no
    /// body-stubbing).
    pub fn subset_module(&self, module: &Module, keep: &VarSet) -> Module {
        let mut out = Module::new();
        for (i, f) in module.functions.iter().enumerate() {
            if keep.contains(Var::new(i as u32)) {
                out.functions.push(f.clone());
            }
        }
        for (j, g) in module.globals.iter().enumerate() {
            if keep.contains(Var::new((self.functions + j) as u32)) {
                out.globals.push(g.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Function, Global, Ty};
    use crate::verify::verify_module;

    #[test]
    fn closed_subsets_verify() {
        let mut m = Module::new();
        m.globals.push(Global::new("g", Ty::Int));
        let mut main = Function::new("main", vec![], None);
        main.body = vec![Op::Call("helper".into()), Op::Return];
        m.functions.push(main);
        let mut helper = Function::new("helper", vec![], None);
        helper.body = vec![Op::GlobalGet("g".into()), Op::Drop, Op::Return];
        m.functions.push(helper);
        let ug = UnitGraph::new(&m);
        assert_eq!(ug.graph.len(), 3);
        // The closure of {main} pulls in helper and the global.
        let closure = ug.graph.closure_of([Var::new(0)]);
        assert_eq!(closure.len(), 3);
        let sub = ug.subset_module(&m, &closure);
        assert!(verify_module(&sub).is_empty());
        // The closure of {helper} needs only the global.
        let closure = ug.graph.closure_of([Var::new(1)]);
        assert_eq!(closure.len(), 2);
        let sub = ug.subset_module(&m, &closure);
        assert!(verify_module(&sub).is_empty());
        assert!(sub.function("main").is_none());
    }
}
