//! Binary reader/writer for stackvm modules.
//!
//! The container is magic `LBRS`, a format version byte, function and
//! global counts, then the units in module order. All integers are
//! big-endian; strings are length-prefixed UTF-8. The writer and reader
//! round-trip exactly (`read_module(write_module(m)) == m`), which the
//! format-agnostic `check_report` validation relies on.

use crate::module::{Function, Global, Module, Op, Sig, Ty};

const MAGIC: &[u8; 4] = b"LBRS";
const VERSION: u8 = 1;

/// An error from decoding a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for ReadError {}

fn write_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn ty_byte(ty: Ty) -> u8 {
    match ty {
        Ty::Int => 0,
        Ty::Bool => 1,
    }
}

fn write_ret(out: &mut Vec<u8>, ret: Option<Ty>) {
    match ret {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            out.push(ty_byte(t));
        }
    }
}

fn write_sig(out: &mut Vec<u8>, sig: &Sig) {
    out.extend_from_slice(&(sig.params.len() as u16).to_be_bytes());
    for p in &sig.params {
        out.push(ty_byte(*p));
    }
    write_ret(out, sig.ret);
}

fn write_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::PushInt(v) => {
            out.push(0x01);
            out.extend_from_slice(&v.to_be_bytes());
        }
        Op::PushBool(b) => {
            out.push(0x02);
            out.push(*b as u8);
        }
        Op::Add => out.push(0x03),
        Op::Sub => out.push(0x04),
        Op::Mul => out.push(0x05),
        Op::Eq => out.push(0x06),
        Op::Lt => out.push(0x07),
        Op::Not => out.push(0x08),
        Op::Dup => out.push(0x09),
        Op::Drop => out.push(0x0A),
        Op::LocalGet(n) => {
            out.push(0x0B);
            out.extend_from_slice(&n.to_be_bytes());
        }
        Op::LocalSet(n) => {
            out.push(0x0C);
            out.extend_from_slice(&n.to_be_bytes());
        }
        Op::GlobalGet(name) => {
            out.push(0x0D);
            write_str(out, name);
        }
        Op::GlobalSet(name) => {
            out.push(0x0E);
            write_str(out, name);
        }
        Op::Call(name) => {
            out.push(0x0F);
            write_str(out, name);
        }
        Op::CallIndirect(sig) => {
            out.push(0x10);
            write_sig(out, sig);
        }
        Op::Jump(t) => {
            out.push(0x11);
            out.extend_from_slice(&t.to_be_bytes());
        }
        Op::JumpIf(t) => {
            out.push(0x12);
            out.extend_from_slice(&t.to_be_bytes());
        }
        Op::Return => out.push(0x13),
        Op::Trap => out.push(0x14),
    }
}

fn write_function(out: &mut Vec<u8>, f: &Function) {
    write_str(out, &f.name);
    out.extend_from_slice(&(f.params.len() as u16).to_be_bytes());
    for p in &f.params {
        out.push(ty_byte(*p));
    }
    write_ret(out, f.ret);
    out.extend_from_slice(&(f.locals.len() as u16).to_be_bytes());
    for l in &f.locals {
        out.push(ty_byte(*l));
    }
    out.extend_from_slice(&f.max_stack.to_be_bytes());
    out.extend_from_slice(&(f.body.len() as u32).to_be_bytes());
    for op in &f.body {
        write_op(out, op);
    }
}

fn write_global(out: &mut Vec<u8>, g: &Global) {
    write_str(out, &g.name);
    out.push(ty_byte(g.ty));
}

/// Serializes a module: magic `LBRS`, version, counts, globals, functions.
pub fn write_module(module: &Module) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(module.globals.len() as u32).to_be_bytes());
    out.extend_from_slice(&(module.functions.len() as u32).to_be_bytes());
    for g in &module.globals {
        write_global(&mut out, g);
    }
    for f in &module.functions {
        write_function(&mut out, f);
    }
    out
}

/// The byte-size cost metric: the encoded size of the units alone,
/// excluding the fixed 13-byte container header — the same convention as
/// the classfile frontend's `program_byte_size`, so cross-format size
/// tables compare unit payloads, not framing.
pub fn module_byte_size(module: &Module) -> usize {
    let mut out = Vec::new();
    for g in &module.globals {
        write_global(&mut out, g);
    }
    for f in &module.functions {
        write_function(&mut out, f);
    }
    out.len()
}

struct Cursor<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Cursor<'b> {
    fn err(&self, detail: impl Into<String>) -> ReadError {
        ReadError {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], ReadError> {
        if self.pos + n > self.bytes.len() {
            return Err(self.err(format!("truncated: wanted {n} bytes")));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ReadError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ReadError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ReadError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ReadError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ReadError> {
        let len = self.u16()? as usize;
        let at = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ReadError {
            offset: at,
            detail: "invalid utf-8".into(),
        })
    }

    fn ty(&mut self) -> Result<Ty, ReadError> {
        match self.u8()? {
            0 => Ok(Ty::Int),
            1 => Ok(Ty::Bool),
            b => Err(self.err(format!("unknown type tag {b:#x}"))),
        }
    }

    fn ret(&mut self) -> Result<Option<Ty>, ReadError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.ty()?)),
            b => Err(self.err(format!("unknown return tag {b:#x}"))),
        }
    }

    fn sig(&mut self) -> Result<Sig, ReadError> {
        let n = self.u16()? as usize;
        let mut params = Vec::with_capacity(n);
        for _ in 0..n {
            params.push(self.ty()?);
        }
        Ok(Sig::new(params, self.ret()?))
    }

    fn op(&mut self) -> Result<Op, ReadError> {
        match self.u8()? {
            0x01 => Ok(Op::PushInt(self.i64()?)),
            0x02 => Ok(Op::PushBool(self.u8()? != 0)),
            0x03 => Ok(Op::Add),
            0x04 => Ok(Op::Sub),
            0x05 => Ok(Op::Mul),
            0x06 => Ok(Op::Eq),
            0x07 => Ok(Op::Lt),
            0x08 => Ok(Op::Not),
            0x09 => Ok(Op::Dup),
            0x0A => Ok(Op::Drop),
            0x0B => Ok(Op::LocalGet(self.u32()?)),
            0x0C => Ok(Op::LocalSet(self.u32()?)),
            0x0D => Ok(Op::GlobalGet(self.str()?)),
            0x0E => Ok(Op::GlobalSet(self.str()?)),
            0x0F => Ok(Op::Call(self.str()?)),
            0x10 => Ok(Op::CallIndirect(self.sig()?)),
            0x11 => Ok(Op::Jump(self.u32()?)),
            0x12 => Ok(Op::JumpIf(self.u32()?)),
            0x13 => Ok(Op::Return),
            0x14 => Ok(Op::Trap),
            b => Err(self.err(format!("unknown opcode {b:#x}"))),
        }
    }

    fn function(&mut self) -> Result<Function, ReadError> {
        let name = self.str()?;
        let np = self.u16()? as usize;
        let mut params = Vec::with_capacity(np);
        for _ in 0..np {
            params.push(self.ty()?);
        }
        let ret = self.ret()?;
        let nl = self.u16()? as usize;
        let mut locals = Vec::with_capacity(nl);
        for _ in 0..nl {
            locals.push(self.ty()?);
        }
        let max_stack = self.u32()?;
        let nb = self.u32()? as usize;
        let mut body = Vec::with_capacity(nb.min(1 << 16));
        for _ in 0..nb {
            body.push(self.op()?);
        }
        Ok(Function {
            name,
            params,
            ret,
            locals,
            max_stack,
            body,
        })
    }
}

/// Decodes a module written by [`write_module`].
///
/// # Errors
///
/// Returns [`ReadError`] on truncated input, bad magic, an unsupported
/// version, or a malformed unit.
pub fn read_module(bytes: &[u8]) -> Result<Module, ReadError> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err(ReadError {
            offset: 0,
            detail: "bad magic".into(),
        });
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(c.err(format!("unsupported version {version}")));
    }
    let ng = c.u32()? as usize;
    let nf = c.u32()? as usize;
    let mut module = Module::new();
    for _ in 0..ng {
        let name = c.str()?;
        let ty = c.ty()?;
        module.globals.push(Global { name, ty });
    }
    for _ in 0..nf {
        module.functions.push(c.function()?);
    }
    if c.pos != bytes.len() {
        return Err(c.err("trailing bytes after module"));
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Module {
        let mut m = Module::new();
        m.globals.push(Global::new("counter", Ty::Int));
        let mut f = Function::new("main", vec![], Some(Ty::Int));
        f.locals = vec![Ty::Int, Ty::Bool];
        f.body = vec![
            Op::PushInt(7),
            Op::LocalSet(0),
            Op::LocalGet(0),
            Op::PushInt(1),
            Op::Add,
            Op::GlobalSet("counter".into()),
            Op::GlobalGet("counter".into()),
            Op::Return,
        ];
        m.functions.push(f);
        let mut g = Function::new("helper", vec![Ty::Int, Ty::Int], Some(Ty::Bool));
        g.body = vec![
            Op::LocalGet(0),
            Op::LocalGet(1),
            Op::Lt,
            Op::Not,
            Op::Return,
        ];
        m.functions.push(g);
        m
    }

    #[test]
    fn round_trips_exactly() {
        let m = sample();
        let bytes = write_module(&m);
        assert_eq!(&bytes[..4], b"LBRS");
        assert_eq!(read_module(&bytes), Ok(m));
    }

    #[test]
    fn round_trips_every_opcode() {
        let mut f = Function::new("all", vec![Ty::Int], None);
        f.body = vec![
            Op::PushInt(-5),
            Op::PushBool(true),
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Eq,
            Op::Lt,
            Op::Not,
            Op::Dup,
            Op::Drop,
            Op::LocalGet(3),
            Op::LocalSet(4),
            Op::GlobalGet("g".into()),
            Op::GlobalSet("g".into()),
            Op::Call("f".into()),
            Op::CallIndirect(Sig::new(vec![Ty::Bool], Some(Ty::Int))),
            Op::Jump(0),
            Op::JumpIf(1),
            Op::Return,
            Op::Trap,
        ];
        let m: Module = [f].into_iter().collect();
        assert_eq!(read_module(&write_module(&m)), Ok(m));
    }

    #[test]
    fn byte_size_excludes_container_header() {
        let m = sample();
        // magic(4) + version(1) + globals(4) + functions(4) = 13.
        assert_eq!(module_byte_size(&m), write_module(&m).len() - 13);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let m = sample();
        let mut bytes = write_module(&m);
        assert!(read_module(&bytes[..bytes.len() - 1]).is_err());
        bytes[0] = b'X';
        assert!(read_module(&bytes).is_err());
    }
}
