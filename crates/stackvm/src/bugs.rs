//! The injected stackvm-tool bug catalog.
//!
//! The classfile frontend's benchmark tool is a buggy decompiler; the
//! stackvm frontend's is a buggy *lowering pass* (a simulated
//! bytecode-to-native compiler). Each bug fires on the presence of a
//! bytecode pattern and yields a deterministic error message naming the
//! instance. All patterns are presence-monotone — any superset of a
//! failing module retains them — and two of them only fire on
//! *combinations* of items (a writer body plus a reader body, a caller
//! body plus a callee body), the multi-item structure that defeats
//! graph-based reduction.

use crate::module::{Module, Op};
use std::collections::BTreeSet;
use std::fmt;

/// One lowering-pass bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StackBugKind {
    /// Indirect dispatch is lowered through a corrupt table: any
    /// function whose body contains `call_indirect` fails.
    IndirectDispatchMiscompile,
    /// Negative integer constants lose their sign during lowering: any
    /// function pushing a negative constant fails.
    NegativeConstantLowering,
    /// Backward branches trip a broken loop unroller: any function with
    /// a branch to an earlier instruction fails.
    LoopUnrollOverflow,
    /// The register allocator aliases globals that are written in one
    /// function and read in another — only the *pair* of bodies
    /// triggers it.
    GlobalAliasConfusion,
    /// The inliner miscompiles calls to multiplying callees: function
    /// `f` calling `g` fails only while `g`'s body still multiplies.
    CrossCallInliner,
}

impl StackBugKind {
    /// Every bug kind.
    pub const ALL: [StackBugKind; 5] = [
        StackBugKind::IndirectDispatchMiscompile,
        StackBugKind::NegativeConstantLowering,
        StackBugKind::LoopUnrollOverflow,
        StackBugKind::GlobalAliasConfusion,
        StackBugKind::CrossCallInliner,
    ];
}

impl fmt::Display for StackBugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The set of bugs a particular simulated lowering pass suffers from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StackBugSet {
    enabled: Vec<StackBugKind>,
}

impl StackBugSet {
    /// No bugs — a correct lowering pass.
    pub fn none() -> Self {
        Self::default()
    }

    /// Every bug.
    pub fn all() -> Self {
        StackBugSet {
            enabled: StackBugKind::ALL.to_vec(),
        }
    }

    /// The first simulated lowering pass. The three presets overlap,
    /// mirroring the classfile frontend's `decompiler_a/b/c` so the job
    /// schema's `a`/`b`/`c`/`all` selector means the same thing in both
    /// formats.
    pub fn lowering_a() -> Self {
        Self::of(&[
            StackBugKind::IndirectDispatchMiscompile,
            StackBugKind::NegativeConstantLowering,
            StackBugKind::GlobalAliasConfusion,
        ])
    }

    /// The second simulated lowering pass.
    pub fn lowering_b() -> Self {
        Self::of(&[
            StackBugKind::LoopUnrollOverflow,
            StackBugKind::CrossCallInliner,
        ])
    }

    /// The third simulated lowering pass.
    pub fn lowering_c() -> Self {
        Self::of(&[
            StackBugKind::IndirectDispatchMiscompile,
            StackBugKind::CrossCallInliner,
            StackBugKind::GlobalAliasConfusion,
        ])
    }

    /// Builds a set from kinds.
    pub fn of(kinds: &[StackBugKind]) -> Self {
        let mut enabled = kinds.to_vec();
        enabled.sort();
        enabled.dedup();
        StackBugSet { enabled }
    }

    /// Whether a kind is enabled.
    pub fn has(&self, kind: StackBugKind) -> bool {
        self.enabled.contains(&kind)
    }

    /// The enabled kinds, sorted.
    pub fn kinds(&self) -> &[StackBugKind] {
        &self.enabled
    }

    /// Runs the simulated lowering pass: the set of error messages the
    /// enabled bugs produce on this module. Deterministic, pure, and
    /// presence-monotone.
    pub fn error_messages(&self, module: &Module) -> BTreeSet<String> {
        let mut errors = BTreeSet::new();
        for f in &module.functions {
            if self.has(StackBugKind::IndirectDispatchMiscompile)
                && f.body.iter().any(|op| matches!(op, Op::CallIndirect(_)))
            {
                errors.insert(format!(
                    "error: corrupt dispatch table lowering `{}`",
                    f.name
                ));
            }
            if self.has(StackBugKind::NegativeConstantLowering)
                && f.body
                    .iter()
                    .any(|op| matches!(op, Op::PushInt(v) if *v < 0))
            {
                errors.insert(format!(
                    "error: sign lost lowering constant in `{}`",
                    f.name
                ));
            }
            if self.has(StackBugKind::LoopUnrollOverflow)
                && f.body
                    .iter()
                    .enumerate()
                    .any(|(pc, op)| matches!(op, Op::Jump(t) | Op::JumpIf(t) if *t as usize <= pc))
            {
                errors.insert(format!("error: loop unroll overflow in `{}`", f.name));
            }
        }
        if self.has(StackBugKind::GlobalAliasConfusion) {
            for g in &module.globals {
                let writes = module.functions.iter().any(|f| {
                    f.body
                        .iter()
                        .any(|op| matches!(op, Op::GlobalSet(n) if n == &g.name))
                });
                let reads = module.functions.iter().any(|f| {
                    f.body
                        .iter()
                        .any(|op| matches!(op, Op::GlobalGet(n) if n == &g.name))
                });
                if writes && reads {
                    errors.insert(format!("error: register aliasing on global `{}`", g.name));
                }
            }
        }
        if self.has(StackBugKind::CrossCallInliner) {
            for f in &module.functions {
                for op in &f.body {
                    let Op::Call(callee) = op else { continue };
                    let Some(g) = module.function(callee) else {
                        continue;
                    };
                    if g.body.iter().any(|op| matches!(op, Op::Mul)) {
                        errors.insert(format!(
                            "error: inliner overflow in `{}` calling `{}`",
                            f.name, g.name
                        ));
                    }
                }
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Function, Global, Sig, Ty};

    #[test]
    fn pair_bugs_need_both_items() {
        let mut m = Module::new();
        m.globals.push(Global::new("g", Ty::Int));
        let mut writer = Function::new("writer", vec![], None);
        writer.body = vec![Op::PushInt(1), Op::GlobalSet("g".into()), Op::Return];
        m.functions.push(writer);
        let mut reader = Function::new("reader", vec![], None);
        reader.body = vec![Op::GlobalGet("g".into()), Op::Drop, Op::Return];
        m.functions.push(reader);
        let bugs = StackBugSet::of(&[StackBugKind::GlobalAliasConfusion]);
        assert_eq!(bugs.error_messages(&m).len(), 1);
        // Stubbing the reader's body removes the error.
        let mut stubbed = m.clone();
        stubbed.functions[1].body = vec![Op::Trap];
        assert!(bugs.error_messages(&stubbed).is_empty());
    }

    #[test]
    fn lowering_presets_overlap() {
        let a = StackBugSet::lowering_a();
        let b = StackBugSet::lowering_b();
        let c = StackBugSet::lowering_c();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(a.has(StackBugKind::IndirectDispatchMiscompile));
        assert!(c.has(StackBugKind::IndirectDispatchMiscompile));
        assert!(!b.has(StackBugKind::IndirectDispatchMiscompile));
    }

    #[test]
    fn presence_patterns_are_monotone() {
        let mut f = Function::new("f", vec![], None);
        f.body = vec![
            Op::PushInt(-1),
            Op::Drop,
            Op::PushInt(0),
            Op::CallIndirect(Sig::new(vec![], None)),
            Op::Return,
        ];
        let m: Module = [f].into_iter().collect();
        let bugs = StackBugSet::all();
        let base = bugs.error_messages(&m);
        assert!(!base.is_empty());
        let mut bigger = m.clone();
        let mut extra = Function::new("extra", vec![], None);
        extra.body = vec![Op::Return];
        bigger.functions.push(extra);
        assert!(bugs.error_messages(&bigger).is_superset(&base));
    }
}
