//! Differential tests: GBR with the incremental watched-literal engine
//! (`PropagationMode::Incremental`, the default) must be *bit-identical*
//! to the scan-based baseline (`PropagationMode::LegacyScan`) — same
//! solution, same iteration count, same learned sets, same progression
//! lengths, and exactly the same number of predicate calls. The speedup
//! must be free.

use lbr_core::{
    build_progression, closure_size_order, generalized_binary_reduction, GbrConfig, Instance,
    Oracle, PropagationMode,
};
use lbr_logic::{Clause, Cnf, MsaStrategy, Var, VarOrder, VarSet};
use lbr_prng::SplitMix64;

/// A random mixed model: mostly edges, some general implications, a few
/// positive disjunctions — the clause mix of real bytecode models.
fn random_model(rng: &mut SplitMix64, n: usize) -> Cnf {
    let mut cnf = Cnf::new(n);
    let v = |i: usize| Var::new(i as u32);
    for _ in 0..2 * n {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            cnf.add_clause(Clause::edge(v(a.max(b)), v(a.min(b))));
        }
    }
    for _ in 0..n / 4 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        cnf.add_clause(Clause::implication([v(a), v(b)], [v(c), v(d)]));
    }
    for _ in 0..n / 8 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        cnf.add_clause(Clause::implication([], [v(a), v(b)]));
    }
    cnf
}

/// Everything observable about a GBR run: solution, iteration count,
/// learned sets and progression lengths (or the error).
type GbrRun = Result<(VarSet, usize, Vec<VarSet>, Vec<usize>), lbr_core::GbrError>;

fn run_both(
    instance: &Instance,
    order: &VarOrder,
    strategy: MsaStrategy,
    needed: &[Var],
) -> (GbrRun, u64, GbrRun, u64) {
    let mut results = Vec::new();
    let mut calls = Vec::new();
    for mode in [PropagationMode::Incremental, PropagationMode::LegacyScan] {
        let mut bug = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
        let mut oracle = Oracle::new(&mut bug, 0.0);
        let config = GbrConfig {
            msa_strategy: strategy,
            propagation: mode,
            ..GbrConfig::default()
        };
        let out = generalized_binary_reduction(instance, order, &mut oracle, &config)
            .map(|o| (o.solution, o.iterations, o.learned, o.progression_lengths));
        calls.push(oracle.calls());
        results.push(out);
    }
    let legacy = results.pop().expect("two runs");
    let incremental = results.pop().expect("two runs");
    (incremental, calls[0], legacy, calls[1])
}

#[test]
fn incremental_gbr_is_bit_identical_to_legacy_scan() {
    let mut checked = 0;
    for seed in 0..40u64 {
        let mut rng = SplitMix64::seed_from_u64(7000 + seed);
        let n = rng.gen_range(8..40usize);
        let cnf = random_model(&mut rng, n);
        if !cnf.eval(&VarSet::full(n)) {
            continue;
        }
        let needed: Vec<Var> = (0..rng.gen_range(1..=3))
            .map(|_| Var::new(rng.gen_range(0..n as u32)))
            .collect();
        let order = closure_size_order(&cnf);
        let instance = Instance::over_all_vars(cnf);
        for strategy in MsaStrategy::ALL {
            let (inc, inc_calls, legacy, legacy_calls) =
                run_both(&instance, &order, strategy, &needed);
            assert_eq!(inc, legacy, "seed {seed} {strategy:?}: outcomes diverge");
            assert_eq!(
                inc_calls, legacy_calls,
                "seed {seed} {strategy:?}: predicate call counts diverge"
            );
            checked += 1;
        }
    }
    assert!(checked >= 60, "too few non-degenerate draws: {checked}");
}

#[test]
fn incremental_matches_legacy_on_orders_that_defeat_the_greedy_pick() {
    // The natural order on a chain makes the first progression [∅, all]
    // and exercises the remainder fallback; reversed orders exercise the
    // dead-end DPLL fallback. Both modes must still agree exactly.
    for n in [6usize, 12, 20] {
        let mut cnf = Cnf::new(n);
        for i in 0..n - 1 {
            cnf.add_clause(Clause::edge(Var::new(i as u32), Var::new(i as u32 + 1)));
        }
        let instance = Instance::over_all_vars(cnf);
        let natural = VarOrder::natural(n);
        let reversed =
            VarOrder::from_permutation((0..n as u32).rev().map(Var::new).collect::<Vec<_>>());
        for order in [&natural, &reversed] {
            for strategy in MsaStrategy::ALL {
                let needed = [Var::new(n as u32 / 2)];
                let (inc, inc_calls, legacy, legacy_calls) =
                    run_both(&instance, order, strategy, &needed);
                assert_eq!(inc, legacy, "n {n} {strategy:?}");
                assert_eq!(inc_calls, legacy_calls, "n {n} {strategy:?}");
            }
        }
    }
}

#[test]
fn legacy_build_progression_still_matches_paper_shape() {
    // The public scan-based subroutine stays available and agrees with
    // what the engine-backed reduction learns internally.
    let mut cnf = Cnf::new(6);
    for i in 0..5 {
        cnf.add_clause(Clause::edge(Var::new(i), Var::new(i + 1)));
    }
    let inst = Instance::over_all_vars(cnf);
    let order = closure_size_order(&inst.cnf);
    let prog = build_progression(
        &inst.cnf,
        &order,
        MsaStrategy::GreedyClosure,
        &[],
        &inst.vars,
    )
    .expect("progression");
    let mut acc = VarSet::empty(6);
    for d in &prog {
        assert!(acc.is_disjoint(d));
        acc.union_with(d);
        assert!(inst.cnf.eval(&acc));
    }
    assert_eq!(acc, inst.vars);
}
