//! Differential tests for speculative parallel probing: GBR with a
//! [`ProbeScheduler`] worker pool (`generalized_binary_reduction_speculative`)
//! must be **bit-identical** to the sequential run at every thread count —
//! same solution, same iteration count, same learned sets, same progression
//! lengths, same number of *useful* predicate calls. Only wall time and the
//! speculation accounting may vary.

use lbr_core::{
    closure_size_order, generalized_binary_reduction, generalized_binary_reduction_speculative,
    GbrConfig, GbrError, Instance, Oracle, SpeculationConfig,
};
use lbr_logic::{Clause, Cnf, Var, VarSet};
use lbr_prng::SplitMix64;

/// A random mixed model (same clause mix as the propagation differential
/// suite): mostly edges, some implications, a few positive disjunctions.
fn random_model(rng: &mut SplitMix64, n: usize) -> Cnf {
    let mut cnf = Cnf::new(n);
    let v = |i: usize| Var::new(i as u32);
    for _ in 0..2 * n {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            cnf.add_clause(Clause::edge(v(a.max(b)), v(a.min(b))));
        }
    }
    for _ in 0..n / 4 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        cnf.add_clause(Clause::implication([v(a), v(b)], [v(c), v(d)]));
    }
    for _ in 0..n / 8 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        cnf.add_clause(Clause::implication([], [v(a), v(b)]));
    }
    cnf
}

#[test]
fn speculative_gbr_is_bit_identical_on_random_models() {
    let mut checked = 0;
    for seed in 0..25u64 {
        let mut rng = SplitMix64::seed_from_u64(9100 + seed);
        let n = rng.gen_range(8..40usize);
        let cnf = random_model(&mut rng, n);
        if !cnf.eval(&VarSet::full(n)) {
            continue;
        }
        let needed: Vec<Var> = (0..rng.gen_range(1..=3))
            .map(|_| Var::new(rng.gen_range(0..n as u32)))
            .collect();
        let order = closure_size_order(&cnf);
        let instance = Instance::over_all_vars(cnf);
        let config = GbrConfig::default();

        let mut bug = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
        let mut oracle = Oracle::new(&mut bug, 0.0);
        let sequential = generalized_binary_reduction(&instance, &order, &mut oracle, &config)
            .expect("sequential run succeeds");
        let sequential_calls = oracle.calls();

        for threads in [2usize, 4, 8] {
            let probe = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
            let run = generalized_binary_reduction_speculative(
                &instance,
                &order,
                &probe,
                &config,
                &SpeculationConfig::new(threads),
            )
            .expect("speculative run succeeds");
            assert_eq!(
                run.outcome.solution, sequential.solution,
                "seed {seed} threads {threads}: solutions diverge"
            );
            assert_eq!(run.outcome.iterations, sequential.iterations, "seed {seed}");
            assert_eq!(run.outcome.learned, sequential.learned, "seed {seed}");
            assert_eq!(
                run.outcome.progression_lengths, sequential.progression_lengths,
                "seed {seed}"
            );
            assert_eq!(
                run.stats.useful_calls, sequential_calls,
                "seed {seed} threads {threads}: useful calls must match the sequential count"
            );
            assert_eq!(
                run.trace.len() as u64,
                run.stats.useful_calls,
                "trace records exactly the demanded probes"
            );
            assert!(run.stats.critical_path_calls <= run.stats.useful_calls);
            assert_eq!(
                run.stats.memo_hits + run.stats.memo_misses,
                run.stats.useful_calls
            );
            checked += 1;
        }
    }
    assert!(checked >= 30, "too few non-degenerate draws: {checked}");
}

#[test]
fn speculative_budget_cutoffs_match_sequential_best() {
    // The anytime path: at any predicate-call budget the speculative run
    // must return exactly the sequential best-so-far answer, because
    // `best` is only ever updated from demanded probes.
    let n = 30usize;
    let mut cnf = Cnf::new(n);
    for i in 0..n - 1 {
        cnf.add_clause(Clause::edge(Var::new(i as u32), Var::new(i as u32 + 1)));
    }
    let order = closure_size_order(&cnf);
    let instance = Instance::over_all_vars(cnf);
    let needed = [Var::new(4), Var::new(21)];
    for limit in [1u64, 2, 3, 5, 8, 1000] {
        let config = GbrConfig {
            max_predicate_calls: Some(limit),
            ..GbrConfig::default()
        };
        let mut bug = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
        let sequential =
            generalized_binary_reduction(&instance, &order, &mut bug, &config).expect("runs");
        for threads in [2usize, 4] {
            let probe = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
            let run = generalized_binary_reduction_speculative(
                &instance,
                &order,
                &probe,
                &config,
                &SpeculationConfig::new(threads),
            )
            .expect("runs");
            assert_eq!(run.outcome.solution, sequential.solution, "limit {limit}");
            assert_eq!(
                run.outcome.budget_exhausted, sequential.budget_exhausted,
                "limit {limit}"
            );
        }
    }
}

#[test]
fn speculative_errors_match_sequential() {
    // A non-monotone predicate must fail identically in both modes.
    let n = 12usize;
    let mut cnf = Cnf::new(n);
    for i in 0..n - 1 {
        cnf.add_clause(Clause::edge(Var::new(i as u32), Var::new(i as u32 + 1)));
    }
    let order = closure_size_order(&cnf);
    let instance = Instance::over_all_vars(cnf);
    let mut never = |_: &VarSet| false;
    let config = GbrConfig::default();
    let sequential = generalized_binary_reduction(&instance, &order, &mut never, &config);
    assert_eq!(sequential.unwrap_err(), GbrError::PredicateNotMonotone);
    let probe = |_: &VarSet| false;
    let speculative = generalized_binary_reduction_speculative(
        &instance,
        &order,
        &probe,
        &config,
        &SpeculationConfig::new(4),
    );
    assert_eq!(speculative.unwrap_err(), GbrError::PredicateNotMonotone);
}
