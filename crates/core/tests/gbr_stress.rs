//! Randomized robustness: GBR on random dependency models with random
//! monotone predicates always returns a valid, failing, no-larger
//! sub-input — and never tests an invalid one.

use lbr_core::{
    closure_size_order, generalized_binary_reduction, minimize_solution, GbrConfig, Instance,
};
use lbr_logic::{Clause, Cnf, MsaStrategy, Var, VarSet};
use lbr_prng::SplitMix64;

/// A random mixed model: mostly edges, some mAny-style general clauses,
/// a few positive disjunctions. Never any purely negative clause (like
/// the bytecode models).
fn random_model(rng: &mut SplitMix64, n: usize) -> Cnf {
    let mut cnf = Cnf::new(n);
    let v = |i: usize| Var::new(i as u32);
    for _ in 0..2 * n {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            // Edges point "upward" to keep closures small and acyclic-ish.
            cnf.add_clause(Clause::edge(v(a.max(b)), v(a.min(b))));
        }
    }
    for _ in 0..n / 4 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        cnf.add_clause(Clause::implication([v(a), v(b)], [v(c), v(d)]));
    }
    for _ in 0..n / 8 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        cnf.add_clause(Clause::implication([], [v(a), v(b)]));
    }
    cnf
}

#[test]
fn gbr_is_sound_on_random_models() {
    for seed in 0..30u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = rng.gen_range(8..48usize);
        let cnf = random_model(&mut rng, n);
        let full = VarSet::full(n);
        if !cnf.eval(&full) {
            continue; // R_I(I) must hold; skip degenerate draws
        }
        // A random monotone predicate: needs 1..3 specific variables.
        let needed: Vec<Var> = (0..rng.gen_range(1..=3))
            .map(|_| Var::new(rng.gen_range(0..n as u32)))
            .collect();
        let order = closure_size_order(&cnf);
        let instance = Instance::over_all_vars(cnf.clone());
        let needed2 = needed.clone();
        let cnf2 = cnf.clone();
        let mut bug = move |s: &VarSet| {
            assert!(cnf2.eval(s), "seed {seed}: predicate saw an invalid input");
            needed2.iter().all(|v| s.contains(*v))
        };
        let out = generalized_binary_reduction(&instance, &order, &mut bug, &GbrConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(cnf.eval(&out.solution), "seed {seed}: invalid solution");
        assert!(
            needed.iter().all(|v| out.solution.contains(*v)),
            "seed {seed}: failure lost"
        );
        // Minimization never breaks soundness and never grows.
        let mut bug2 = {
            let needed = needed.clone();
            move |s: &VarSet| needed.iter().all(|v| s.contains(*v))
        };
        let (minimized, _) = minimize_solution(&instance, &order, &mut bug2, &out.solution);
        assert!(minimized.len() <= out.solution.len());
        assert!(cnf.eval(&minimized), "seed {seed}: minimized invalid");
        assert!(needed.iter().all(|v| minimized.contains(*v)));
    }
}

#[test]
fn gbr_all_msa_strategies_agree_on_random_models() {
    for seed in 100..110u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = 24;
        let cnf = random_model(&mut rng, n);
        let full = VarSet::full(n);
        if !cnf.eval(&full) {
            continue;
        }
        let target = Var::new(rng.gen_range(0..n as u32));
        let order = closure_size_order(&cnf);
        let instance = Instance::over_all_vars(cnf.clone());
        for strategy in MsaStrategy::ALL {
            let mut bug = |s: &VarSet| s.contains(target);
            let config = GbrConfig {
                msa_strategy: strategy,
                ..GbrConfig::default()
            };
            let out = generalized_binary_reduction(&instance, &order, &mut bug, &config)
                .unwrap_or_else(|e| panic!("seed {seed} {strategy:?}: {e}"));
            assert!(cnf.eval(&out.solution));
            assert!(out.solution.contains(target));
        }
    }
}
