//! The composable oracle middleware stack.
//!
//! Every caller of the reduction algorithms wraps the same black-box
//! predicate with the same few concerns — an external probe cache,
//! emulated tool latency, fault injection, validation, counters — and
//! before this module each caller hand-rolled its own wrapping. Here each
//! concern is an [`OracleLayer`]: a decorator that receives the candidate
//! subset and a `next` continuation, and may answer the probe itself
//! (a cache hit), pass it down (possibly after a delay), or observe the
//! result on the way back up. An [`OracleStack`] threads the layers over
//! a base [`ConcurrentPredicate`] and is itself a `ConcurrentPredicate`,
//! so a stacked oracle drops into every probe path unchanged — the
//! sequential [`Oracle`](crate::Oracle) wrapper, the speculative
//! [`ProbeScheduler`](crate::ProbeScheduler), or a bare algorithm.
//!
//! The canonical order, outermost first, is
//!
//! ```text
//! memo/trace/stats (Oracle or ProbeScheduler, per run)
//!   └─ CacheLayer (cross-run ProbeCache; optionally FaultyCache-wrapped)
//!        └─ LatencyLayer (emulated tool latency on fresh runs only)
//!             └─ base predicate (materialize candidate + run the tool)
//! ```
//!
//! so cache hits never sleep and per-run memo hits never reach the stack
//! at all — exactly the behavior the callers had before. Layers use
//! atomic counters, so their stat totals are exact under any thread
//! interleaving wherever the underlying cache discipline is (the
//! run-once [`ShardedMemo`](crate::ShardedMemo) above, first-write-wins
//! caches below).

use crate::concurrent::{ConcurrentPredicate, Probe, ProbeCache};
use crate::fault::{FaultInjector, FaultPlan};
use crate::keyed::KeyedMap;
use lbr_logic::VarSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One middleware layer over a probe path.
///
/// A layer receives the candidate and the rest of the stack as `next`; it
/// may call `next` zero times (answering from a cache), once (the normal
/// case), or — for validation-style layers — observe and re-emit the
/// result. Layers are probed through `&self` from many threads, so all
/// internal state must be thread-safe.
pub trait OracleLayer: Sync {
    /// A short stable name, used in docs, logs and stat maps.
    fn name(&self) -> &'static str;
    /// Handles one probe, delegating to `next` for the layers below.
    fn probe(&self, input: &VarSet, next: &dyn Fn(&VarSet) -> Probe) -> Probe;
}

/// A stack of [`OracleLayer`]s over a base predicate.
///
/// Layers are applied outermost-first: `stack.push(a); stack.push(b)`
/// probes as `a(b(base))`. The stack borrows its layers, so the caller
/// keeps the concrete layer values and can read their counters after the
/// run.
pub struct OracleStack<'p> {
    base: &'p dyn ConcurrentPredicate,
    layers: Vec<&'p dyn OracleLayer>,
}

impl<'p> OracleStack<'p> {
    /// A stack with no layers: probes go straight to `base`.
    pub fn new(base: &'p dyn ConcurrentPredicate) -> Self {
        OracleStack {
            base,
            layers: Vec::new(),
        }
    }

    /// Adds `layer` beneath the layers already pushed (the first push is
    /// outermost).
    pub fn push(&mut self, layer: &'p dyn OracleLayer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, layer: &'p dyn OracleLayer) -> Self {
        self.layers.push(layer);
        self
    }

    /// The names of the layers, outermost first.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    fn probe_from(&self, depth: usize, input: &VarSet) -> Probe {
        match self.layers.get(depth) {
            Some(layer) => layer.probe(input, &|key| self.probe_from(depth + 1, key)),
            None => self.base.probe(input),
        }
    }
}

impl ConcurrentPredicate for OracleStack<'_> {
    fn probe(&self, input: &VarSet) -> Probe {
        self.probe_from(0, input)
    }
}

/// The cross-run cache layer: answers probes from a [`ProbeCache`] and
/// stores fresh results back.
///
/// Sits beneath the per-run bookkeeping, so a hit replaces the tool
/// invocation only — logical call counts, traces and results are
/// bit-identical whether the cache is cold, warm, faulty or absent.
pub struct CacheLayer<'c> {
    cache: &'c dyn ProbeCache,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'c> CacheLayer<'c> {
    /// A layer over `cache`.
    pub fn new(cache: &'c dyn ProbeCache) -> Self {
        CacheLayer {
            cache,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Probes answered by the cache without running the layers below.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that fell through to the layers below.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl OracleLayer for CacheLayer<'_> {
    fn name(&self) -> &'static str {
        "cache"
    }

    fn probe(&self, input: &VarSet, next: &dyn Fn(&VarSet) -> Probe) -> Probe {
        if let Some(probe) = self.cache.lookup(input) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return probe;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let probe = next(input);
        self.cache.store(input, probe);
        probe
    }
}

/// Per-probe coverage statistics aggregated by a [`TraceLayer`].
///
/// This is the trace-guided prior of coverage-based debloating, recast
/// over keep-sets: every failure-preserving probe "executes" exactly the
/// items it kept, so the per-item frequency over failing probes is an
/// execution-coverage profile of the bug, and the smallest failing
/// keep-set seen is the covered set a trace-guided search should start
/// from.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageTrace {
    probes: u64,
    failing: u64,
    freq: Vec<u64>,
    best_failing: Option<VarSet>,
}

impl CoverageTrace {
    /// An empty trace over `num_vars` item variables.
    pub fn new(num_vars: usize) -> Self {
        CoverageTrace {
            probes: 0,
            failing: 0,
            freq: vec![0; num_vars],
            best_failing: None,
        }
    }

    /// Folds one probe into the trace. Only failure-preserving probes
    /// contribute coverage; ties on the smallest failing keep-set go to
    /// the earliest probe, keeping the trace deterministic.
    pub fn record(&mut self, input: &VarSet, probe: Probe) {
        self.probes += 1;
        if probe.outcome {
            self.failing += 1;
            for v in input.iter() {
                self.freq[v.index()] += 1;
            }
            let better = match &self.best_failing {
                None => true,
                Some(best) => input.len() < best.len(),
            };
            if better {
                self.best_failing = Some(input.clone());
            }
        }
    }

    /// Probes recorded.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Probes whose outcome preserved the failure.
    pub fn failing(&self) -> u64 {
        self.failing
    }

    /// Per-variable count of failing probes that kept the variable.
    pub fn frequencies(&self) -> &[u64] {
        &self.freq
    }

    /// The smallest failure-preserving keep-set seen, if any — the
    /// covered set a trace-guided search seeds its assignment with.
    pub fn covered(&self) -> Option<&VarSet> {
        self.best_failing.as_ref()
    }

    /// FNV-1a digest of the whole trace (counts, frequencies, covered
    /// set), for bit-identity assertions across runs and store states.
    pub fn digest(&self) -> u64 {
        fn eat(h: u64, x: u64) -> u64 {
            x.to_le_bytes()
                .iter()
                .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3))
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = eat(h, self.probes);
        h = eat(h, self.failing);
        for &f in &self.freq {
            h = eat(h, f);
        }
        match &self.best_failing {
            None => h = eat(h, u64::MAX),
            Some(best) => {
                h = eat(h, best.len() as u64);
                for v in best.iter() {
                    h = eat(h, v.index() as u64);
                }
            }
        }
        h
    }
}

/// The trace-recording layer: observes every probe into a
/// [`CoverageTrace`], optionally backed by a cross-run trace *store* (a
/// [`ProbeCache`]) that answers repeated probes without re-running the
/// tool.
///
/// Canonical stack position: memo → **trace** → cache → latency → base.
/// The store follows [`CacheLayer`]'s hit discipline exactly — a hit
/// replaces the tool invocation only, and the probe is still recorded in
/// the trace — so call counts, traces, digests and results are
/// bit-identical whether the store is cold, warm, or absent.
pub struct TraceLayer<'c> {
    store: Option<&'c dyn ProbeCache>,
    trace: Mutex<CoverageTrace>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'c> TraceLayer<'c> {
    /// A store-less recorder over `num_vars` item variables.
    pub fn new(num_vars: usize) -> Self {
        TraceLayer {
            store: None,
            trace: Mutex::new(CoverageTrace::new(num_vars)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A recorder whose probes are answered from (and stored back to)
    /// `store` — warm runs skip the tool, the trace sees every probe.
    pub fn with_store(num_vars: usize, store: &'c dyn ProbeCache) -> Self {
        TraceLayer {
            store: Some(store),
            ..TraceLayer::new(num_vars)
        }
    }

    /// Probes answered by the trace store without the layers below.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that ran the layers below.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// A copy of the coverage trace aggregated so far.
    pub fn snapshot(&self) -> CoverageTrace {
        self.trace.lock().expect("trace layer").clone()
    }
}

impl OracleLayer for TraceLayer<'_> {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn probe(&self, input: &VarSet, next: &dyn Fn(&VarSet) -> Probe) -> Probe {
        let probe = match self.store {
            Some(store) => match store.lookup(input) {
                Some(p) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    p
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let p = next(input);
                    store.store(input, p);
                    p
                }
            },
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                next(input)
            }
        };
        self.trace.lock().expect("trace layer").record(input, probe);
        probe
    }
}

/// Emulated tool latency: sleeps for a fixed duration on every probe that
/// reaches it, modeling the decompile+compile wall cost without the
/// tools. Placed beneath the cache layer so cache hits stay instant.
pub struct LatencyLayer {
    micros: u64,
}

impl LatencyLayer {
    /// A layer that sleeps `micros` microseconds per probe (0 = no-op).
    pub fn new(micros: u64) -> Self {
        LatencyLayer { micros }
    }
}

impl OracleLayer for LatencyLayer {
    fn name(&self) -> &'static str {
        "latency"
    }

    fn probe(&self, input: &VarSet, next: &dyn Fn(&VarSet) -> Probe) -> Probe {
        if self.micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.micros));
        }
        next(input)
    }
}

/// A pass-through layer that checks every probed candidate against a
/// caller-supplied validity predicate, counting violations.
///
/// GBR promises to only probe *valid* sub-inputs (models of `R_I`);
/// pinning that promise as a layer makes it observable per run instead
/// of trusted. Counts rather than panics, because some baselines (ddmin)
/// probe invalid candidates by design.
pub struct ValidationLayer<F> {
    is_valid: F,
    checked: AtomicU64,
    violations: AtomicU64,
}

impl<F: Fn(&VarSet) -> bool + Sync> ValidationLayer<F> {
    /// A layer that checks candidates with `is_valid`.
    pub fn new(is_valid: F) -> Self {
        ValidationLayer {
            is_valid,
            checked: AtomicU64::new(0),
            violations: AtomicU64::new(0),
        }
    }

    /// Probes that passed through this layer.
    pub fn checked(&self) -> u64 {
        self.checked.load(Ordering::Relaxed)
    }

    /// Probed candidates that failed the validity check.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }
}

impl<F: Fn(&VarSet) -> bool + Sync> OracleLayer for ValidationLayer<F> {
    fn name(&self) -> &'static str {
        "validation"
    }

    fn probe(&self, input: &VarSet, next: &dyn Fn(&VarSet) -> Probe) -> Probe {
        self.checked.fetch_add(1, Ordering::Relaxed);
        if !(self.is_valid)(input) {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
        next(input)
    }
}

/// An observation layer: counts probes that reached it and tracks the
/// smallest candidate that still induced the failure.
pub struct StatsLayer {
    probes: AtomicU64,
    failures: AtomicU64,
    best_failing: AtomicU64,
}

impl StatsLayer {
    /// A fresh observer.
    pub fn new() -> Self {
        StatsLayer {
            probes: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            best_failing: AtomicU64::new(u64::MAX),
        }
    }

    /// Probes that reached this layer.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Probes whose outcome preserved the failure.
    pub fn failures_preserved(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Size of the smallest failure-preserving candidate seen, if any.
    pub fn best_failing_size(&self) -> Option<u64> {
        match self.best_failing.load(Ordering::Relaxed) {
            u64::MAX => None,
            s => Some(s),
        }
    }
}

impl Default for StatsLayer {
    fn default() -> Self {
        StatsLayer::new()
    }
}

impl OracleLayer for StatsLayer {
    fn name(&self) -> &'static str {
        "stats"
    }

    fn probe(&self, input: &VarSet, next: &dyn Fn(&VarSet) -> Probe) -> Probe {
        let probe = next(input);
        self.probes.fetch_add(1, Ordering::Relaxed);
        if probe.outcome {
            self.failures.fetch_add(1, Ordering::Relaxed);
            self.best_failing.fetch_min(probe.size, Ordering::Relaxed);
        }
        probe
    }
}

/// A plain in-memory [`ProbeCache`] over a [`KeyedMap`] — the simplest
/// thing to hand a [`CacheLayer`] in tests, examples, or single-process
/// runs that want cross-run sharing without a disk file.
#[derive(Default)]
pub struct MemoryCache {
    map: Mutex<KeyedMap<Probe>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoryCache {
    /// An empty cache.
    pub fn new() -> Self {
        MemoryCache::default()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.lock().expect("memory cache").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl ProbeCache for MemoryCache {
    fn lookup(&self, key: &VarSet) -> Option<Probe> {
        let found = self.map.lock().expect("memory cache").get(key).copied();
        match found {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(p)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: &VarSet, probe: Probe) {
        self.map
            .lock()
            .expect("memory cache")
            .insert_if_absent(key, probe);
    }
}

/// A [`ProbeCache`] decorator that injects deterministic faults: a
/// faulted lookup degrades to a miss, a faulted store is dropped. Wrap
/// any cache with it and hand the result to a [`CacheLayer`] to prove a
/// probe path survives cache loss with bit-identical results.
pub struct FaultyCache<'c> {
    inner: &'c dyn ProbeCache,
    injector: FaultInjector,
}

impl<'c> FaultyCache<'c> {
    /// Wraps `inner`, faulting each operation per `plan`.
    pub fn new(inner: &'c dyn ProbeCache, plan: FaultPlan) -> Self {
        let injector = FaultInjector::new();
        injector.arm(plan);
        FaultyCache { inner, injector }
    }

    /// Operations faulted so far.
    pub fn faults_injected(&self) -> u64 {
        self.injector.injected()
    }
}

impl ProbeCache for FaultyCache<'_> {
    fn lookup(&self, key: &VarSet) -> Option<Probe> {
        if self.injector.fire() {
            return None;
        }
        self.inner.lookup(key)
    }

    fn store(&self, key: &VarSet, probe: Probe) {
        if self.injector.fire() {
            return;
        }
        self.inner.store(key, probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_logic::Var;
    use std::sync::atomic::AtomicUsize;

    fn set(universe: usize, vars: &[u32]) -> VarSet {
        VarSet::from_iter_with_universe(universe, vars.iter().map(|&v| Var::new(v)))
    }

    #[test]
    fn empty_stack_is_the_base_predicate() {
        let base = |s: &VarSet| s.len() >= 2;
        let stack = OracleStack::new(&base);
        assert!(stack.probe(&set(4, &[0, 1])).outcome);
        assert!(!stack.probe(&set(4, &[0])).outcome);
    }

    #[test]
    fn cache_layer_answers_repeats_without_the_base() {
        let runs = AtomicUsize::new(0);
        let base = |s: &VarSet| {
            runs.fetch_add(1, Ordering::Relaxed);
            s.contains(Var::new(0))
        };
        let cache = MemoryCache::new();
        let layer = CacheLayer::new(&cache);
        let stack = OracleStack::new(&base).with(&layer);
        let key = set(4, &[0, 2]);
        let first = stack.probe(&key);
        let second = stack.probe(&key);
        assert_eq!(first, second);
        assert_eq!(runs.load(Ordering::Relaxed), 1, "base ran once");
        assert_eq!((layer.hits(), layer.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn layer_order_is_outermost_first() {
        // cache over stats: a cache hit must bypass the stats layer.
        let base = |_: &VarSet| true;
        let cache = MemoryCache::new();
        let cache_layer = CacheLayer::new(&cache);
        let stats = StatsLayer::new();
        let stack = OracleStack::new(&base).with(&cache_layer).with(&stats);
        assert_eq!(stack.layer_names(), ["cache", "stats"]);
        let key = set(4, &[1]);
        stack.probe(&key);
        stack.probe(&key);
        assert_eq!(stats.probes(), 1, "the hit never reached the stats layer");
        assert_eq!(cache_layer.hits(), 1);
    }

    #[test]
    fn validation_layer_counts_but_does_not_block() {
        let base = |_: &VarSet| true;
        let validation = ValidationLayer::new(|s: &VarSet| s.len().is_multiple_of(2));
        let stack = OracleStack::new(&base).with(&validation);
        assert!(stack.probe(&set(4, &[0, 1])).outcome);
        assert!(stack.probe(&set(4, &[0])).outcome, "violations still probe");
        assert_eq!(validation.checked(), 2);
        assert_eq!(validation.violations(), 1);
    }

    #[test]
    fn stats_layer_tracks_best_failing_size() {
        let base = |s: &VarSet| s.contains(Var::new(0));
        let stats = StatsLayer::new();
        let stack = OracleStack::new(&base).with(&stats);
        stack.probe(&set(8, &[0, 1, 2]));
        stack.probe(&set(8, &[0]));
        stack.probe(&set(8, &[3]));
        assert_eq!(stats.probes(), 3);
        assert_eq!(stats.failures_preserved(), 2);
        assert_eq!(stats.best_failing_size(), Some(1));
    }

    #[test]
    fn faulty_cache_loses_entries_never_corrupts() {
        let inner = MemoryCache::new();
        let key = set(4, &[1, 3]);
        let probe = Probe {
            outcome: true,
            size: 9,
        };
        // Every operation faults: the store is dropped, the lookup misses.
        let all_faults = FaultyCache::new(&inner, FaultPlan { rate: 1.0, seed: 1 });
        all_faults.store(&key, probe);
        assert!(inner.is_empty(), "faulted store must be dropped");
        inner.store(&key, probe);
        assert_eq!(all_faults.lookup(&key), None, "faulted lookup must miss");
        assert!(all_faults.faults_injected() >= 2);
        // Disarmed path returns the intact entry.
        let no_faults = FaultyCache::new(&inner, FaultPlan { rate: 0.0, seed: 1 });
        assert_eq!(no_faults.lookup(&key), Some(probe));
    }

    #[test]
    fn trace_layer_aggregates_failing_coverage() {
        let base = |s: &VarSet| s.contains(Var::new(0));
        let trace = TraceLayer::new(4);
        let stack = OracleStack::new(&base).with(&trace);
        stack.probe(&set(4, &[0, 1]));
        stack.probe(&set(4, &[0]));
        stack.probe(&set(4, &[2]));
        let cov = trace.snapshot();
        assert_eq!((cov.probes(), cov.failing()), (3, 2));
        assert_eq!(cov.frequencies(), &[2, 1, 0, 0]);
        assert_eq!(cov.covered(), Some(&set(4, &[0])));
        assert_eq!(trace.misses(), 3);
    }

    #[test]
    fn warm_trace_store_is_invisible_in_the_trace() {
        let runs = AtomicUsize::new(0);
        let base = |s: &VarSet| {
            runs.fetch_add(1, Ordering::Relaxed);
            s.contains(Var::new(1))
        };
        let store = MemoryCache::new();
        let probes = [set(4, &[0, 1]), set(4, &[1]), set(4, &[3])];
        let cold = TraceLayer::with_store(4, &store);
        for p in &probes {
            OracleStack::new(&base).with(&cold).probe(p);
        }
        let cold_runs = runs.load(Ordering::Relaxed);
        let warm = TraceLayer::with_store(4, &store);
        for p in &probes {
            OracleStack::new(&base).with(&warm).probe(p);
        }
        assert_eq!(runs.load(Ordering::Relaxed), cold_runs, "warm skips tool");
        assert_eq!(warm.hits(), 3);
        assert_eq!(cold.snapshot(), warm.snapshot(), "trace sees every probe");
        assert_eq!(cold.snapshot().digest(), warm.snapshot().digest());
    }

    #[test]
    fn coverage_digest_separates_distinct_traces() {
        let mut a = CoverageTrace::new(3);
        let mut b = CoverageTrace::new(3);
        let failing = Probe {
            outcome: true,
            size: 2,
        };
        a.record(&set(3, &[0, 1]), failing);
        b.record(&set(3, &[0, 2]), failing);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), CoverageTrace::new(3).digest());
    }

    #[test]
    fn latency_layer_passes_through() {
        let base = |s: &VarSet| s.is_empty();
        let latency = LatencyLayer::new(0);
        let stack = OracleStack::new(&base).with(&latency);
        assert!(stack.probe(&set(2, &[])).outcome);
        assert!(!stack.probe(&set(2, &[1])).outcome);
    }
}
