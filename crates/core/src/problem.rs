//! The Input Reduction Problem and black-box predicates.
//!
//! Definition 4.1 of the paper: an instance is `(I, P, R_I)` where `I` is a
//! set of variables, `P` a black-box predicate on subsets of `I` (true iff
//! the sub-input still induces the bug), and `R_I` a CNF whose models are
//! the valid sub-inputs. `P` must be monotone on valid sub-inputs.

use crate::keyed::KeyedMap;
use crate::trace::ReductionTrace;
use lbr_logic::{Cnf, VarSet};
use std::time::Instant;

/// A black-box predicate on sub-inputs.
///
/// The *black-box* discipline of the paper means algorithms may only invoke
/// [`Predicate::test`]; they learn nothing else about the buggy tool. The
/// sub-input is given as the set of kept variables.
///
/// Implemented for closures, so simple predicates can be written inline:
///
/// ```
/// use lbr_core::Predicate;
/// use lbr_logic::{Var, VarSet};
/// let mut p = |s: &VarSet| s.contains(Var::new(2));
/// let mut input = VarSet::empty(3);
/// assert!(!Predicate::test(&mut p, &input));
/// input.insert(Var::new(2));
/// assert!(Predicate::test(&mut p, &input));
/// ```
pub trait Predicate {
    /// Runs the buggy tool on the sub-input; `true` iff the failure is
    /// still induced.
    fn test(&mut self, input: &VarSet) -> bool;
}

impl<F: FnMut(&VarSet) -> bool> Predicate for F {
    fn test(&mut self, input: &VarSet) -> bool {
        self(input)
    }
}

/// An instance `(I, P, R_I)` of the Input Reduction Problem.
///
/// The predicate is kept outside this struct (algorithms take it as a
/// separate argument) so that instances can be shared while predicates are
/// stateful.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The variable universe `I` — the removable items of the input.
    pub vars: VarSet,
    /// The validity model `R_I` in CNF.
    pub cnf: Cnf,
}

impl Instance {
    /// Creates an instance over all of `cnf`'s variables.
    pub fn over_all_vars(cnf: Cnf) -> Self {
        let vars = VarSet::full(cnf.num_vars());
        Instance { vars, cnf }
    }

    /// Creates an instance over an explicit variable set.
    pub fn new(vars: VarSet, cnf: Cnf) -> Self {
        Instance { vars, cnf }
    }

    /// Whether `sub` is a valid sub-input (a model of `R_I`).
    pub fn is_valid(&self, sub: &VarSet) -> bool {
        self.cnf.eval(sub)
    }
}

/// A custom size metric for trace points.
type SizeMetric<'p> = Box<dyn Fn(&VarSet) -> u64 + 'p>;

/// Wraps a predicate with call counting, tracing and an optional synthetic
/// per-invocation cost model.
///
/// The paper's evaluation plots reduction quality against *time*, where
/// time is dominated by tool invocations (≈33 s per decompile+compile). An
/// [`Oracle`] records, per call: the call index, wall-clock time so far,
/// the modeled time so far (`calls × cost`), the input size, the outcome,
/// and the best (smallest) failing size seen — everything Figure 8 needs.
///
/// With [`with_memo`](Oracle::with_memo), outcomes (and measured sizes) are
/// cached by candidate subset: repeated probes of the same keep-set — which
/// reduction strategies issue routinely, and the per-error mode issues by
/// construction — skip the wrapped tool entirely. Memoization is invisible
/// to the algorithms: [`calls`](Oracle::calls) still counts every logical
/// probe and the trace records every probe, so call counts, traces, and
/// results are identical with the cache on or off; only the wall-clock
/// cost of re-running the tool disappears.
pub struct Oracle<'p> {
    inner: &'p mut dyn Predicate,
    calls: u64,
    start: Instant,
    cost_per_call_secs: f64,
    trace: ReductionTrace,
    size_of: Option<SizeMetric<'p>>,
    /// Memoized probes — `(outcome, measured size)` per candidate —
    /// on the workspace-wide [`KeyedMap`] (shared with
    /// [`ShardedMemo`](crate::ShardedMemo)).
    memo: Option<KeyedMap<(bool, u64)>>,
    cache_hits: u64,
    cache_misses: u64,
}

impl<'p> Oracle<'p> {
    /// Wraps `inner` with tracing. `cost_per_call_secs` is the synthetic
    /// cost of one tool invocation (use `0.0` to disable the cost model).
    pub fn new(inner: &'p mut dyn Predicate, cost_per_call_secs: f64) -> Self {
        Oracle {
            inner,
            calls: 0,
            start: Instant::now(),
            cost_per_call_secs,
            trace: ReductionTrace::new(),
            size_of: None,
            memo: None,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Uses `f` to measure input sizes in the trace (e.g. serialized bytes)
    /// instead of the default variable count.
    pub fn with_size_metric(mut self, f: impl Fn(&VarSet) -> u64 + 'p) -> Self {
        self.size_of = Some(Box::new(f));
        self
    }

    /// Enables memoization: each distinct candidate subset runs the wrapped
    /// predicate (and the size metric) at most once.
    pub fn with_memo(mut self) -> Self {
        self.memo = Some(KeyedMap::new());
        self
    }

    /// Number of predicate invocations so far (including memoized hits).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Probes answered from the memo without running the tool (0 when
    /// memoization is disabled).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Probes that actually ran the tool while memoization was enabled
    /// (0 when it is disabled).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// The recorded trace.
    pub fn trace(&self) -> &ReductionTrace {
        &self.trace
    }

    /// Consumes the oracle, returning its trace.
    pub fn into_trace(self) -> ReductionTrace {
        self.trace
    }

    fn measure(size_of: &Option<SizeMetric<'p>>, input: &VarSet) -> u64 {
        match size_of {
            Some(f) => f(input),
            None => input.len() as u64,
        }
    }
}

impl Predicate for Oracle<'_> {
    fn test(&mut self, input: &VarSet) -> bool {
        let memoized = self.memo.as_ref().map(|memo| memo.get(input).copied());
        let (outcome, size) = match memoized {
            Some(Some((outcome, size))) => {
                self.cache_hits += 1;
                (outcome, size)
            }
            Some(None) => {
                self.cache_misses += 1;
                let outcome = self.inner.test(input);
                let size = Self::measure(&self.size_of, input);
                self.memo
                    .as_mut()
                    .expect("memo enabled")
                    .insert_if_absent(input, (outcome, size));
                (outcome, size)
            }
            None => {
                let outcome = self.inner.test(input);
                (outcome, Self::measure(&self.size_of, input))
            }
        };
        self.calls += 1;
        let wall = self.start.elapsed().as_secs_f64();
        let modeled = self.calls as f64 * self.cost_per_call_secs;
        self.trace.record(self.calls, wall, modeled, size, outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_logic::{Clause, Var};

    #[test]
    fn instance_validity() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::edge(Var::new(0), Var::new(1)));
        let inst = Instance::over_all_vars(cnf);
        assert_eq!(inst.vars.len(), 2);
        let mut s = VarSet::empty(2);
        assert!(inst.is_valid(&s));
        s.insert(Var::new(0));
        assert!(!inst.is_valid(&s));
    }

    #[test]
    fn oracle_counts_and_traces() {
        let mut p = |s: &VarSet| s.len() >= 2;
        let mut oracle = Oracle::new(&mut p, 33.0);
        let mut s = VarSet::empty(3);
        assert!(!oracle.test(&s));
        s.insert(Var::new(0));
        s.insert(Var::new(1));
        assert!(oracle.test(&s));
        assert_eq!(oracle.calls(), 2);
        let trace = oracle.into_trace();
        assert_eq!(trace.len(), 2);
        let last = trace.points().last().expect("two points");
        assert_eq!(last.call, 2);
        assert!(last.success);
        assert_eq!(last.size, 2);
        assert!((last.modeled_secs - 66.0).abs() < 1e-9);
        assert_eq!(trace.best_failing_size(), Some(2));
    }

    #[test]
    fn oracle_memo_skips_repeat_probes_but_keeps_counts() {
        let mut tool_runs = 0u32;
        let mut p = |s: &VarSet| {
            tool_runs += 1;
            s.contains(Var::new(0))
        };
        let mut oracle = Oracle::new(&mut p, 33.0).with_memo();
        let a = VarSet::from_iter_with_universe(2, [Var::new(0)]);
        let b = VarSet::empty(2);
        assert!(oracle.test(&a));
        assert!(!oracle.test(&b));
        assert!(oracle.test(&a)); // cached, but still a logical probe
        assert!(oracle.test(&a));
        assert_eq!(oracle.calls(), 4, "calls count every probe");
        assert_eq!(oracle.cache_hits(), 2);
        assert_eq!(oracle.cache_misses(), 2);
        assert_eq!(oracle.trace().len(), 4, "trace records every probe");
        drop(oracle);
        assert_eq!(tool_runs, 2, "the tool ran once per distinct subset");
    }

    #[test]
    fn oracle_without_memo_reports_zero_cache_stats() {
        let mut p = |_: &VarSet| true;
        let mut oracle = Oracle::new(&mut p, 0.0);
        let s = VarSet::empty(1);
        oracle.test(&s);
        oracle.test(&s);
        assert_eq!(oracle.calls(), 2);
        assert_eq!(oracle.cache_hits(), 0);
        assert_eq!(oracle.cache_misses(), 0);
    }

    #[test]
    fn oracle_custom_size_metric() {
        let mut p = |_: &VarSet| true;
        let mut oracle = Oracle::new(&mut p, 0.0).with_size_metric(|s| 100 * s.len() as u64);
        let mut s = VarSet::empty(2);
        s.insert(Var::new(1));
        oracle.test(&s);
        assert_eq!(oracle.trace().points()[0].size, 100);
    }
}
