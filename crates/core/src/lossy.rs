//! Lossy encodings of CNF into graph constraints (Section 4.3).
//!
//! Any clause `(a₁ ∧ … ∧ aₙ) ⇒ (b₁ ∨ … ∨ bₘ)` is *implied by* the single
//! edge `a_{i'} ⇒ b_{j'}` for any choice of `i', j'`, so replacing every
//! non-graph clause with such an edge yields a stronger, graph-only model:
//! every solution of the encoding is a valid sub-input, but some valid
//! sub-inputs are lost. The paper evaluates two variants — pick the first
//! of each (`i' = 1, j' = 1`) or the last (`i' = n, j' = m`) — and finds
//! both come close to the full logical reducer.

use crate::DepGraph;
use lbr_logic::{Clause, ClauseShape, Cnf, Lit, Var, VarOrder, VarSet};

/// Which antecedent/consequent literal the lossy encoding keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossyPick {
    /// `i' = 1, j' = 1`: the `<`-least body variable implies the `<`-least
    /// head variable.
    FirstFirst,
    /// `i' = n, j' = m`: the `<`-greatest of each.
    LastLast,
}

impl LossyPick {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LossyPick::FirstFirst => "lossy-1",
            LossyPick::LastLast => "lossy-2",
        }
    }
}

/// Encodes `cnf` into a graph-constraint-only CNF by replacing every
/// non-graph clause with one implied edge (or unit), per `pick`.
///
/// Clauses with no positive literal become a negative unit (`a_{i'} ⇒
/// false`); [`lossy_graph`] turns those into forbidden variables.
///
/// # Examples
///
/// ```
/// use lbr_core::{lossy_encode, LossyPick};
/// use lbr_logic::{Clause, Cnf, Var, VarOrder};
/// let (a, b, c) = (Var::new(0), Var::new(1), Var::new(2));
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause(Clause::implication([a, b], [c])); // (a ∧ b) ⇒ c
/// let order = VarOrder::natural(3);
/// let lossy = lossy_encode(&cnf, &order, LossyPick::FirstFirst);
/// assert_eq!(lossy.clauses()[0], Clause::edge(a, c));
/// ```
pub fn lossy_encode(cnf: &Cnf, order: &VarOrder, pick: LossyPick) -> Cnf {
    let mut out = Cnf::new(cnf.num_vars());
    for c in cnf.clauses() {
        if c.is_graph_constraint() {
            out.add_clause(c.clone());
            continue;
        }
        let body: Option<Var> = pick_var(c.negatives(), order, pick);
        let head: Option<Var> = pick_var(c.positives(), order, pick);
        match (body, head) {
            (Some(a), Some(b)) => {
                out.add_clause(Clause::edge(a, b));
            }
            (None, Some(b)) => {
                out.add_clause(Clause::unit(Lit::pos(b)));
            }
            (Some(a), None) => {
                out.add_clause(Clause::unit(Lit::neg(a)));
            }
            (None, None) => {
                out.add_clause(Clause::empty());
            }
        }
    }
    out
}

fn pick_var<I: Iterator<Item = Var>>(vars: I, order: &VarOrder, pick: LossyPick) -> Option<Var> {
    match pick {
        LossyPick::FirstFirst => vars.min_by_key(|&v| order.rank(v)),
        LossyPick::LastLast => vars.max_by_key(|&v| order.rank(v)),
    }
}

/// The result of lowering a lossy encoding to a dependency graph.
#[derive(Debug, Clone)]
pub struct LossyGraph {
    /// The dependency graph over the original variables.
    pub graph: DepGraph,
    /// Variables the encoding forbids (negative units and everything whose
    /// closure reaches them). These cannot appear in any sub-input of the
    /// encoded model.
    pub forbidden: VarSet,
}

/// Lowers `cnf` (already lossily encoded, or naturally graph-only) to a
/// dependency graph plus a forbidden set.
///
/// Returns `None` if the encoding is contradictory: a required variable's
/// closure reaches a forbidden variable, or an empty clause is present.
pub fn lossy_graph(cnf: &Cnf, order: &VarOrder, pick: LossyPick) -> Option<LossyGraph> {
    let encoded = lossy_encode(cnf, order, pick);
    let n = encoded.num_vars();
    let mut graph = DepGraph::new(n);
    let mut forbidden_seeds: Vec<Var> = Vec::new();
    for c in encoded.clauses() {
        match c.shape() {
            ClauseShape::Edge { from, to } => graph.add_edge(from, to),
            ClauseShape::UnitPositive(v) => graph.require(v),
            ClauseShape::UnitNegative(v) => forbidden_seeds.push(v),
            ClauseShape::Empty => return None,
            _ => unreachable!("lossy_encode emits only graph shapes and units"),
        }
    }
    // A variable is forbidden if its closure reaches a forbidden seed:
    // compute reachability in the reversed graph from the seeds.
    let mut reverse = DepGraph::new(n);
    for v in 0..n {
        for &t in graph.successors(Var::new(v as u32)) {
            reverse.add_edge(t, Var::new(v as u32));
        }
    }
    let forbidden = reverse.closure_of(forbidden_seeds);
    if graph.required().iter().any(|r| forbidden.contains(r)) {
        return None;
    }
    Some(LossyGraph { graph, forbidden })
}

/// The soundness statement of Section 4.3: every model of the lossy
/// encoding is a model of the original CNF. Exposed for tests and
/// documentation; always true by construction.
pub fn lossy_is_sound(original: &Cnf, encoded: &Cnf, model: &VarSet) -> bool {
    !encoded.eval(model) || original.eval(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn graph_clauses_pass_through() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        let order = VarOrder::natural(2);
        for pick in [LossyPick::FirstFirst, LossyPick::LastLast] {
            let e = lossy_encode(&cnf, &order, pick);
            assert_eq!(e.clauses(), cnf.clauses());
        }
    }

    #[test]
    fn general_clause_first_and_last() {
        // (0 ∧ 1) ⇒ (2 ∨ 3)
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::implication([v(0), v(1)], [v(2), v(3)]));
        let order = VarOrder::natural(4);
        let first = lossy_encode(&cnf, &order, LossyPick::FirstFirst);
        assert_eq!(first.clauses()[0], Clause::edge(v(0), v(2)));
        let last = lossy_encode(&cnf, &order, LossyPick::LastLast);
        assert_eq!(last.clauses()[0], Clause::edge(v(1), v(3)));
    }

    #[test]
    fn positive_disjunction_becomes_unit() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([], [v(1), v(2)]));
        let order = VarOrder::natural(3);
        let first = lossy_encode(&cnf, &order, LossyPick::FirstFirst);
        assert_eq!(first.clauses()[0], Clause::unit(Lit::pos(v(1))));
    }

    #[test]
    fn negative_disjunction_becomes_forbidden() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::new(vec![Lit::neg(v(0)), Lit::neg(v(1))]));
        cnf.add_clause(Clause::edge(v(2), v(0)));
        let order = VarOrder::natural(3);
        let lg = lossy_graph(&cnf, &order, LossyPick::FirstFirst).expect("consistent");
        // Seed 0 forbidden; 2 depends on 0, so 2 is forbidden too.
        assert!(lg.forbidden.contains(v(0)));
        assert!(lg.forbidden.contains(v(2)));
        assert!(!lg.forbidden.contains(v(1)));
    }

    #[test]
    fn required_forbidden_is_contradiction() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(0))]));
        // ¬0 is already a unit-negative graph... it is not a graph
        // constraint, so it is lossily encoded to itself.
        let order = VarOrder::natural(1);
        assert!(lossy_graph(&cnf, &order, LossyPick::FirstFirst).is_none());
    }

    #[test]
    fn soundness_every_encoded_model_satisfies_original() {
        // Paper's example: replacing ([A◁I] ∧ [I.m()]) ⇒ [A.m()] with
        // [A◁I] ⇒ [A.m()] preserves soundness.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([v(0), v(1)], [v(2)]));
        let order = VarOrder::natural(3);
        let encoded = lossy_encode(&cnf, &order, LossyPick::FirstFirst);
        // Exhaustively: every model of `encoded` models `cnf`.
        for bits in 0..8u32 {
            let mut s = VarSet::empty(3);
            for i in 0..3 {
                if bits >> i & 1 == 1 {
                    s.insert(v(i));
                }
            }
            assert!(lossy_is_sound(&cnf, &encoded, &s));
        }
        // And the encoding is strictly stronger: {0, 2} models cnf but the
        // lossy model demands 2 whenever 0.
        let mut s = VarSet::empty(3);
        s.insert(v(0));
        assert!(cnf.eval(&s), "{{0}} models the original clause");
        assert!(!encoded.eval(&s), "but not the stronger encoding");
    }

    #[test]
    fn paper_figure2_lossy_first() {
        // The four non-graph clauses of Figure 2 under (i'=1, j'=1) become
        // [A◁I] ⇒ [A.m()] etc. Using indices: A◁I=0, I.m=1, A.m=2.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([v(0), v(1)], [v(2)]));
        let order = VarOrder::natural(3);
        let e = lossy_encode(&cnf, &order, LossyPick::FirstFirst);
        assert_eq!(e.clauses(), &[Clause::edge(v(0), v(2))]);
        assert!(e.clauses().iter().all(Clause::is_graph_constraint));
    }
}
