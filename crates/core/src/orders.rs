//! Variable-order heuristics for `MSA_<` and GBR.
//!
//! Theorem 4.5 of the paper guarantees locally minimal solutions for graph
//! constraints only "if we pick `<` well". The progression wants early
//! variables to pull in *few* dependencies: entry `k+1` is the closure of
//! the `<`-least uncovered variable, so ordering variables by ascending
//! dependency-closure size keeps progression entries small and the binary
//! search informative. (In the worst order — a chain's root first — the
//! progression collapses to `[D₀, everything]` and nothing is learned.)

use crate::DepGraph;
use lbr_logic::{CdclEngine, ClauseShape, Cnf, Lit, Var, VarActivity, VarOrder};

/// Orders variables by ascending size of their dependency closure, computed
/// over the *edge-shaped* clauses of `cnf` (general clauses do not pin a
/// unique dependency and are ignored by the heuristic). Ties break by
/// variable index.
///
/// This puts sinks (items that depend on nothing) first and roots with deep
/// dependency cones last, which is the "well picked" order Theorem 4.5
/// wants.
///
/// # Examples
///
/// ```
/// use lbr_core::closure_size_order;
/// use lbr_logic::{Clause, Cnf, Var};
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause(Clause::edge(Var::new(0), Var::new(1))); // 0 needs 1
/// cnf.add_clause(Clause::edge(Var::new(1), Var::new(2))); // 1 needs 2
/// let order = closure_size_order(&cnf);
/// // 2 pulls nothing, 1 pulls {2}, 0 pulls {1,2}.
/// assert!(order.lt(Var::new(2), Var::new(1)));
/// assert!(order.lt(Var::new(1), Var::new(0)));
/// ```
pub fn closure_size_order(cnf: &Cnf) -> VarOrder {
    let n = cnf.num_vars();
    let sizes = closure_sizes(cnf);
    VarOrder::by_key(n, |v| (sizes[v.index()], v.index()))
}

/// The size of each variable's transitive dependency closure (including
/// itself) over the edge-shaped clauses of `cnf`.
pub fn closure_sizes(cnf: &Cnf) -> Vec<u32> {
    let n = cnf.num_vars();
    let mut graph = DepGraph::new(n);
    for c in cnf.clauses() {
        if let ClauseShape::Edge { from, to } = c.shape() {
            graph.add_edge(from, to);
        }
    }
    closure_sizes_of_graph(&graph)
}

/// The size of each node's transitive closure (including itself).
pub fn closure_sizes_of_graph(graph: &DepGraph) -> Vec<u32> {
    let n = graph.len();
    let sccs = graph.sccs(); // dependencies first
    let mut scc_of = vec![usize::MAX; n];
    for (i, scc) in sccs.iter().enumerate() {
        for &v in scc {
            scc_of[v.index()] = i;
        }
    }
    // Bottom-up closure bitsets per SCC, over SCC indices.
    let words = sccs.len().div_ceil(64);
    let mut closures: Vec<Vec<u64>> = vec![vec![0; words]; sccs.len()];
    let mut member_counts = vec![0u32; sccs.len()];
    for (i, scc) in sccs.iter().enumerate() {
        closures[i][i / 64] |= 1 << (i % 64);
        for &v in scc {
            for &succ in graph.successors(v) {
                let j = scc_of[succ.index()];
                if j != i {
                    debug_assert!(j < i, "sccs must be in dependency order");
                    let (head, tail) = closures.split_at_mut(i);
                    for (w, o) in tail[0].iter_mut().zip(&head[j]) {
                        *w |= o;
                    }
                }
            }
        }
    }
    for (i, closure) in closures.iter().enumerate() {
        let mut count = 0u32;
        for (wi, w) in closure.iter().enumerate() {
            let mut bits = *w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                count += sccs[wi * 64 + b].len() as u32;
            }
        }
        member_counts[i] = count;
    }
    (0..n).map(|v| member_counts[scc_of[v]]).collect()
}

/// The order variables were created in (identity permutation) — a poor
/// choice for chains, kept for ablations.
pub fn natural_order(cnf: &Cnf) -> VarOrder {
    VarOrder::natural(cnf.num_vars())
}

/// Refines [`closure_size_order`] with CDCL conflict-activity statistics:
/// within one closure-size class, variables that participated in more
/// recent conflicts come first. The intuition is that conflict-heavy
/// variables sit on the constrained core of the model, so pulling them
/// into early progression entries makes the binary search learn about the
/// hard part of the search space sooner.
///
/// With flat (all-zero) activity this is exactly [`closure_size_order`],
/// so the order degrades gracefully on conflict-free (Horn-like) models.
/// The result is a deterministic function of `(cnf, activity)`.
pub fn activity_order(cnf: &Cnf, activity: &VarActivity) -> VarOrder {
    let n = cnf.num_vars();
    let sizes = closure_sizes(cnf);
    let ranks = activity.ranks_descending();
    VarOrder::by_key(n, |v| {
        let i = v.index();
        (sizes[i], ranks.get(i).copied().unwrap_or(u32::MAX), i)
    })
}

/// Harvests conflict-activity statistics from `cnf` with a bounded,
/// deterministic CDCL probe — **zero predicate calls**, pure solver work.
///
/// One baseline solve warms the engine, then the `probes` variables with
/// the deepest dependency closures are each assumed true in turn; general
/// clauses with negative literals conflict under such assumptions, and
/// every conflict bumps the variables resolved through. On purely
/// edge-shaped (conflict-free) models the returned activity is flat and
/// [`activity_order`] falls back to [`closure_size_order`].
pub fn probe_activity(cnf: &Cnf, probes: usize) -> VarActivity {
    let n = cnf.num_vars();
    let mut engine = CdclEngine::new(cnf, n);
    let order = closure_size_order(cnf);
    engine.solve(&order, &[]);
    let mut deepest: Vec<usize> = (0..n).collect();
    let sizes = closure_sizes(cnf);
    deepest.sort_by_key(|&i| (std::cmp::Reverse(sizes[i]), i));
    for &i in deepest.iter().take(probes) {
        engine.solve(&order, &[Lit::pos(Var::new(i as u32))]);
    }
    engine.activity().clone()
}

/// Orders variables by descending *history weight* — e.g. how often each
/// variable appeared in committed solutions or learned sets of earlier
/// reduction runs (harvested from the persistent probe cache) — breaking
/// ties by ascending closure size, then index. Variables that history says
/// are likely required surface in early progression entries, so the binary
/// search localizes them in fewer probes.
///
/// Missing weights (short slice) count as zero; with all-zero weights this
/// is exactly [`closure_size_order`].
pub fn history_order(cnf: &Cnf, weights: &[u64]) -> VarOrder {
    let n = cnf.num_vars();
    let sizes = closure_sizes(cnf);
    VarOrder::by_key(n, |v| {
        let i = v.index();
        let w = weights.get(i).copied().unwrap_or(0);
        (std::cmp::Reverse(w), sizes[i], i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_logic::{Clause, Var};

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn chain_sizes() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        cnf.add_clause(Clause::edge(v(2), v(3)));
        assert_eq!(closure_sizes(&cnf), vec![4, 3, 2, 1]);
    }

    #[test]
    fn cycle_counts_whole_scc() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(1), v(0)));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        // {0,1} is an SCC depending on {2}.
        assert_eq!(closure_sizes(&cnf), vec![3, 3, 1]);
    }

    #[test]
    fn diamond() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3.
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(0), v(2)));
        cnf.add_clause(Clause::edge(v(1), v(3)));
        cnf.add_clause(Clause::edge(v(2), v(3)));
        assert_eq!(closure_sizes(&cnf), vec![4, 2, 2, 1]);
    }

    #[test]
    fn general_clauses_ignored() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([v(0), v(1)], [v(2)]));
        assert_eq!(closure_sizes(&cnf), vec![1, 1, 1]);
    }

    #[test]
    fn order_is_sinks_first() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        let order = closure_size_order(&cnf);
        let perm: Vec<Var> = order.iter().collect();
        assert_eq!(perm, vec![v(2), v(1), v(0)]);
    }

    #[test]
    fn activity_order_with_flat_activity_matches_closure_order() {
        let mut cnf = Cnf::new(5);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        let flat = VarActivity::new(5);
        let learned = activity_order(&cnf, &flat);
        let baseline = closure_size_order(&cnf);
        assert_eq!(
            learned.iter().collect::<Vec<_>>(),
            baseline.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn activity_order_breaks_closure_ties_by_activity() {
        // 0..=3 all have closure size 1; bump 2 then 3, so within the tie
        // class the order is 2, 3 (most active first), then 0, 1 by index.
        let cnf = Cnf::new(4);
        let mut act = VarActivity::new(4);
        act.bump(v(3));
        act.bump(v(2));
        act.bump(v(2));
        let order = activity_order(&cnf, &act);
        assert_eq!(
            order.iter().collect::<Vec<_>>(),
            vec![v(2), v(3), v(0), v(1)]
        );
    }

    #[test]
    fn probe_activity_is_deterministic_and_finds_conflicts() {
        // Deciding ¬0 propagates 1 (from 0∨1) and then both 2 and ¬2 — a
        // conflict below the assumption level, which conflict analysis
        // resolves (bumping activity) rather than refuting outright.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::new(vec![Lit::pos(v(0)), Lit::pos(v(1))]));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(1)), Lit::neg(v(2))]));
        let a = probe_activity(&cnf, 2);
        let b = probe_activity(&cnf, 2);
        assert!((0..3).all(|i| a.score(v(i)) == b.score(v(i))));
        assert!(
            (0..3).any(|i| a.score(v(i)) > 0.0),
            "the contradictory probe must bump activity"
        );
        // And the derived orders are identical across calls.
        let oa = activity_order(&cnf, &a);
        let ob = activity_order(&cnf, &b);
        assert_eq!(oa.iter().collect::<Vec<_>>(), ob.iter().collect::<Vec<_>>());
    }

    #[test]
    fn probe_activity_is_flat_on_edge_models() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        let act = probe_activity(&cnf, 4);
        assert!((0..4).all(|i| act.score(v(i)) == 0.0));
    }

    #[test]
    fn history_order_with_zero_weights_matches_closure_order() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        let order = history_order(&cnf, &[]);
        let baseline = closure_size_order(&cnf);
        assert_eq!(
            order.iter().collect::<Vec<_>>(),
            baseline.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn history_order_puts_heavy_variables_first() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        let order = history_order(&cnf, &[0, 0, 0, 7]);
        assert_eq!(order.iter().next(), Some(v(3)));
        // The rest keep the closure-size order: sinks 1, 2 before root 0.
        assert_eq!(
            order.iter().collect::<Vec<_>>(),
            vec![v(3), v(1), v(2), v(0)]
        );
    }

    #[test]
    fn wide_graph_sizes() {
        // Star: 0 depends on 1..=100.
        let mut cnf = Cnf::new(101);
        for i in 1..=100u32 {
            cnf.add_clause(Clause::edge(v(0), v(i)));
        }
        let sizes = closure_sizes(&cnf);
        assert_eq!(sizes[0], 101);
        assert!(sizes[1..].iter().all(|&s| s == 1));
    }
}
