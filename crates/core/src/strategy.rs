//! The open strategy seam: [`ReductionStrategy`] + [`StrategyRegistry`].
//!
//! The paper's evaluation (§6) is a *strategy comparison* — GBR against
//! J-Reduce, lossy encodings, and ddmin — and this reproduction keeps
//! growing the comparison (HDD, transformation passes, trace-guided
//! modes). A closed enum made every addition a six-crate edit: the
//! session builder, the pipeline dispatch, daemon job specs, cluster
//! jobs, fuzz progressions, and the eval/bench name tables all pattern-
//! matched on it. This module replaces the enum with an open trait:
//!
//! * a strategy is a value implementing [`ReductionStrategy`] — it owns
//!   its [`name`](ReductionStrategy::name), its capability flags
//!   ([`StrategyCaps`]), and its run logic, and it is generic over the
//!   input format,
//! * a [`StrategyRegistry`] maps names (plus historical aliases) to
//!   strategies, so every layer that used to spell an enum variant now
//!   looks a string up — one registration serves all six crates,
//! * the shared run vocabulary ([`RunOptions`], [`OrderChoice`],
//!   [`ServiceHooks`], [`StrategyOutput`], [`PipelineError`]) lives here
//!   so that both the trait and its callers can be format- and
//!   crate-agnostic.
//!
//! The report assembler (label suffixes like `+cdcl`), the session
//! builder, and the entry points stay in `lbr-jreduce`; they are thin
//! shims over this seam.

use crate::binary::BinaryReductionError;
use crate::concurrent::{ProbeCache, ProbeDistributor};
use crate::gbr::{EngineChoice, GbrCheckpoint, GbrError, PropagationMode};
use crate::input::{Input, InputOracle, ModelStats};
use crate::stats::ProbeStats;
use crate::trace::ReductionTrace;
use std::collections::HashMap;
use std::sync::Arc;

/// Which GBR variable order a logical run uses. Strategies that do not
/// run GBR over the closure-size order — including the natural-order
/// ablation, which *is* an order ablation — ignore this knob.
///
/// Unlike the other [`RunOptions`] knobs, a non-default order choice *is*
/// allowed to change what a run computes (a better order finds smaller
/// solutions in fewer probes); each choice remains bit-identical across
/// repeats, thread counts, and the other knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderChoice {
    /// The closure-size order Theorem 4.5 wants (the historical default).
    #[default]
    Baseline,
    /// The closure-size order refined by conflict-activity statistics from
    /// a bounded, deterministic CDCL probe of the dependency model (zero
    /// predicate calls; see [`crate::activity_order`]).
    Learned,
    /// A fixed three-member portfolio — baseline, activity-learned, and
    /// cache-history orders — raced over one shared probe scheduler, the
    /// smallest solution committed with the lowest portfolio index winning
    /// ties (see [`crate::generalized_binary_reduction_portfolio`]).
    Portfolio,
}

/// Performance knobs for a reduction run. They change how fast a run is,
/// never what it computes: results, predicate-call counts, and traces are
/// identical across all settings. (The one documented exception is
/// [`order`](Self::order), which may trade extra probes for a smaller
/// result — still deterministically.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// How GBR propagates the dependency model (incremental watched-literal
    /// engine vs the scan-based baseline).
    pub propagation: PropagationMode,
    /// Whether the oracle memoizes probe outcomes by candidate subset, so
    /// repeated probes never re-run the tool.
    pub memoize: bool,
    /// Intra-run probe parallelism. `1` (the default) probes sequentially.
    /// With `n > 1`, strategies whose [`StrategyCaps::speculative`] flag is
    /// set speculate on the binary search's pending probe with `n`-way
    /// parallel tool runs, and the per-error sweep runs up to `n` error
    /// searches concurrently — both with bit-identical results and
    /// identical logical call counts. The other strategies ignore the knob
    /// (Binary Reduction's closure sweep and ddmin consume each probe
    /// result before choosing the next candidate, so there is no
    /// pending-probe tree to speculate on).
    pub probe_threads: usize,
    /// Emulated latency of one tool invocation, in microseconds (default
    /// `0`: no emulation). The paper's probes are ≈33 s subprocess
    /// invocations (decompile + recompile) whose cost is dominated by
    /// process launch and I/O, not CPU — the regime speculative probing
    /// targets. The in-process model probes of this reproduction finish in
    /// microseconds of pure CPU instead, so on a single core speculation
    /// can only add overhead. A nonzero latency sleeps that long inside
    /// every probe that actually runs the tool (memoized repeats stay
    /// free), restoring the latency-bound regime for wall-clock
    /// measurements. Results, call counts, traces and modeled times are
    /// unaffected.
    pub probe_latency_micros: u64,
    /// Which complete-search solver backs the MSA computations of the
    /// GBR-based logical strategies (DPLL vs CDCL with learned clauses).
    /// Bit-identical results; only solver effort differs. Requires
    /// [`PropagationMode::Incremental`] to take effect (the legacy scan
    /// has no persistent engine).
    pub engine: EngineChoice,
    /// Which GBR variable order a closure-size logical run uses (see
    /// [`OrderChoice`]). Non-default choices suffix the report's strategy
    /// name (`+order-learned`, `+order-portfolio`).
    pub order: OrderChoice,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            propagation: PropagationMode::default(),
            memoize: true,
            probe_threads: 1,
            probe_latency_micros: 0,
            engine: EngineChoice::default(),
            order: OrderChoice::default(),
        }
    }
}

impl RunOptions {
    /// The pre-engine configuration: scan-based propagation, no memo. Used
    /// as the measurable baseline for the performance comparison.
    pub fn legacy() -> Self {
        RunOptions {
            propagation: PropagationMode::LegacyScan,
            memoize: false,
            probe_threads: 1,
            probe_latency_micros: 0,
            engine: EngineChoice::Dpll,
            order: OrderChoice::Baseline,
        }
    }
}

/// Long-running-service hooks for a reduction run: an external probe
/// cache, cooperative cancellation, and checkpoint/resume. The default
/// value is inert. Strategies whose [`StrategyCaps::resumable`] flag is
/// unset ignore the hooks (their loops have no resumable snapshot or
/// pending-probe frontier).
///
/// All four hooks preserve the pipeline's determinism contract:
///
/// * `cache` sits beneath every per-run counter — a hit replaces only the
///   tool invocation, so verdicts, sizes, call counts, and traces are
///   bit-identical whether it is cold, warm, or absent.
/// * `cancel`/`checkpoint`/`resume` snapshot and restore the GBR loop
///   between probes; a resumed run converges to the same solution as an
///   uninterrupted one (its *trace* covers only the probes demanded after
///   the resume point — replays of the interrupted iteration's tail,
///   which a warm cache answers without tool runs).
#[derive(Default)]
pub struct ServiceHooks<'h> {
    /// Probe cache shared across runs of the *same* program + oracle
    /// (callers must namespace keys; the keep-set alone is not unique).
    pub cache: Option<&'h dyn ProbeCache>,
    /// Polled between probes; `true` aborts with
    /// [`PipelineError::Gbr`]([`GbrError::Cancelled`]).
    pub cancel: Option<&'h (dyn Fn() -> bool + Sync)>,
    /// Invoked with a resumable snapshot after every GBR iteration.
    pub checkpoint: Option<&'h mut dyn FnMut(&GbrCheckpoint)>,
    /// Continue a previous run from its last checkpoint.
    pub resume: Option<GbrCheckpoint>,
    /// Distributes the run's speculative probe frontier to external
    /// evaluators (the cluster's worker nodes): GBR consumes the
    /// distributor's [`VerdictSource`](crate::VerdictSource) instead
    /// of the local probe scheduler. Results stay bit-identical — the
    /// driver demands the exact sequential probe order either way. A
    /// [`OrderChoice::Portfolio`] run ignores the distributor (the race
    /// shares one local scheduler across its members).
    pub distributor: Option<&'h dyn ProbeDistributor>,
}

impl std::fmt::Debug for ServiceHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHooks")
            .field("cache", &self.cache.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("checkpoint", &self.checkpoint.is_some())
            .field("resume", &self.resume)
            .field("distributor", &self.distributor.is_some())
            .finish()
    }
}

/// Why a pipeline run failed.
#[derive(Debug)]
pub enum PipelineError {
    /// The input does not trigger the tool's bugs.
    NotFailing,
    /// The requested strategy name is not in the registry.
    UnknownStrategy(String),
    /// The input does not verify, so no model can be built (the
    /// frontend's message).
    Model(String),
    /// GBR failed (see [`GbrError`]).
    Gbr(GbrError),
    /// Binary Reduction failed.
    Binary(BinaryReductionError),
    /// The lossy encoding was contradictory (forbidden required items).
    LossyContradiction,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::NotFailing => write!(f, "input does not trigger the tool's bugs"),
            PipelineError::UnknownStrategy(name) => write!(f, "unknown strategy {name:?}"),
            PipelineError::Model(e) => write!(f, "{e}"),
            PipelineError::Gbr(e) => write!(f, "gbr: {e}"),
            PipelineError::Binary(e) => write!(f, "binary reduction: {e}"),
            PipelineError::LossyContradiction => write!(f, "lossy encoding is contradictory"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<GbrError> for PipelineError {
    fn from(e: GbrError) -> Self {
        PipelineError::Gbr(e)
    }
}

impl From<BinaryReductionError> for PipelineError {
    fn from(e: BinaryReductionError) -> Self {
        PipelineError::Binary(e)
    }
}

/// What a strategy hands back to the report assembler.
pub struct StrategyOutput<I> {
    /// The reduced input.
    pub reduced: I,
    /// Black-box predicate invocations (memo hits excluded, cache hits
    /// included — a cross-run cache hit replaces the tool only).
    pub calls: u64,
    /// The reduction-over-time trace.
    pub trace: ReductionTrace,
    /// Model statistics, when the strategy built the fine logical model.
    pub model_stats: Option<ModelStats>,
    /// Unified probe accounting (useful/speculative/memo totals).
    pub probe_stats: ProbeStats,
}

/// What a strategy can do — surfaced by `reduce --list-strategies` and
/// the daemon's `stats` so clients stop hardcoding strategy strings, and
/// used by the daemon to decide which jobs get the cache/checkpoint/
/// resume service path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StrategyCaps {
    /// Honors every [`ServiceHooks`] field: external probe cache,
    /// cancellation, checkpoint/resume, and the cluster's probe
    /// distributor.
    pub resumable: bool,
    /// Honors `probe_threads > 1` with speculative parallel probing
    /// (bit-identical results, shorter wall time).
    pub speculative: bool,
    /// The per-error sweep can drive this strategy's search once per
    /// distinct baseline error.
    pub per_error: bool,
    /// Runs a complete-search MSA engine, so [`RunOptions::engine`]
    /// selects its solver (and `+cdcl` suffixes the report label).
    pub honors_engine: bool,
    /// Honors [`RunOptions::order`] (and `+order-*` suffixes the label).
    pub honors_order: bool,
    /// Builds the fine-grained logical model (as opposed to the coarse
    /// unit graph only).
    pub uses_model: bool,
}

/// One reduction strategy, generic over the input format. Implementations
/// must be deterministic: same input, oracle, and options → bit-identical
/// reduced bytes, call counts, and traces.
pub trait ReductionStrategy<I: Input>: Send + Sync {
    /// The canonical registry name (e.g. `"logical/greedy"`, `"hdd"`).
    /// The single source of truth for report rows, eval tables, job
    /// specs, and baselines.
    fn name(&self) -> &str;

    /// Capability flags.
    fn caps(&self) -> StrategyCaps;

    /// The report label: the canonical name, suffixed for every
    /// non-default option the strategy actually honors, so rows from
    /// different configurations stay distinguishable in comparisons.
    fn label(&self, options: &RunOptions) -> String {
        let caps = self.caps();
        let mut name = self.name().to_owned();
        if caps.honors_engine
            && options.propagation == PropagationMode::Incremental
            && options.engine == EngineChoice::Cdcl
        {
            name.push_str("+cdcl");
        }
        if caps.honors_order {
            match options.order {
                OrderChoice::Baseline => {}
                OrderChoice::Learned => name.push_str("+order-learned"),
                OrderChoice::Portfolio => name.push_str("+order-portfolio"),
            }
        }
        name
    }

    /// Runs the strategy. The caller has already verified the input
    /// fails; hooks a strategy does not support (per its caps) are
    /// ignored.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    fn run(
        &self,
        input: &I,
        oracle: &dyn InputOracle<I>,
        cost_per_call_secs: f64,
        options: &RunOptions,
        hooks: ServiceHooks<'_>,
    ) -> Result<StrategyOutput<I>, PipelineError>;
}

/// A name → strategy map with alias support. Lookup accepts canonical
/// names and registered aliases; enumeration yields canonical names in
/// registration order (the order eval tables and `--list-strategies`
/// present).
pub struct StrategyRegistry<I: Input> {
    entries: Vec<Arc<dyn ReductionStrategy<I>>>,
    by_name: HashMap<String, usize>,
}

impl<I: Input> Default for StrategyRegistry<I> {
    fn default() -> Self {
        StrategyRegistry::new()
    }
}

impl<I: Input> StrategyRegistry<I> {
    /// An empty registry.
    pub fn new() -> Self {
        StrategyRegistry {
            entries: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Registers a strategy under its canonical [`name`]. Re-registering
    /// a name replaces the lookup target (latest wins) but keeps the
    /// original enumeration slot.
    ///
    /// [`name`]: ReductionStrategy::name
    pub fn register(&mut self, strategy: Arc<dyn ReductionStrategy<I>>) {
        let name = strategy.name().to_owned();
        let slot = self.entries.len();
        self.entries.push(strategy);
        self.by_name.insert(name, slot);
    }

    /// Registers `alias` as an alternative lookup name for the strategy
    /// canonically named `canonical`. No-op if `canonical` is unknown.
    pub fn alias(&mut self, alias: &str, canonical: &str) {
        if let Some(&slot) = self.by_name.get(canonical) {
            self.by_name.insert(alias.to_owned(), slot);
        }
    }

    /// Looks a strategy up by canonical name or alias.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn ReductionStrategy<I>>> {
        self.by_name.get(name).map(|&slot| &self.entries[slot])
    }

    /// Whether `name` resolves (canonically or via an alias).
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Canonical names in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|s| s.name().to_owned()).collect()
    }

    /// Strategies in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn ReductionStrategy<I>>> {
        self.entries.iter()
    }

    /// Number of registered strategies (aliases excluded).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no strategies are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{CoarseModel, InputModel};
    use crate::DepGraph;
    use lbr_logic::{Cnf, VarSet};
    use std::collections::BTreeSet;

    #[derive(Debug, Clone, PartialEq)]
    struct Mini(Vec<u8>);

    impl Input for Mini {
        const FORMAT: &'static str = "mini";

        fn model(&self) -> Result<InputModel<'_, Self>, String> {
            let n = self.0.len();
            Ok(InputModel {
                cnf: Cnf::new(n),
                stats: ModelStats {
                    items: n,
                    clauses: 0,
                    graph_fraction: 1.0,
                },
                levels: vec![0; n],
                materialize: Box::new(move |keep: &VarSet| {
                    Mini(keep.iter().map(|v| self.0[v.index()]).collect())
                }),
            })
        }

        fn coarse_model(&self) -> CoarseModel<'_, Self> {
            CoarseModel {
                graph: DepGraph::new(self.0.len()),
                materialize: Box::new(move |keep: &VarSet| {
                    Mini(keep.iter().map(|v| self.0[v.index()]).collect())
                }),
            }
        }

        fn to_bytes(&self) -> Vec<u8> {
            self.0.clone()
        }

        fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
            Ok(Mini(bytes.to_vec()))
        }

        fn byte_size(&self) -> usize {
            self.0.len()
        }

        fn unit_count(&self) -> usize {
            self.0.len()
        }

        fn validate(&self) -> Vec<String> {
            Vec::new()
        }
    }

    struct Identity;

    impl ReductionStrategy<Mini> for Identity {
        fn name(&self) -> &str {
            "identity"
        }

        fn caps(&self) -> StrategyCaps {
            StrategyCaps {
                honors_engine: true,
                ..StrategyCaps::default()
            }
        }

        fn run(
            &self,
            input: &Mini,
            _oracle: &dyn InputOracle<Mini>,
            _cost: f64,
            _options: &RunOptions,
            _hooks: ServiceHooks<'_>,
        ) -> Result<StrategyOutput<Mini>, PipelineError> {
            Ok(StrategyOutput {
                reduced: input.clone(),
                calls: 0,
                trace: ReductionTrace::new(),
                model_stats: None,
                probe_stats: ProbeStats::sequential(0, 0, 0),
            })
        }
    }

    struct NeverFails {
        baseline: BTreeSet<String>,
    }

    impl InputOracle<Mini> for NeverFails {
        fn baseline(&self) -> &BTreeSet<String> {
            &self.baseline
        }

        fn errors(&self, _input: &Mini) -> BTreeSet<String> {
            self.baseline.clone()
        }
    }

    #[test]
    fn registry_resolves_names_and_aliases() {
        let mut registry: StrategyRegistry<Mini> = StrategyRegistry::new();
        registry.register(Arc::new(Identity));
        registry.alias("id", "identity");
        registry.alias("dangling", "no-such");
        assert!(registry.contains("identity"));
        assert!(registry.contains("id"));
        assert!(!registry.contains("dangling"));
        assert_eq!(registry.names(), ["identity"]);
        assert_eq!(registry.len(), 1);
        assert_eq!(
            registry.get("id").unwrap().name(),
            registry.get("identity").unwrap().name()
        );
    }

    #[test]
    fn default_label_suffixes_follow_caps() {
        let strategy = Identity;
        assert_eq!(strategy.label(&RunOptions::default()), "identity");
        let cdcl = RunOptions {
            engine: EngineChoice::Cdcl,
            ..RunOptions::default()
        };
        assert_eq!(strategy.label(&cdcl), "identity+cdcl");
        // Legacy propagation has no persistent engine: no suffix.
        let legacy_cdcl = RunOptions {
            engine: EngineChoice::Cdcl,
            ..RunOptions::legacy()
        };
        assert_eq!(strategy.label(&legacy_cdcl), "identity");
        // Order suffixes are gated on the honors_order cap (unset here).
        let portfolio = RunOptions {
            order: OrderChoice::Portfolio,
            ..RunOptions::default()
        };
        assert_eq!(strategy.label(&portfolio), "identity");
    }

    #[test]
    fn strategies_run_through_the_trait_object() {
        let mut registry: StrategyRegistry<Mini> = StrategyRegistry::new();
        registry.register(Arc::new(Identity));
        let input = Mini(vec![1, 2, 3]);
        let oracle = NeverFails {
            baseline: ["boom".to_owned()].into_iter().collect(),
        };
        let out = registry
            .get("identity")
            .unwrap()
            .run(
                &input,
                &oracle,
                0.0,
                &RunOptions::default(),
                ServiceHooks::default(),
            )
            .unwrap();
        assert_eq!(out.reduced, input);
    }
}
