//! Deterministic fault injection for cache layers.
//!
//! The cache correctness contract — a lost entry only ever costs a tool
//! re-run, never a wrong result — is the kind of claim that rots
//! silently. A [`FaultPlan`] makes it testable: with probability
//! [`rate`](FaultPlan::rate) each cache operation *pretends* the disk
//! misbehaved (a lookup degrades to a miss, a store is dropped), drawing
//! from its own seed-deterministic stream so a fuzz run's faults replay
//! exactly. The differential harness runs every case against a
//! fault-injected cache and asserts bit-identical results.

use lbr_prng::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A deterministic plan for injecting cache-layer I/O faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a single cache operation faults.
    pub rate: f64,
    /// Seed of the fault stream (independent of workload seeds).
    pub seed: u64,
}

struct FaultState {
    rate: f64,
    rng: SplitMix64,
}

/// The armed state of a [`FaultPlan`]: a seed-deterministic coin that
/// cache layers flip once per operation. Thread-safe; the stream order is
/// the order in which operations reach [`fire`](FaultInjector::fire).
#[derive(Default)]
pub struct FaultInjector {
    state: Mutex<Option<FaultState>>,
    injected: AtomicU64,
}

impl FaultInjector {
    /// A disarmed injector (every [`fire`](Self::fire) returns `false`).
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Arms (or re-arms) the injector with `plan`. A rate of `0` disarms
    /// it and resets the stream.
    pub fn arm(&self, plan: FaultPlan) {
        let mut state = self.state.lock().expect("fault lock");
        *state = if plan.rate > 0.0 {
            Some(FaultState {
                rate: plan.rate,
                rng: SplitMix64::seed_from_u64(plan.seed),
            })
        } else {
            None
        };
    }

    /// Draws from the fault stream; `true` means the current operation
    /// must behave as if the disk failed.
    pub fn fire(&self) -> bool {
        let mut state = self.state.lock().expect("fault lock");
        match state.as_mut() {
            Some(s) => {
                let fired = s.rng.gen_bool(s.rate);
                if fired {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                }
                fired
            }
            None => false,
        }
    }

    /// How many operations have been faulted so far — lets tests confirm
    /// that the fault path was actually exercised.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_fires() {
        let inj = FaultInjector::new();
        assert!((0..32).all(|_| !inj.fire()));
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn stream_is_seed_deterministic() {
        let draw = |seed: u64| {
            let inj = FaultInjector::new();
            inj.arm(FaultPlan { rate: 0.5, seed });
            (0..64).map(|_| inj.fire()).collect::<Vec<bool>>()
        };
        assert_eq!(draw(7), draw(7), "same seed, same fault pattern");
        assert_ne!(draw(7), draw(8), "different seeds should diverge");
    }

    #[test]
    fn rate_zero_disarms() {
        let inj = FaultInjector::new();
        inj.arm(FaultPlan { rate: 1.0, seed: 3 });
        assert!(inj.fire());
        inj.arm(FaultPlan { rate: 0.0, seed: 3 });
        assert!(!inj.fire());
        assert_eq!(inj.injected(), 1);
    }
}
