//! The format-agnostic frontend interface: what a reducible input must
//! provide for the IRP machinery (Definition 4.1) to reduce it.
//!
//! The paper's claim is that the constraint-generation recipe — "the
//! verifier *is* the constraint generator" (§3, FJI) — works for any
//! input format whose validity is checkable. This module pins that claim
//! as a trait: a frontend supplies items mapped to logic variables, a CNF
//! dependency model, a coarse dependency graph (the J-Reduce baseline's
//! view), serialization, a validity check, and a byte-size cost. The
//! reduction pipeline, daemon, cluster, fuzzer, and eval tables are all
//! generic over [`Input`], so every frontend gets every harness for free.

use crate::graph::DepGraph;
use lbr_logic::{Cnf, VarSet};
use std::collections::BTreeSet;

/// Model-size statistics (the paper's "2.9k reducible items, 8.7k
/// clauses, 97.5% edges").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelStats {
    /// Number of reducible items (variables).
    pub items: usize,
    /// Number of CNF clauses.
    pub clauses: usize,
    /// Fraction of clauses that are graph constraints.
    pub graph_fraction: f64,
}

/// A frontend's fine-grained logical model: the CNF dependency
/// constraints over item variables plus the solution applier.
///
/// `materialize` maps a keep-set (a satisfying assignment of `cnf`) back
/// to a concrete input; Theorem 3.1's contract is that the result is
/// valid whenever the keep-set satisfies the model.
pub struct InputModel<'i, I> {
    /// The dependency constraints in CNF (one variable per item).
    pub cnf: Cnf,
    /// Model-size statistics for reports.
    pub stats: ModelStats,
    /// Containment depth of each item variable (index = variable index):
    /// `0` for top-level units (classes, functions), increasing with
    /// nesting. Hierarchical strategies (HDD, transformation passes)
    /// sweep the tree level by level through this map; flat strategies
    /// ignore it. A frontend without hierarchy reports all zeros.
    pub levels: Vec<u8>,
    /// Keep-set → reduced input.
    pub materialize: Box<dyn Fn(&VarSet) -> I + Sync + 'i>,
}

/// A frontend's coarse dependency model: one node per top-level unit
/// (class, function), as J-Reduce's step 1 builds it. Closures of this
/// graph are the only sub-inputs the baseline can produce.
pub struct CoarseModel<'i, I> {
    /// The unit-mention dependency graph.
    pub graph: DepGraph,
    /// Keep-set (over graph nodes) → reduced input.
    pub materialize: Box<dyn Fn(&VarSet) -> I + Sync + 'i>,
}

/// A reducible input format.
///
/// Implementations must keep two determinism contracts:
///
/// * `model()` and `coarse_model()` are pure functions of the input —
///   same input, same variable numbering, same clause order — so that
///   reduction results are bit-identical across runs and machines.
/// * `to_bytes` / `from_bytes` round-trip exactly:
///   `from_bytes(&input.to_bytes()) == Ok(input)`.
pub trait Input: Clone + PartialEq + std::fmt::Debug + Send + Sync + Sized + 'static {
    /// The format tag used in job schemas, CLI flags, and eval tables
    /// (e.g. `"classfile"`, `"stackvm"`).
    const FORMAT: &'static str;

    /// Builds the fine-grained logical dependency model.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the input itself does not
    /// verify — like the paper, which dropped benchmarks that did not
    /// type check.
    fn model(&self) -> Result<InputModel<'_, Self>, String>;

    /// Builds the coarse unit-granularity dependency graph (the
    /// J-Reduce baseline's model).
    fn coarse_model(&self) -> CoarseModel<'_, Self>;

    /// Serializes the input to its on-disk byte format.
    fn to_bytes(&self) -> Vec<u8>;

    /// Parses the on-disk byte format.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, String>;

    /// The byte-size cost metric reduction minimizes. Monotone in the
    /// input's content; may exclude fixed container framing, so it need
    /// not equal `self.to_bytes().len()` exactly.
    fn byte_size(&self) -> usize;

    /// Number of top-level units (classes, functions) — the coarse size
    /// metric reported next to bytes.
    fn unit_count(&self) -> usize;

    /// Runs the format's verifier; an empty vector means valid.
    fn validate(&self) -> Vec<String>;
}

/// The failure-inducing tool a reduction preserves the errors of — the
/// predicate `P` of the IRP, format-agnostically.
///
/// The provided methods pin the exact semantics every frontend's oracle
/// must share (and the classfile `DecompilerOracle` has always had):
/// failing means a non-empty baseline, and preservation means every
/// baseline error is still present (supersets allowed).
pub trait InputOracle<I>: Send + Sync {
    /// The error set of the original input (computed once at
    /// construction).
    fn baseline(&self) -> &BTreeSet<String>;

    /// Runs the tool on a candidate and collects its error set.
    fn errors(&self, input: &I) -> BTreeSet<String>;

    /// Whether the original input triggers any errors at all.
    fn is_failing(&self) -> bool {
        !self.baseline().is_empty()
    }

    /// Number of distinct baseline errors.
    fn error_count(&self) -> usize {
        self.baseline().len()
    }

    /// The reduction predicate: does the candidate still trigger every
    /// baseline error?
    fn preserves_failure(&self, input: &I) -> bool {
        let errors = self.errors(input);
        self.baseline().iter().all(|e| errors.contains(e))
    }
}

/// References delegate, so generic entry points taking `&O` can hand a
/// `&dyn InputOracle<I>` to the object-safe strategy seam.
impl<I, O: InputOracle<I> + ?Sized> InputOracle<I> for &O {
    fn baseline(&self) -> &BTreeSet<String> {
        (**self).baseline()
    }

    fn errors(&self, input: &I) -> BTreeSet<String> {
        (**self).errors(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Toy(Vec<u8>);

    impl Input for Toy {
        const FORMAT: &'static str = "toy";

        fn model(&self) -> Result<InputModel<'_, Self>, String> {
            let cnf = Cnf::new(self.0.len());
            let stats = ModelStats {
                items: self.0.len(),
                clauses: 0,
                graph_fraction: 1.0,
            };
            Ok(InputModel {
                cnf,
                stats,
                levels: vec![0; self.0.len()],
                materialize: Box::new(move |keep: &VarSet| {
                    Toy(keep.iter().map(|v| self.0[v.index()]).collect())
                }),
            })
        }

        fn coarse_model(&self) -> CoarseModel<'_, Self> {
            CoarseModel {
                graph: DepGraph::new(self.0.len()),
                materialize: Box::new(move |keep: &VarSet| {
                    Toy(keep.iter().map(|v| self.0[v.index()]).collect())
                }),
            }
        }

        fn to_bytes(&self) -> Vec<u8> {
            self.0.clone()
        }

        fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
            Ok(Toy(bytes.to_vec()))
        }

        fn byte_size(&self) -> usize {
            self.0.len()
        }

        fn unit_count(&self) -> usize {
            self.0.len()
        }

        fn validate(&self) -> Vec<String> {
            Vec::new()
        }
    }

    struct ZeroOracle {
        baseline: BTreeSet<String>,
    }

    impl InputOracle<Toy> for ZeroOracle {
        fn baseline(&self) -> &BTreeSet<String> {
            &self.baseline
        }

        fn errors(&self, input: &Toy) -> BTreeSet<String> {
            input
                .0
                .iter()
                .filter(|b| **b == 0)
                .map(|_| "zero".to_owned())
                .collect()
        }
    }

    #[test]
    fn round_trip_contract() {
        let toy = Toy(vec![1, 0, 3]);
        assert_eq!(Toy::from_bytes(&toy.to_bytes()), Ok(toy.clone()));
        assert_eq!(toy.byte_size(), 3);
        assert_eq!(toy.unit_count(), 3);
        assert_eq!(Toy::FORMAT, "toy");
    }

    #[test]
    fn oracle_default_methods() {
        let toy = Toy(vec![1, 0, 3]);
        let oracle = ZeroOracle {
            baseline: [("zero".to_owned())].into_iter().collect(),
        };
        assert!(oracle.is_failing());
        assert_eq!(oracle.error_count(), 1);
        assert!(oracle.preserves_failure(&toy));
        assert!(!oracle.preserves_failure(&Toy(vec![1, 3])));
    }

    #[test]
    fn materialize_applies_keep_set() {
        let toy = Toy(vec![5, 6, 7]);
        let model = toy.model().unwrap();
        let mut keep = VarSet::empty(3);
        keep.insert(lbr_logic::Var::new(0));
        keep.insert(lbr_logic::Var::new(2));
        assert_eq!((model.materialize)(&keep), Toy(vec![5, 7]));
    }
}
