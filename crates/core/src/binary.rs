//! Binary Reduction over dependency-graph closures — the J-Reduce
//! algorithm (Kalhauge & Palsberg, ESEC/FSE 2019).
//!
//! J-Reduce's five steps: (1) map the input to its dependency graph,
//! (2) compute the closure of each node, (3) form a list of the closures,
//! (4) run a reduction algorithm on the list, (5) output the union of the
//! reduced list. Binary Reduction is the reduction algorithm of step 4: it
//! repeatedly binary-searches the shortest closure-list prefix that still
//! fails, learns that prefix's last closure, and shrinks the search space —
//! exactly the special case of GBR where all constraints are graph
//! constraints and progressions are closure lists.

use crate::{Closure, DepGraph, Predicate};
use lbr_logic::VarSet;

/// Why a Binary Reduction run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryReductionError {
    /// The predicate rejected the whole search space — `P(I)` was false or
    /// the predicate is not monotone.
    PredicateNotMonotone,
}

impl std::fmt::Display for BinaryReductionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryReductionError::PredicateNotMonotone => {
                write!(f, "predicate rejected the whole search space")
            }
        }
    }
}

impl std::error::Error for BinaryReductionError {}

/// The result of a successful Binary Reduction run.
#[derive(Debug, Clone)]
pub struct BinaryReductionOutcome {
    /// The failure-inducing dependency-closed sub-input.
    pub solution: VarSet,
    /// Main-loop iterations (closures learned).
    pub iterations: usize,
}

/// Runs Binary Reduction on the dependency graph.
///
/// Every tested sub-input is a union of transitive closures and therefore
/// valid by construction. The required nodes of the graph (and their
/// closure) are always kept.
///
/// # Errors
///
/// [`BinaryReductionError::PredicateNotMonotone`] if even the full input
/// fails the predicate.
///
/// # Examples
///
/// ```
/// use lbr_core::{binary_reduction, DepGraph};
/// use lbr_logic::{Var, VarSet};
/// let mut g = DepGraph::new(4);
/// g.add_edge(Var::new(0), Var::new(1));
/// let mut bug = |s: &VarSet| s.contains(Var::new(1));
/// let out = binary_reduction(&g, &mut bug).expect("reduces");
/// assert_eq!(out.solution.iter().collect::<Vec<_>>(), vec![Var::new(1)]);
/// ```
pub fn binary_reduction(
    graph: &DepGraph,
    predicate: &mut dyn Predicate,
) -> Result<BinaryReductionOutcome, BinaryReductionError> {
    let closures = graph.closure_list();
    let mut kept = graph.closure_of(graph.required().iter());
    // Active closures not already inside `kept`, in dependency order.
    let mut active: Vec<&Closure> = closures
        .iter()
        .filter(|c| !c.set.is_subset(&kept))
        .collect();
    let mut iterations = 0usize;

    loop {
        if predicate.test(&kept) {
            return Ok(BinaryReductionOutcome {
                solution: kept,
                iterations,
            });
        }
        if active.is_empty() {
            return Err(BinaryReductionError::PredicateNotMonotone);
        }
        // Prefix unions U_r = kept ∪ closures[0..=r]; U_{last} is the whole
        // remaining search space.
        let mut prefix_unions: Vec<VarSet> = Vec::with_capacity(active.len());
        let mut acc = kept.clone();
        for c in &active {
            acc.union_with(&c.set);
            prefix_unions.push(acc.clone());
        }
        // Binary search the least r with P(U_r). `kept` itself failed
        // (index "-1"); U at the last index is the whole remaining search
        // space, presumed true by monotonicity.
        let mut lo: isize = -1; // P false here (kept alone)
        let mut hi = active.len() - 1; // P presumed true here
        let mut hi_verified = false;
        while hi as isize - lo > 1 {
            let mid = ((lo + hi as isize) / 2) as usize;
            if predicate.test(&prefix_unions[mid]) {
                hi = mid;
                hi_verified = true;
            } else {
                lo = mid as isize;
            }
        }
        if !hi_verified && !predicate.test(&prefix_unions[hi]) {
            return Err(BinaryReductionError::PredicateNotMonotone);
        }
        let r = hi;
        // Learn: the closure at r must contribute to any failing input in
        // this search space; keep it and shrink the space to the prefix.
        kept.union_with(&active[r].set);
        active.truncate(r);
        active.retain(|c| !c.set.is_subset(&kept));
        iterations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oracle;
    use lbr_logic::Var;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn keeps_required_closure() {
        let mut g = DepGraph::new(3);
        g.add_edge(v(0), v(1));
        g.require(v(0));
        let mut bug = |_: &VarSet| true;
        let out = binary_reduction(&g, &mut bug).unwrap();
        assert!(out.solution.contains(v(0)) && out.solution.contains(v(1)));
        assert!(!out.solution.contains(v(2)));
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn finds_needed_closure() {
        // Three independent chains; bug needs the head of chain 1.
        let mut g = DepGraph::new(6);
        g.add_edge(v(0), v(1));
        g.add_edge(v(2), v(3));
        g.add_edge(v(4), v(5));
        let mut bug = |s: &VarSet| s.contains(v(2));
        let out = binary_reduction(&g, &mut bug).unwrap();
        assert!(out.solution.contains(v(2)) && out.solution.contains(v(3)));
        assert_eq!(out.solution.len(), 2);
    }

    #[test]
    fn conjunction_of_two_closures() {
        let mut g = DepGraph::new(6);
        g.add_edge(v(0), v(1));
        g.add_edge(v(2), v(3));
        g.add_edge(v(4), v(5));
        let mut bug = |s: &VarSet| s.contains(v(1)) && s.contains(v(5));
        let out = binary_reduction(&g, &mut bug).unwrap();
        assert!(out.solution.contains(v(1)) && out.solution.contains(v(5)));
        // Closure granularity can keep the heads (0 and 4) too, but must
        // drop chain 2-3 entirely.
        assert!(!out.solution.contains(v(2)) && !out.solution.contains(v(3)));
    }

    #[test]
    fn cycle_is_all_or_nothing() {
        // The paper's Section 2 class graph: the only closure containing M
        // is everything.
        let mut g = DepGraph::new(4); // M=0, A=1, B=2, I=3
        g.add_edge(v(0), v(1));
        g.add_edge(v(0), v(3));
        g.add_edge(v(1), v(3));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(3));
        g.add_edge(v(3), v(2));
        g.require(v(0));
        let mut bug = |s: &VarSet| s.contains(v(0));
        let out = binary_reduction(&g, &mut bug).unwrap();
        assert_eq!(
            out.solution.len(),
            4,
            "J-Reduce cannot reduce below class level"
        );
    }

    #[test]
    fn logarithmic_predicate_calls() {
        let n = 128;
        let mut g = DepGraph::new(n);
        // 64 independent 2-chains.
        for i in 0..64u32 {
            g.add_edge(v(2 * i), v(2 * i + 1));
        }
        let mut bug = |s: &VarSet| s.contains(v(77));
        let mut oracle = Oracle::new(&mut bug, 0.0);
        let out = binary_reduction(&g, &mut oracle).unwrap();
        assert!(out.solution.contains(v(77)));
        assert!(
            oracle.calls() <= 30,
            "expected O(log) calls, got {}",
            oracle.calls()
        );
    }

    #[test]
    fn rejecting_predicate_errors() {
        let g = DepGraph::new(2);
        let mut bug = |_: &VarSet| false;
        assert_eq!(
            binary_reduction(&g, &mut bug).unwrap_err(),
            BinaryReductionError::PredicateNotMonotone
        );
    }

    #[test]
    fn every_tested_input_is_closed() {
        let mut g = DepGraph::new(8);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(3), v(4));
        g.add_edge(v(5), v(6));
        g.require(v(7));
        let gc = g.clone();
        let mut bug = move |s: &VarSet| {
            assert!(gc.is_closed(s), "tested input not dependency-closed: {s:?}");
            s.contains(v(4))
        };
        let out = binary_reduction(&g, &mut bug).unwrap();
        assert!(out.solution.contains(v(4)) && out.solution.contains(v(7)));
    }
}
