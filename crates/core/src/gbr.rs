//! Generalized Binary Reduction (Algorithm 1 of the paper).
//!
//! GBR solves the Input Reduction Problem approximately in polynomial time.
//! It interleaves two building blocks: runs of the black-box predicate `P`
//! and computations of an approximate minimal satisfying assignment
//! ([`msa`](lbr_logic::msa)). The key data structure is the *progression* —
//! a list of disjoint variable sets every prefix of which is a valid
//! sub-input — so `P` is only ever applied to valid inputs.
//!
//! The main loop (quoting the paper): while `¬P(D₀)`, find the minimal
//! prefix `D^∪_r` of the progression that satisfies `P` (by binary search),
//! learn the set `D_r` (some element of it must be in every solution within
//! the current search space), and rebuild the progression over the smaller
//! search space `D^∪_r` with the learned clause conjoined.

use crate::concurrent::{ConcurrentPredicate, DemandKind, MemoScan, ProbeScheduler, VerdictSource};
use crate::stats::ProbeStats;
use crate::trace::ReductionTrace;
use crate::{Instance, Predicate};
use lbr_logic::{
    engine, msa_scan, CdclEngine, Clause, Cnf, Engine, Lit, MsaStrategy, SearchBackend, Var,
    VarOrder, VarSet,
};
use std::time::Instant;

/// How GBR evaluates the dependency model while building progressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PropagationMode {
    /// One persistent watched-literal [`Engine`] per reduction run: learned
    /// sets become permanent level-0 clauses, the search-space restriction
    /// and each progression prefix are pushed as assumption levels, and
    /// every MSA runs from the engine's current state. No formula is ever
    /// cloned. This is the default and produces bit-identical progressions
    /// to [`LegacyScan`](PropagationMode::LegacyScan).
    #[default]
    Incremental,
    /// The original implementation: every progression step clones a
    /// restricted CNF and re-propagates it from scratch with the scanning
    /// [`msa_scan`]. Kept as the measurable baseline and the reference the
    /// incremental mode is differentially tested against.
    LegacyScan,
}

/// Which complete-search solver backs the MSA computations inside GBR.
///
/// Only [`PropagationMode::Incremental`] consults this choice; the legacy
/// scan path has no persistent engine to attach a CDCL solver to and
/// always uses the chronological DPLL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineChoice {
    /// The recursive chronological DPLL search. The historical default.
    #[default]
    Dpll,
    /// A persistent CDCL solver sharing the run's clause set: 1UIP learned
    /// clauses accumulate across every MSA dead-end and complete search
    /// within the run, so later probes of the same hard sub-space are
    /// refuted without re-deriving the conflict. Results are bit-identical
    /// to [`EngineChoice::Dpll`] — both return the lexicographically least
    /// model under the branching order (see
    /// [`CdclEngine::solve`](lbr_logic::CdclEngine::solve)).
    Cdcl,
}

/// Configuration for [`generalized_binary_reduction`].
#[derive(Debug, Clone)]
pub struct GbrConfig {
    /// Strategy for the approximate minimal-satisfying-assignment calls.
    pub msa_strategy: MsaStrategy,
    /// Safety bound on main-loop iterations (defaults to a generous
    /// multiple of `|I|`; the paper proves at most `|I|` are needed when
    /// the predicate is monotone).
    pub max_iterations: Option<usize>,
    /// Anytime budget: stop after this many predicate invocations and
    /// return the smallest valid failing input seen so far. This is the
    /// paper's "fixed time window" scenario — "we can stop both algorithms
    /// at any point in the execution and use the smallest input until that
    /// point that preserves the error message."
    pub max_predicate_calls: Option<u64>,
    /// How the dependency model is propagated (incremental engine vs the
    /// scan-based baseline). Does not affect results, only speed.
    pub propagation: PropagationMode,
    /// Which complete-search solver backs the MSA computations. Does not
    /// affect results, only solver effort per progression.
    pub engine: EngineChoice,
}

impl Default for GbrConfig {
    fn default() -> Self {
        GbrConfig {
            msa_strategy: MsaStrategy::GreedyClosure,
            max_iterations: None,
            max_predicate_calls: None,
            propagation: PropagationMode::default(),
            engine: EngineChoice::default(),
        }
    }
}

/// Why a GBR run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GbrError {
    /// The validity model `R⁺` became unsatisfiable — the instance's
    /// assumptions (`R_I(I)` holds) were violated.
    ModelUnsatisfiable,
    /// The predicate rejected the whole search space, contradicting the
    /// monotonicity assumption (or `P(I)` was false to begin with).
    PredicateNotMonotone,
    /// The iteration safety bound was hit.
    IterationLimit,
    /// A cooperative cancellation hook fired (see [`GbrControl::cancel`]).
    /// The run stopped between probes; any checkpoint written through
    /// [`GbrControl::checkpoint`] remains valid for a later resume.
    Cancelled,
}

impl std::fmt::Display for GbrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GbrError::ModelUnsatisfiable => write!(f, "dependency model became unsatisfiable"),
            GbrError::PredicateNotMonotone => {
                write!(
                    f,
                    "predicate rejected the whole search space (not monotone, or P(I) false)"
                )
            }
            GbrError::IterationLimit => write!(f, "iteration safety bound exceeded"),
            GbrError::Cancelled => write!(f, "reduction cancelled by its control hook"),
        }
    }
}

impl std::error::Error for GbrError {}

/// A resumable snapshot of the GBR main loop, taken between iterations.
///
/// Everything else the loop needs — the progression and its prefix
/// unions — is a deterministic function of `(learned, search_space)` and
/// is rebuilt on resume, so a checkpoint is exactly the learned sets, the
/// current search space, and the anytime best. Probes re-demanded by a
/// resumed run repeat the tail of the interrupted iteration; a persistent
/// probe cache (see `ProbeCache` in the concurrent module) makes those
/// replays free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GbrCheckpoint {
    /// Completed main-loop iterations (equals `learned.len()`).
    pub iterations: usize,
    /// The learned sets `L`, in learning order.
    pub learned: Vec<VarSet>,
    /// The current search space `J` (a valid failing input by invariant).
    pub search_space: VarSet,
    /// The smallest failing input demanded so far, if any.
    pub best: Option<VarSet>,
}

/// Cooperative control hooks for a GBR run: cancellation, checkpointing,
/// and resumption. The default value is inert — `generalized_binary_
/// reduction` without hooks behaves exactly as before.
///
/// Cancellation is checked between probes (once per main-loop iteration
/// and once per binary-search step), so a pending tool invocation always
/// finishes; with the paper's ~33 s probes that bounds the cancellation
/// latency at roughly one probe.
#[derive(Default)]
pub struct GbrControl<'h> {
    /// Polled between probes; returning `true` aborts the run with
    /// [`GbrError::Cancelled`]. Deadlines are cancellation hooks that
    /// compare `Instant::now()` against a budget.
    pub cancel: Option<&'h (dyn Fn() -> bool + Sync)>,
    /// Invoked after every completed iteration with a snapshot that a
    /// later run may pass as [`resume`](GbrControl::resume).
    pub checkpoint: Option<&'h mut dyn FnMut(&GbrCheckpoint)>,
    /// Start from this snapshot instead of from scratch. The instance,
    /// order, and predicate must be the ones the checkpoint was taken
    /// with; the anytime call budget counts this attempt's probes only.
    pub resume: Option<GbrCheckpoint>,
}

impl std::fmt::Debug for GbrControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GbrControl")
            .field("cancel", &self.cancel.is_some())
            .field("checkpoint", &self.checkpoint.is_some())
            .field("resume", &self.resume)
            .finish()
    }
}

/// The result of a successful GBR run.
#[derive(Debug, Clone)]
pub struct GbrOutcome {
    /// The failure-inducing valid sub-input `D₀` (or, when the anytime
    /// budget ran out, the smallest failing input seen so far).
    pub solution: VarSet,
    /// Main-loop iterations executed (learned sets added).
    pub iterations: usize,
    /// The learned sets `L`, in learning order.
    pub learned: Vec<VarSet>,
    /// Length of each progression built (diagnostics).
    pub progression_lengths: Vec<usize>,
    /// Whether the run stopped because `max_predicate_calls` was reached
    /// (the solution is then a best-effort answer, not a converged one).
    pub budget_exhausted: bool,
}

/// Runs Generalized Binary Reduction on `(I, P, R_I)`.
///
/// `order` is the total variable order `<` that drives both `MSA_<` and the
/// progression seeds. On success the returned solution satisfies both the
/// predicate and the validity model.
///
/// # Errors
///
/// See [`GbrError`]. In particular the instance must satisfy the paper's
/// assumptions: `R_I(I)` and `P(I)` hold and `P` is monotone on valid
/// sub-inputs.
///
/// # Examples
///
/// ```
/// use lbr_core::{closure_size_order, generalized_binary_reduction, GbrConfig, Instance};
/// use lbr_logic::{Clause, Cnf, Var, VarSet};
///
/// // Model: 0 ⇒ 1. Bug needs variable 1.
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause(Clause::edge(Var::new(0), Var::new(1)));
/// let order = closure_size_order(&cnf);
/// let instance = Instance::over_all_vars(cnf);
/// let mut bug = |s: &VarSet| s.contains(Var::new(1));
/// let out = generalized_binary_reduction(&instance, &order, &mut bug, &GbrConfig::default())
///     .expect("reduction succeeds");
/// assert_eq!(out.solution.iter().collect::<Vec<_>>(), vec![Var::new(1)]);
/// ```
pub fn generalized_binary_reduction(
    instance: &Instance,
    order: &VarOrder,
    predicate: &mut dyn Predicate,
    config: &GbrConfig,
) -> Result<GbrOutcome, GbrError> {
    generalized_binary_reduction_controlled(
        instance,
        order,
        predicate,
        config,
        &mut GbrControl::default(),
    )
}

/// [`generalized_binary_reduction`] with cooperative [`GbrControl`] hooks
/// (cancellation, checkpointing, resume). With a default control value the
/// two are identical; a resumed run converges to the same solution as an
/// uninterrupted one because the checkpoint captures the loop's entire
/// state and the probe sequence is a deterministic function of it.
pub fn generalized_binary_reduction_controlled(
    instance: &Instance,
    order: &VarOrder,
    predicate: &mut dyn Predicate,
    config: &GbrConfig,
    control: &mut GbrControl<'_>,
) -> Result<GbrOutcome, GbrError> {
    let mut driver = Budgeted {
        inner: predicate,
        calls: 0,
        limit: config.max_predicate_calls,
        best: None,
    };
    gbr_loop(instance, order, config, &mut driver, control)
}

/// How the GBR main loop obtains predicate verdicts.
///
/// The sequential [`Budgeted`] driver runs the predicate inline; the
/// speculative driver demands results from a [`ProbeScheduler`] and uses
/// the narrowing hooks to (re)target speculation. The *logical* probe
/// sequence — which subsets are tested, in which order — is decided by
/// [`gbr_loop`] alone and is identical for every driver; that is what
/// makes the parallel mode bit-identical to the sequential one.
trait ProbeDriver {
    /// Runs one demanded probe; `None` once the anytime budget is spent.
    fn test(&mut self, input: &VarSet) -> Option<bool>;
    /// Takes the smallest failing input seen so far (the anytime answer).
    fn take_best(&mut self) -> Option<VarSet>;
    /// Peeks at the smallest failing input seen so far (for checkpoints).
    fn best_so_far(&self) -> Option<&VarSet>;
    /// Seeds `best` from a resumed checkpoint before the loop starts.
    fn seed_best(&mut self, best: VarSet);
    /// The binary search now targets `prefix_unions[lo..=hi]`, and the
    /// loop's next [`test`](ProbeDriver::test) will demand index `next`.
    /// A speculative driver leaves `next` to the demanding thread itself
    /// (it pays the probe's latency either way) and spends every worker
    /// on the probes *after* it.
    fn retarget(&mut self, _prefix_unions: &[VarSet], _lo: usize, _hi: usize, _next: usize) {}
    /// This iteration's search is over (learning and rebuilding follow).
    fn search_done(&mut self) {}
}

/// The GBR main loop, generic over how probes are executed.
fn gbr_loop<D: ProbeDriver>(
    instance: &Instance,
    order: &VarOrder,
    config: &GbrConfig,
    driver: &mut D,
    control: &mut GbrControl<'_>,
) -> Result<GbrOutcome, GbrError> {
    let universe = instance.vars.universe();
    let mut propagator = Propagator::new(config, instance, universe)?;
    // Resuming replays nothing: the progression below is rebuilt from the
    // checkpoint's (learned, search_space), which determines it uniquely.
    let (mut learned, mut search_space, start_iteration) = match control.resume.take() {
        Some(ck) => {
            debug_assert_eq!(ck.search_space.universe(), universe, "checkpoint universe");
            if let Some(best) = ck.best {
                driver.seed_best(best);
            }
            (ck.learned, ck.search_space, ck.iterations)
        }
        None => (Vec::new(), instance.vars.clone(), 0),
    };
    let mut progression = propagator.progression(
        instance,
        order,
        config.msa_strategy,
        &learned,
        &search_space,
    )?;
    let mut progression_lengths = vec![progression.len()];
    let max_iterations = config
        .max_iterations
        .unwrap_or_else(|| 4 * instance.vars.len() + 16);
    let cancelled = |control: &GbrControl<'_>| control.cancel.is_some_and(|c| c());

    for iteration in start_iteration..=max_iterations {
        if iteration == max_iterations {
            return Err(GbrError::IterationLimit);
        }
        if cancelled(control) {
            return Err(GbrError::Cancelled);
        }
        // Prefix unions D^∪_r for r in 0..len, computed *before* the D₀
        // probe so a speculative driver can dispatch binary-search probes
        // while D₀ itself is still running (`prefix_unions[0]` == `D₀`).
        let mut prefix_unions: Vec<VarSet> = Vec::with_capacity(progression.len());
        let mut acc = VarSet::empty(universe);
        for d in &progression {
            acc.union_with(d);
            prefix_unions.push(acc.clone());
        }
        driver.retarget(&prefix_unions, 0, progression.len() - 1, 0);
        // Anytime stop: the current search space is itself a valid failing
        // input (invariant), so a best-so-far answer always exists.
        let Some(d0_fails) = driver.test(&prefix_unions[0]) else {
            return Ok(anytime_outcome(
                driver,
                search_space,
                iteration,
                learned,
                progression_lengths,
            ));
        };
        if d0_fails {
            driver.search_done();
            return Ok(GbrOutcome {
                solution: prefix_unions[0].clone(),
                iterations: iteration,
                learned,
                progression_lengths,
                budget_exhausted: false,
            });
        }
        if progression.len() == 1 {
            // D^∪ = D₀ and P(D₀) failed: the invariant P(D^∪) is broken.
            driver.search_done();
            return Err(GbrError::PredicateNotMonotone);
        }
        // Binary search for the minimal r with P(D^∪_r). Invariant
        // (INV-PRO) guarantees P holds at the full progression; lo is
        // always a failing index, hi a (presumed) succeeding one.
        let mut lo = 0usize;
        let mut hi = progression.len() - 1;
        let mut hi_verified = false;
        while hi - lo > 1 {
            if cancelled(control) {
                driver.search_done();
                return Err(GbrError::Cancelled);
            }
            let mid = lo + (hi - lo) / 2;
            let Some(mid_fails) = driver.test(&prefix_unions[mid]) else {
                return Ok(anytime_outcome(
                    driver,
                    search_space,
                    iteration,
                    learned,
                    progression_lengths,
                ));
            };
            if mid_fails {
                hi = mid;
                hi_verified = true;
            } else {
                lo = mid;
            }
            let next = if hi - lo > 1 { lo + (hi - lo) / 2 } else { hi };
            driver.retarget(&prefix_unions, lo, hi, next);
        }
        if !hi_verified {
            match driver.test(&prefix_unions[hi]) {
                None => {
                    return Ok(anytime_outcome(
                        driver,
                        search_space,
                        iteration,
                        learned,
                        progression_lengths,
                    ))
                }
                Some(false) => {
                    driver.search_done();
                    return Err(GbrError::PredicateNotMonotone);
                }
                Some(true) => {}
            }
        }
        driver.search_done();
        let r = hi;
        learned.push(progression[r].clone());
        search_space = prefix_unions[r].clone();
        progression = propagator.progression(
            instance,
            order,
            config.msa_strategy,
            &learned,
            &search_space,
        )?;
        progression_lengths.push(progression.len());
        // Checkpoint only after the rebuild succeeds, so every snapshot is
        // a state a resumed run can actually continue from.
        if let Some(hook) = control.checkpoint.as_mut() {
            hook(&GbrCheckpoint {
                iterations: iteration + 1,
                learned: learned.clone(),
                search_space: search_space.clone(),
                best: driver.best_so_far().cloned(),
            });
        }
    }
    unreachable!("loop returns or errors before exhausting the range");
}

/// A predicate wrapper enforcing the anytime call budget and remembering
/// the smallest passing (still-failing-the-tool) input seen.
struct Budgeted<'p> {
    inner: &'p mut dyn Predicate,
    calls: u64,
    limit: Option<u64>,
    best: Option<VarSet>,
}

impl ProbeDriver for Budgeted<'_> {
    /// Runs the predicate; `None` once the budget is exhausted.
    fn test(&mut self, input: &VarSet) -> Option<bool> {
        if self.limit.is_some_and(|l| self.calls >= l) {
            return None;
        }
        self.calls += 1;
        let outcome = self.inner.test(input);
        if outcome && self.best.as_ref().is_none_or(|b| input.len() < b.len()) {
            self.best = Some(input.clone());
        }
        Some(outcome)
    }

    fn take_best(&mut self) -> Option<VarSet> {
        self.best.take()
    }

    fn best_so_far(&self) -> Option<&VarSet> {
        self.best.as_ref()
    }

    fn seed_best(&mut self, best: VarSet) {
        self.best = Some(best);
    }
}

fn anytime_outcome<D: ProbeDriver>(
    driver: &mut D,
    search_space: VarSet,
    iterations: usize,
    learned: Vec<VarSet>,
    progression_lengths: Vec<usize>,
) -> GbrOutcome {
    GbrOutcome {
        solution: driver.take_best().unwrap_or(search_space),
        iterations,
        learned,
        progression_lengths,
        budget_exhausted: true,
    }
}

/// Tuning knobs for [`generalized_binary_reduction_speculative`].
#[derive(Debug, Clone)]
pub struct SpeculationConfig {
    /// Total probe parallelism: the main (search) thread plus
    /// `threads - 1` speculation workers. With `threads <= 1` the run
    /// degenerates to sequential probing plus scheduler overhead — use
    /// [`generalized_binary_reduction`] instead in that case.
    pub threads: usize,
    /// Maximum number of candidates enqueued per retarget of the
    /// speculation frontier. `0` picks `threads`: one candidate per
    /// worker. Deeper queues do not help — an entry beyond the worker
    /// count is only claimed once a worker frees up, which is exactly
    /// when the frontier is about to be retargeted past it, so it tends
    /// to burn CPU on stale speculation instead.
    pub width: usize,
    /// Synthetic cost of one tool invocation for the modeled-time column
    /// of the trace. Modeled time follows the paper's *sequential* cost
    /// model — `useful_calls × cost` — so wasted speculative probes are
    /// never charged and Figure 8 stays comparable across thread counts.
    pub cost_per_call_secs: f64,
}

impl SpeculationConfig {
    /// A default configuration probing with `threads`-way parallelism.
    pub fn new(threads: usize) -> Self {
        SpeculationConfig {
            threads,
            width: 0,
            cost_per_call_secs: 0.0,
        }
    }

    fn effective_width(&self) -> usize {
        if self.width == 0 {
            self.threads.max(1)
        } else {
            self.width
        }
    }
}

/// The result of a speculative GBR run: the (bit-identical) outcome plus
/// parallel-probe accounting and the logical-order trace.
#[derive(Debug, Clone)]
pub struct SpeculativeRun {
    /// The reduction outcome — identical to the sequential run's.
    pub outcome: GbrOutcome,
    /// Useful/speculative/critical-path probe accounting.
    pub stats: ProbeStats,
    /// The trace of *demanded* probes, recorded in logical (sequential)
    /// order with modeled time `call × cost_per_call_secs`.
    pub trace: ReductionTrace,
}

/// Runs GBR with speculative parallel probing.
///
/// During the binary search over progression prefixes the pending probe's
/// successors — for *both* of its possible outcomes — are dispatched to a
/// worker pool, so when the pending result lands the next one is usually
/// already running (or done). Narrowing the search retargets the
/// speculation frontier and cancels work that became irrelevant.
///
/// The final result is **bit-identical** to
/// [`generalized_binary_reduction`] with the same (deterministic,
/// memo-free) predicate: the driver demands exactly the sequential probe
/// sequence, each answer comes from the same pure predicate, and the
/// anytime `best` tracking only ever sees demanded probes. Only wall
/// time, [`ProbeStats::speculative_calls`] and
/// [`ProbeStats::critical_path_calls`] vary with the thread count.
///
/// # Errors
///
/// Exactly the cases of [`generalized_binary_reduction`]; see
/// [`GbrError`].
pub fn generalized_binary_reduction_speculative(
    instance: &Instance,
    order: &VarOrder,
    predicate: &dyn ConcurrentPredicate,
    config: &GbrConfig,
    spec: &SpeculationConfig,
) -> Result<SpeculativeRun, GbrError> {
    generalized_binary_reduction_speculative_controlled(
        instance,
        order,
        predicate,
        config,
        spec,
        &mut GbrControl::default(),
    )
}

/// [`generalized_binary_reduction_speculative`] with [`GbrControl`] hooks.
/// Cancellation also stops the speculation workers (the scheduler is shut
/// down before the scope joins, exactly as on the other error paths).
pub fn generalized_binary_reduction_speculative_controlled(
    instance: &Instance,
    order: &VarOrder,
    predicate: &dyn ConcurrentPredicate,
    config: &GbrConfig,
    spec: &SpeculationConfig,
    control: &mut GbrControl<'_>,
) -> Result<SpeculativeRun, GbrError> {
    // One worker per configured thread: the driving thread spends the
    // latency-bound regime blocked in `demand`, so it does not count
    // against the probe-parallelism budget (it only computes a probe
    // itself when nobody has claimed it yet).
    let workers = spec.threads.max(1);
    let scheduler = ProbeScheduler::new(predicate, 4 * workers);
    let loop_result = std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| scheduler.worker());
        }
        let mut driver = SpeculativeDriver::new(&scheduler, config, spec);
        let outcome = gbr_loop(instance, order, config, &mut driver, control);
        // Always shut down before the scope joins, also on error paths —
        // otherwise the workers wait on the queue condvar forever.
        scheduler.shutdown();
        outcome.map(|o| (o, driver))
    });
    let (outcome, driver) = loop_result?;
    // All workers have joined: the memo is quiescent and every claimed
    // entry was executed exactly once, so entries − demanded is precisely
    // the wasted speculation.
    let scan = scheduler.scan();
    Ok(assemble_run(outcome, driver, scan))
}

/// Runs GBR against an arbitrary [`VerdictSource`] — the entry point the
/// cluster backend uses to consume a *remote* speculation frontier
/// instead of the local [`ProbeScheduler`].
///
/// The driver demands exactly the sequential probe sequence and retargets
/// the source's frontier as the search narrows, so as long as the source
/// honors the [`VerdictSource`] contract the result is **bit-identical**
/// to [`generalized_binary_reduction`] with the same predicate — at any
/// worker count, local or remote. Only wall time,
/// [`ProbeStats::speculative_calls`] and
/// [`ProbeStats::critical_path_calls`] vary with scheduling.
///
/// The source's lifecycle belongs to the caller: this function cancels
/// pending speculation when the search finishes (also on error paths) but
/// never shuts the source down.
///
/// # Errors
///
/// Exactly the cases of [`generalized_binary_reduction`]; see
/// [`GbrError`].
pub fn generalized_binary_reduction_with_source(
    instance: &Instance,
    order: &VarOrder,
    source: &dyn VerdictSource,
    config: &GbrConfig,
    spec: &SpeculationConfig,
    control: &mut GbrControl<'_>,
) -> Result<SpeculativeRun, GbrError> {
    let mut driver = SpeculativeDriver::new(source, config, spec);
    let outcome = gbr_loop(instance, order, config, &mut driver, control);
    // Cancel whatever the frontier still holds, also on error paths —
    // remote workers must not keep probing a finished run.
    source.speculate(Vec::new());
    let outcome = outcome?;
    let scan = source.scan();
    Ok(assemble_run(outcome, driver, scan))
}

/// The shared stats/trace assembly of every speculative entry point.
/// `entries − demanded` is the wasted speculation; the memo-hit split
/// mirrors the sequential oracle's first-demand accounting.
fn assemble_run(
    outcome: GbrOutcome,
    driver: SpeculativeDriver<'_>,
    scan: MemoScan,
) -> SpeculativeRun {
    let stats = ProbeStats {
        useful_calls: driver.calls,
        speculative_calls: scan.entries - scan.demanded,
        critical_path_calls: driver.critical,
        memo_hits: driver.calls - driver.distinct,
        memo_misses: driver.distinct,
    };
    SpeculativeRun {
        outcome,
        stats,
        trace: driver.trace,
    }
}

/// The outcome of a portfolio race over several variable orders.
#[derive(Debug, Clone)]
pub struct PortfolioRun {
    /// Index into the `orders` slice of the committed member: the one with
    /// the smallest solution, lowest index winning ties.
    pub winner: usize,
    /// Each member's solution size, in portfolio order (diagnostics).
    pub member_sizes: Vec<usize>,
    /// The committed member's run: its (bit-identical) outcome and trace,
    /// with probe accounting aggregated over the *whole* portfolio —
    /// `useful_calls` sums every member's demanded probes, and repeated
    /// probes across members show up as `memo_hits`.
    pub run: SpeculativeRun,
}

/// Races a fixed portfolio of variable orders over **one shared**
/// [`ProbeScheduler`] and commits the best result deterministically.
///
/// Members run in portfolio order against the same probe memo, so any
/// probe two orders agree on is paid for once; each member's probe
/// sequence is a deterministic function of `(instance, order, config)`
/// alone — the shared memo changes only *where* an answer comes from,
/// never what it is — so every member reproduces its standalone
/// [`generalized_binary_reduction_speculative`] outcome bit for bit.
/// The committed member is the one with the smallest solution, with the
/// **lowest portfolio index winning ties**; output is therefore
/// bit-identical for a given configuration regardless of thread count or
/// timing.
///
/// The anytime `max_predicate_calls` budget applies to each member
/// separately (a shared budget would let member `k`'s spending change
/// member `k+1`'s answers).
///
/// # Errors
///
/// The cases of [`generalized_binary_reduction`]; the first failing
/// member aborts the race.
///
/// # Panics
///
/// Panics if `orders` is empty.
pub fn generalized_binary_reduction_portfolio(
    instance: &Instance,
    orders: &[VarOrder],
    predicate: &dyn ConcurrentPredicate,
    config: &GbrConfig,
    spec: &SpeculationConfig,
) -> Result<PortfolioRun, GbrError> {
    generalized_binary_reduction_portfolio_controlled(
        instance,
        orders,
        predicate,
        config,
        spec,
        &mut GbrControl::default(),
    )
}

/// [`generalized_binary_reduction_portfolio`] honoring a cancellation
/// hook. Checkpoint/resume hooks are per-member state and do not compose
/// with a portfolio; they are ignored (debug builds assert they are
/// absent).
pub fn generalized_binary_reduction_portfolio_controlled(
    instance: &Instance,
    orders: &[VarOrder],
    predicate: &dyn ConcurrentPredicate,
    config: &GbrConfig,
    spec: &SpeculationConfig,
    control: &mut GbrControl<'_>,
) -> Result<PortfolioRun, GbrError> {
    assert!(!orders.is_empty(), "a portfolio needs at least one order");
    debug_assert!(
        control.checkpoint.is_none() && control.resume.is_none(),
        "portfolio races do not support checkpoint/resume"
    );
    let cancel = control.cancel;
    let workers = spec.threads.max(1);
    let scheduler = ProbeScheduler::new(predicate, 4 * workers);
    let loop_result = std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| scheduler.worker());
        }
        let mut members = Vec::with_capacity(orders.len());
        for order in orders {
            let mut driver = SpeculativeDriver::new(&scheduler, config, spec);
            let mut member_control = GbrControl {
                cancel,
                ..GbrControl::default()
            };
            match gbr_loop(instance, order, config, &mut driver, &mut member_control) {
                Ok(outcome) => members.push((outcome, driver)),
                Err(e) => {
                    scheduler.shutdown();
                    return Err(e);
                }
            }
        }
        scheduler.shutdown();
        Ok(members)
    });
    let members = loop_result?;
    let winner = members
        .iter()
        .enumerate()
        .min_by_key(|(i, (o, _))| (o.solution.len(), *i))
        .map(|(i, _)| i)
        .expect("non-empty portfolio");
    let member_sizes = members.iter().map(|(o, _)| o.solution.len()).collect();
    let total_calls: u64 = members.iter().map(|(_, d)| d.calls).sum();
    let total_distinct: u64 = members.iter().map(|(_, d)| d.distinct).sum();
    let total_critical: u64 = members.iter().map(|(_, d)| d.critical).sum();
    let scan = scheduler.scan();
    let stats = ProbeStats {
        useful_calls: total_calls,
        speculative_calls: scan.entries - scan.demanded,
        critical_path_calls: total_critical,
        memo_hits: total_calls - total_distinct,
        memo_misses: total_distinct,
    };
    let (outcome, driver) = members
        .into_iter()
        .nth(winner)
        .expect("winner index in range");
    Ok(PortfolioRun {
        winner,
        member_sizes,
        run: SpeculativeRun {
            outcome,
            stats,
            trace: driver.trace,
        },
    })
}

/// The driver behind [`generalized_binary_reduction_speculative`]: same
/// budget/best bookkeeping as [`Budgeted`], but probes are demanded from a
/// [`VerdictSource`] (the local [`ProbeScheduler`] or a remote cluster
/// frontier) and the narrowing hooks retarget speculation.
struct SpeculativeDriver<'s> {
    source: &'s dyn VerdictSource,
    calls: u64,
    limit: Option<u64>,
    best: Option<VarSet>,
    width: usize,
    cost_per_call_secs: f64,
    start: Instant,
    trace: ReductionTrace,
    /// Distinct subsets demanded (first demands).
    distinct: u64,
    /// Demands that blocked (waited for a worker or computed inline).
    critical: u64,
}

impl<'s> SpeculativeDriver<'s> {
    fn new(source: &'s dyn VerdictSource, config: &GbrConfig, spec: &SpeculationConfig) -> Self {
        SpeculativeDriver {
            source,
            calls: 0,
            limit: config.max_predicate_calls,
            best: None,
            width: spec.effective_width(),
            cost_per_call_secs: spec.cost_per_call_secs,
            start: Instant::now(),
            trace: ReductionTrace::new(),
            distinct: 0,
            critical: 0,
        }
    }
}

impl ProbeDriver for SpeculativeDriver<'_> {
    fn test(&mut self, input: &VarSet) -> Option<bool> {
        if self.limit.is_some_and(|l| self.calls >= l) {
            return None;
        }
        self.calls += 1;
        let demanded = self.source.demand(input);
        if demanded.first_demand {
            self.distinct += 1;
        }
        if demanded.kind != DemandKind::Ready {
            self.critical += 1;
        }
        let outcome = demanded.probe.outcome;
        // `best` only ever sees demanded probes: speculative results must
        // not influence the anytime answer, or it would depend on timing.
        if outcome && self.best.as_ref().is_none_or(|b| input.len() < b.len()) {
            self.best = Some(input.clone());
        }
        let wall = self.start.elapsed().as_secs_f64();
        let modeled = self.calls as f64 * self.cost_per_call_secs;
        self.trace
            .record(self.calls, wall, modeled, demanded.probe.size, outcome);
        Some(outcome)
    }

    fn take_best(&mut self) -> Option<VarSet> {
        self.best.take()
    }

    fn best_so_far(&self) -> Option<&VarSet> {
        self.best.as_ref()
    }

    fn seed_best(&mut self, best: VarSet) {
        self.best = Some(best);
    }

    fn retarget(&mut self, prefix_unions: &[VarSet], lo: usize, hi: usize, next: usize) {
        // Skip `next`: this thread demands it immediately and computes it
        // inline if nobody beat it to it, so a worker claiming it would
        // only duplicate the wait — every worker goes one level deeper
        // instead. (Before the `D₀` probe `next` is 0, which the frontier
        // never contains, so the full frontier — including the first
        // `mid` — is speculated during `D₀`.)
        let frontier = speculation_frontier(lo, hi, self.width);
        self.source.speculate(
            frontier
                .into_iter()
                .filter(|&i| i != next)
                .map(|i| prefix_unions[i].clone())
                .collect(),
        );
    }

    fn search_done(&mut self) {
        self.source.speculate(Vec::new());
    }
}

/// The BFS speculation frontier for the binary-search interval
/// `(lo, hi)`: the probes the search may demand next, covering *both*
/// outcomes of each pending probe, nearest-first. An interval wider than
/// one probes `mid` next and splits into `(lo, mid)` / `(mid, hi)` for
/// its two outcomes; an interval of width one has a single possible
/// remaining probe, the `hi` verification. Index 0 (the `D₀` probe) is
/// demanded directly by the main loop and never appears.
fn speculation_frontier(lo: usize, hi: usize, width: usize) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    let mut intervals = std::collections::VecDeque::from([(lo, hi)]);
    while out.len() < width {
        let Some((l, h)) = intervals.pop_front() else {
            break;
        };
        if h <= l {
            continue;
        }
        if h - l == 1 {
            if !out.contains(&h) {
                out.push(h);
            }
            continue;
        }
        let mid = l + (h - l) / 2;
        if !out.contains(&mid) {
            out.push(mid);
        }
        intervals.push_back((l, mid));
        intervals.push_back((mid, h));
    }
    out
}

/// The progression-building state for one reduction run: either a
/// persistent incremental engine, or the stateless legacy rebuild.
enum Propagator {
    Incremental {
        engine: Engine,
        /// The persistent CDCL complete-search backend, when
        /// [`EngineChoice::Cdcl`] is configured. Mirrors the base engine's
        /// clause set (base CNF plus installed learned sets) and keeps its
        /// 1UIP learned clauses for the whole run.
        cdcl: Option<Box<CdclEngine>>,
        /// How many learned sets have already been installed as permanent
        /// level-0 clauses (learned sets only ever grow, in order).
        learned_added: usize,
    },
    Legacy,
}

impl Propagator {
    fn new(config: &GbrConfig, instance: &Instance, universe: usize) -> Result<Self, GbrError> {
        match config.propagation {
            PropagationMode::Incremental => {
                let engine = Engine::new(&instance.cnf, universe);
                if !engine.is_ok() {
                    // Refuted by unit propagation alone; the legacy path
                    // reports the same through its first failed MSA.
                    return Err(GbrError::ModelUnsatisfiable);
                }
                let cdcl = match config.engine {
                    EngineChoice::Dpll => None,
                    EngineChoice::Cdcl => Some(Box::new(CdclEngine::new(&instance.cnf, universe))),
                };
                Ok(Propagator::Incremental {
                    engine,
                    cdcl,
                    learned_added: 0,
                })
            }
            PropagationMode::LegacyScan => Ok(Propagator::Legacy),
        }
    }

    fn progression(
        &mut self,
        instance: &Instance,
        order: &VarOrder,
        strategy: MsaStrategy,
        learned: &[VarSet],
        search_space: &VarSet,
    ) -> Result<Vec<VarSet>, GbrError> {
        match self {
            Propagator::Incremental {
                engine,
                cdcl,
                learned_added,
            } => build_progression_incremental(
                engine,
                cdcl,
                learned_added,
                &instance.cnf,
                order,
                strategy,
                learned,
                search_space,
            ),
            Propagator::Legacy => {
                build_progression(&instance.cnf, order, strategy, learned, search_space)
            }
        }
    }
}

/// The incremental `PROGRESSION_{R_I,<}(L, J)`: same contract as
/// [`build_progression`], but no formula is ever cloned. Newly learned sets
/// become permanent level-0 clauses; the restriction to `J` is one
/// assumption level of negated out-of-`J` literals; each progression prefix
/// is asserted as a further assumption level (by the progression invariant
/// a prefix union is a model of the restricted formula, so asserting it
/// never conflicts and never implies new true variables); and each entry is
/// `MSA` run from the engine's current state.
///
/// Unit propagation is confluent, so every step sees exactly the state the
/// legacy rebuild would recompute, and the produced progressions are
/// identical — differentially tested in `tests/gbr_differential.rs`.
#[allow(clippy::too_many_arguments)]
fn build_progression_incremental(
    engine: &mut Engine,
    cdcl: &mut Option<Box<CdclEngine>>,
    learned_added: &mut usize,
    cnf: &Cnf,
    order: &VarOrder,
    strategy: MsaStrategy,
    learned: &[VarSet],
    search_space: &VarSet,
) -> Result<Vec<VarSet>, GbrError> {
    let _ = cnf; // only consumed by the debug-mode invariant check below
    engine.backtrack(0);
    // Learned sets are positive clauses over their full member list; under
    // the restriction level below, members outside `J` are false, so the
    // engine clause behaves exactly like the legacy `l ∩ J` clause (and a
    // learned set disjoint from `J` surfaces as a restriction conflict, the
    // same `ModelUnsatisfiable` the legacy path reports).
    while *learned_added < learned.len() {
        let lits: Vec<Lit> = learned[*learned_added].iter().map(Lit::pos).collect();
        engine.add_clause(&lits);
        // The CDCL backend mirrors the base engine's clause set; its own
        // 1UIP clauses stay sound because the formula only ever grows.
        if let Some(c) = cdcl.as_deref_mut() {
            c.add_clause(&lits);
        }
        *learned_added += 1;
        if !engine.is_ok() {
            return Err(GbrError::ModelUnsatisfiable);
        }
    }
    // Restriction level: every variable outside `J` is false. Variables
    // beyond `num_vars` occur in no clause and are never picked true by
    // MSA, so they need no explicit assumption.
    let restriction: Vec<Lit> = (0..engine.num_vars() as u32)
        .map(Var::new)
        .filter(|v| !search_space.contains(*v))
        .map(Lit::neg)
        .collect();
    if !engine.assume_all(&restriction) {
        return Err(GbrError::ModelUnsatisfiable);
    }
    let mut backend = match cdcl.as_deref_mut() {
        Some(c) => SearchBackend::Cdcl(c),
        None => SearchBackend::Dpll,
    };
    let d0 = engine::msa_from_state_with(engine, order, strategy, &mut backend)
        .ok_or(GbrError::ModelUnsatisfiable)?;
    let mut covered = d0.clone();
    let asserted: Vec<Lit> = covered.iter().map(Lit::pos).collect();
    let ok = engine.assume_all(&asserted);
    debug_assert!(ok, "asserting the MSA model must not conflict");
    let mut progression = vec![d0];

    while let Some(x) = order.min_in_difference(search_space, &covered) {
        let before = engine.decision_level();
        let entry = if engine.assume(Lit::pos(x)) {
            engine::msa_from_state_with(engine, order, strategy, &mut backend).map(|s_abs| {
                // `s_abs` is the absolute true-set; strip the prefix that is
                // already covered to get this progression entry (⊇ {x}).
                s_abs.difference(&covered)
            })
        } else {
            None
        };
        engine.backtrack(before);
        match entry {
            Some(entry) => {
                let lits: Vec<Lit> = entry.iter().map(Lit::pos).collect();
                let ok = engine.assume_all(&lits);
                debug_assert!(ok, "asserting a progression prefix must not conflict");
                covered.union_with(&entry);
                progression.push(entry);
            }
            None => {
                // `x` cannot be made true inside this search space. Close
                // the progression with the whole remainder: its prefix is
                // the full search space, which is valid by assumption.
                let rest = search_space.difference(&covered);
                covered.union_with(&rest);
                progression.push(rest);
                break;
            }
        }
    }
    engine.backtrack(0);
    debug_assert_eq!(covered, *search_space, "progression must cover J");
    #[cfg(debug_assertions)]
    check_progression_invariants(cnf, learned, search_space, &progression);
    Ok(progression)
}

/// The `PROGRESSION_{R_I,<}(L, J)` subroutine.
///
/// Produces a non-empty list of disjoint subsets of `J` whose union is `J`,
/// such that (a) every prefix union is a model of `R_I` restricted to `J`
/// and (b) every prefix union overlaps every learned set in `L`.
///
/// Entry 0 is `MSA_<(R⁺)`; entry `k+1` is built by picking the `<`-least
/// uncovered variable `x` and computing `MSA_<(R⁺ ∧ x | D^∪_k = 1)`.
/// Rebuilds restricted formulas at every step with the scan-based
/// [`msa_scan`]; [`PropagationMode::Incremental`] (the default inside
/// [`generalized_binary_reduction`]) produces identical progressions
/// without the clones.
pub fn build_progression(
    cnf: &Cnf,
    order: &VarOrder,
    strategy: MsaStrategy,
    learned: &[VarSet],
    search_space: &VarSet,
) -> Result<Vec<VarSet>, GbrError> {
    let universe = search_space.universe();
    let no_force = VarSet::empty(universe);
    // R⁺: conjoin one positive clause per learned set, then set variables
    // outside J to false.
    let mut rplus = cnf.restrict(search_space, &no_force);
    for l in learned {
        let members: Vec<_> = l.iter().filter(|v| search_space.contains(*v)).collect();
        if members.is_empty() {
            return Err(GbrError::ModelUnsatisfiable);
        }
        rplus.add_clause(Clause::implication([], members));
    }

    let d0 = msa_scan(&rplus, order, strategy).ok_or(GbrError::ModelUnsatisfiable)?;
    let mut covered = d0.clone();
    // Condition away what is already decided true; remaining clauses range
    // over J \ covered.
    let mut current = rplus.restrict(search_space, &covered);
    let mut progression = vec![d0];

    while let Some(x) = order.min_in_difference(search_space, &covered) {
        let mut seed = VarSet::empty(universe);
        seed.insert(x);
        let conditioned = current.restrict(search_space, &seed);
        match msa_scan(&conditioned, order, strategy) {
            Some(extra) => {
                let mut entry = extra;
                entry.insert(x);
                covered.union_with(&entry);
                current = current.restrict(search_space, &entry);
                progression.push(entry);
            }
            None => {
                // `x` cannot be made true inside this search space. Close
                // the progression with the whole remainder: its prefix is
                // the full search space, which is valid by assumption.
                let rest = search_space.difference(&covered);
                covered.union_with(&rest);
                progression.push(rest);
                break;
            }
        }
    }
    debug_assert_eq!(covered, *search_space, "progression must cover J");
    #[cfg(debug_assertions)]
    check_progression_invariants(cnf, learned, search_space, &progression);
    Ok(progression)
}

/// Debug-mode check of Lemma 4.3's progression invariants: entries are
/// disjoint (INV-D), every prefix union is a model of `R_I` restricted to
/// `J`, and every prefix overlaps every learned set (INV-PRO).
#[cfg(debug_assertions)]
fn check_progression_invariants(
    cnf: &Cnf,
    learned: &[VarSet],
    search_space: &VarSet,
    progression: &[VarSet],
) {
    let universe = search_space.universe();
    let no_force = VarSet::empty(universe);
    let restricted = cnf.restrict(search_space, &no_force);
    let mut acc = VarSet::empty(universe);
    for (i, d) in progression.iter().enumerate() {
        assert!(acc.is_disjoint(d), "INV-D violated at entry {i}");
        acc.union_with(d);
        // The final entry may be the unshrunk remainder (the fallback when
        // a variable cannot be made true); its prefix is the whole search
        // space, valid by the instance's assumption rather than by MSA.
        let is_fallback_tail = i + 1 == progression.len() && acc == *search_space;
        assert!(
            restricted.eval(&acc) || is_fallback_tail,
            "INV-PRO validity violated at prefix {i}"
        );
        for (k, l) in learned.iter().enumerate() {
            assert!(
                !acc.is_disjoint(l),
                "INV-PRO overlap violated: prefix {i} misses learned set {k}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oracle;
    use lbr_logic::{Lit, Var};

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    fn chain_instance(n: usize) -> Instance {
        // 0 ⇒ 1 ⇒ … ⇒ n-1
        let mut cnf = Cnf::new(n);
        for i in 0..n - 1 {
            cnf.add_clause(Clause::edge(v(i as u32), v(i as u32 + 1)));
        }
        Instance::over_all_vars(cnf)
    }

    #[test]
    fn progression_prefixes_are_valid_and_disjoint() {
        let inst = chain_instance(6);
        let order = VarOrder::natural(6);
        let prog = build_progression(
            &inst.cnf,
            &order,
            MsaStrategy::GreedyClosure,
            &[],
            &inst.vars,
        )
        .expect("progression");
        let mut acc = VarSet::empty(6);
        for (i, d) in prog.iter().enumerate() {
            assert!(acc.is_disjoint(d), "entry {i} overlaps prefix");
            acc.union_with(d);
            assert!(inst.cnf.eval(&acc), "prefix {i} invalid");
        }
        assert_eq!(acc, inst.vars);
    }

    #[test]
    fn progression_overlaps_learned_sets() {
        let inst = chain_instance(6);
        let order = VarOrder::natural(6);
        let learned = vec![VarSet::from_iter_with_universe(6, [v(4)])];
        let prog = build_progression(
            &inst.cnf,
            &order,
            MsaStrategy::GreedyClosure,
            &learned,
            &inst.vars,
        )
        .expect("progression");
        // D0 must contain v4 (and therefore v5 by the chain).
        assert!(prog[0].contains(v(4)));
        assert!(prog[0].contains(v(5)));
    }

    #[test]
    fn finds_single_required_var() {
        let inst = chain_instance(8);
        let order = crate::closure_size_order(&inst.cnf);
        // Bug requires exactly variable 5 (and validity pulls 6, 7).
        let mut bug = |s: &VarSet| s.contains(v(5));
        let out =
            generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default()).unwrap();
        assert!(out.solution.contains(v(5)));
        assert!(inst.cnf.eval(&out.solution));
        // Chain validity forces 6 and 7 as well; nothing below 5 needed.
        assert!(!out.solution.contains(v(0)));
        assert_eq!(out.solution.len(), 3);
    }

    #[test]
    fn finds_conjunction_of_two_vars() {
        // No constraints at all; bug needs both 2 and 6.
        let inst = Instance::over_all_vars(Cnf::new(8));
        let order = VarOrder::natural(8);
        let mut bug = |s: &VarSet| s.contains(v(2)) && s.contains(v(6));
        let out =
            generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default()).unwrap();
        let got: Vec<Var> = out.solution.iter().collect();
        assert_eq!(got, vec![v(2), v(6)]);
        assert_eq!(out.iterations, 2); // one learned set per variable
    }

    #[test]
    fn respects_non_graph_constraints() {
        // (2 ∧ 3) ⇒ 4; bug needs 2 and 3 — solution must include 4.
        let mut cnf = Cnf::new(5);
        cnf.add_clause(Clause::implication([v(2), v(3)], [v(4)]));
        let inst = Instance::over_all_vars(cnf);
        let order = VarOrder::natural(5);
        let mut bug = |s: &VarSet| s.contains(v(2)) && s.contains(v(3));
        let out =
            generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default()).unwrap();
        assert!(out.solution.contains(v(4)));
        assert!(inst.cnf.eval(&out.solution));
        assert!(!out.solution.contains(v(0)));
    }

    #[test]
    fn paper_suboptimality_example() {
        // Section 4.4: (a ∧ b ⇒ c) ∧ (c ⇒ b), P true iff b, order (c, b, a).
        // GBR returns {b, c}, suboptimal vs {b}.
        let (c, b, a) = (v(0), v(1), v(2));
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([a, b], [c]));
        cnf.add_clause(Clause::edge(c, b));
        let inst = Instance::over_all_vars(cnf);
        let order = VarOrder::from_permutation(vec![c, b, a]);
        let mut bug = |s: &VarSet| s.contains(b);
        let out =
            generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default()).unwrap();
        let got: Vec<Var> = out.solution.iter().collect();
        assert_eq!(got, vec![c, b], "expected the paper's suboptimal {{b, c}}");
    }

    #[test]
    fn local_minimality_on_graph_constraints() {
        // Theorem 4.5: with only graph constraints and a well-picked order
        // (closure-size ascending), the solution is locally minimal —
        // removing any single variable breaks P or validity.
        let mut cnf = Cnf::new(6);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(2), v(3)));
        cnf.add_clause(Clause::edge(v(4), v(5)));
        let inst = Instance::over_all_vars(cnf.clone());
        let order = crate::closure_size_order(&cnf);
        let mut bug = |s: &VarSet| s.contains(v(1)) && s.contains(v(3));
        let out =
            generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default()).unwrap();
        let bug2 = |s: &VarSet| s.contains(v(1)) && s.contains(v(3));
        assert!(bug2(&out.solution));
        assert_eq!(out.solution.len(), 2, "optimal is {{1, 3}}");
        for rem in out.solution.clone().iter() {
            let mut smaller = out.solution.clone();
            smaller.remove(rem);
            let still_valid = inst.cnf.eval(&smaller);
            assert!(
                !still_valid || !bug2(&smaller),
                "removing {rem} kept a valid failing input — not locally minimal"
            );
        }
    }

    #[test]
    fn bad_order_can_be_suboptimal_on_chains() {
        // With the *natural* order on a chain, the first progression is
        // [∅, everything]: GBR learns nothing useful and returns the whole
        // chain. This motivates `closure_size_order`.
        let inst = chain_instance(8);
        let natural = VarOrder::natural(8);
        let mut bug = |s: &VarSet| s.contains(v(5));
        let out =
            generalized_binary_reduction(&inst, &natural, &mut bug, &GbrConfig::default()).unwrap();
        assert_eq!(out.solution.len(), 8, "natural order keeps everything");
        // The closure-size order recovers the minimal suffix {5, 6, 7}.
        let good = crate::closure_size_order(&inst.cnf);
        let mut bug = |s: &VarSet| s.contains(v(5));
        let out =
            generalized_binary_reduction(&inst, &good, &mut bug, &GbrConfig::default()).unwrap();
        assert_eq!(out.solution.len(), 3);
    }

    #[test]
    fn anytime_budget_returns_best_so_far() {
        let inst = chain_instance(32);
        let order = crate::closure_size_order(&inst.cnf);
        // Converged run for reference.
        let mut bug = |s: &VarSet| s.contains(v(20));
        let full = generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default())
            .expect("converges");
        assert!(!full.budget_exhausted);
        // A budget of 2 calls cannot converge, but must return something
        // valid and failing.
        for limit in [1u64, 2, 3, 5] {
            let mut bug = |s: &VarSet| s.contains(v(20));
            let config = GbrConfig {
                max_predicate_calls: Some(limit),
                ..GbrConfig::default()
            };
            let out = generalized_binary_reduction(&inst, &order, &mut bug, &config)
                .expect("anytime result");
            if out.budget_exhausted {
                assert!(inst.cnf.eval(&out.solution), "limit {limit}: invalid");
                assert!(out.solution.contains(v(20)), "limit {limit}: failure lost");
                assert!(out.solution.len() >= full.solution.len());
            } else {
                assert_eq!(out.solution, full.solution);
            }
        }
        // A generous budget converges to the same answer.
        let mut bug = |s: &VarSet| s.contains(v(20));
        let config = GbrConfig {
            max_predicate_calls: Some(10_000),
            ..GbrConfig::default()
        };
        let out = generalized_binary_reduction(&inst, &order, &mut bug, &config).unwrap();
        assert!(!out.budget_exhausted);
        assert_eq!(out.solution, full.solution);
    }

    #[test]
    fn non_monotone_predicate_is_detected() {
        let inst = Instance::over_all_vars(Cnf::new(4));
        let order = VarOrder::natural(4);
        // P is false everywhere — violates P(I).
        let mut bug = |_: &VarSet| false;
        let err = generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default())
            .unwrap_err();
        assert_eq!(err, GbrError::PredicateNotMonotone);
    }

    #[test]
    fn unsatisfiable_model_is_detected() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::unit(Lit::neg(v(0))));
        let inst = Instance::over_all_vars(cnf);
        let order = VarOrder::natural(2);
        let mut bug = |_: &VarSet| true;
        let err = generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default())
            .unwrap_err();
        assert_eq!(err, GbrError::ModelUnsatisfiable);
    }

    #[test]
    fn oracle_counts_polynomially_on_chain() {
        let n = 64;
        let inst = chain_instance(n);
        let order = crate::closure_size_order(&inst.cnf);
        let mut bug = |s: &VarSet| s.contains(v(40));
        let mut oracle = Oracle::new(&mut bug, 0.0);
        let out = generalized_binary_reduction(&inst, &order, &mut oracle, &GbrConfig::default())
            .unwrap();
        assert!(out.solution.contains(v(40)));
        assert_eq!(out.solution.len(), 24, "minimal suffix {{40..63}}");
        // One search: ~log2(n) + constant probes.
        assert!(
            oracle.calls() <= 2 * (n as u64).ilog2() as u64 + 8,
            "too many predicate calls: {}",
            oracle.calls()
        );
    }

    #[test]
    fn speculation_frontier_covers_probe_tree() {
        // Interval (0, 8): next probe is 4; its children are 2 and 6, then
        // 1, 3, 5, 7, then the width-1 verification probes.
        assert_eq!(speculation_frontier(0, 8, 16), vec![4, 2, 6, 1, 3, 5, 7, 8]);
        assert_eq!(speculation_frontier(0, 8, 3), vec![4, 2, 6]);
        // Width-1 interval: only the hi-verification probe remains.
        assert_eq!(speculation_frontier(3, 4, 8), vec![4]);
        // Degenerate interval: nothing to probe.
        assert!(speculation_frontier(2, 2, 8).is_empty());
        // Index 0 never appears (the main loop demands D₀ itself).
        for hi in 1..40 {
            assert!(!speculation_frontier(0, hi, 64).contains(&0), "hi={hi}");
        }
    }

    #[test]
    fn speculative_matches_sequential_bit_for_bit() {
        let inst = chain_instance(24);
        let order = crate::closure_size_order(&inst.cnf);
        let predicate = |s: &VarSet| s.contains(v(13)) && s.contains(v(4));
        let mut seq_pred = predicate;
        let seq = generalized_binary_reduction(&inst, &order, &mut seq_pred, &GbrConfig::default())
            .expect("sequential");
        for threads in [2usize, 4, 8] {
            let run = generalized_binary_reduction_speculative(
                &inst,
                &order,
                &predicate,
                &GbrConfig::default(),
                &SpeculationConfig::new(threads),
            )
            .expect("speculative");
            assert_eq!(run.outcome.solution, seq.solution, "threads={threads}");
            assert_eq!(run.outcome.learned, seq.learned, "threads={threads}");
            assert_eq!(run.outcome.iterations, seq.iterations, "threads={threads}");
            assert_eq!(
                run.outcome.progression_lengths, seq.progression_lengths,
                "threads={threads}"
            );
            assert!(run.stats.critical_path_calls <= run.stats.useful_calls);
            assert_eq!(
                run.stats.memo_hits + run.stats.memo_misses,
                run.stats.useful_calls
            );
            assert_eq!(run.trace.len() as u64, run.stats.useful_calls);
        }
    }

    #[test]
    fn speculative_useful_calls_match_oracle_calls() {
        let inst = chain_instance(40);
        let order = crate::closure_size_order(&inst.cnf);
        let mut bug = |s: &VarSet| s.contains(v(25));
        let mut oracle = Oracle::new(&mut bug, 0.0);
        let seq = generalized_binary_reduction(&inst, &order, &mut oracle, &GbrConfig::default())
            .expect("sequential");
        let run = generalized_binary_reduction_speculative(
            &inst,
            &order,
            &|s: &VarSet| s.contains(v(25)),
            &GbrConfig::default(),
            &SpeculationConfig::new(4),
        )
        .expect("speculative");
        assert_eq!(run.outcome.solution, seq.solution);
        assert_eq!(run.stats.useful_calls, oracle.calls());
    }

    #[test]
    fn speculative_anytime_budget_matches_sequential() {
        let inst = chain_instance(32);
        let order = crate::closure_size_order(&inst.cnf);
        for limit in [1u64, 2, 3, 5, 10_000] {
            let config = GbrConfig {
                max_predicate_calls: Some(limit),
                ..GbrConfig::default()
            };
            let mut bug = |s: &VarSet| s.contains(v(20));
            let seq = generalized_binary_reduction(&inst, &order, &mut bug, &config)
                .expect("sequential anytime");
            let run = generalized_binary_reduction_speculative(
                &inst,
                &order,
                &|s: &VarSet| s.contains(v(20)),
                &config,
                &SpeculationConfig::new(4),
            )
            .expect("speculative anytime");
            assert_eq!(run.outcome.solution, seq.solution, "limit={limit}");
            assert_eq!(
                run.outcome.budget_exhausted, seq.budget_exhausted,
                "limit={limit}"
            );
        }
    }

    #[test]
    fn speculative_propagates_errors() {
        let inst = Instance::over_all_vars(Cnf::new(4));
        let order = VarOrder::natural(4);
        let err = generalized_binary_reduction_speculative(
            &inst,
            &order,
            &|_: &VarSet| false,
            &GbrConfig::default(),
            &SpeculationConfig::new(4),
        )
        .unwrap_err();
        assert_eq!(err, GbrError::PredicateNotMonotone);
    }

    #[test]
    fn cancel_hook_stops_the_run() {
        let inst = chain_instance(16);
        let order = crate::closure_size_order(&inst.cnf);
        let mut bug = |s: &VarSet| s.contains(v(9));
        let cancel = || true;
        let mut control = GbrControl {
            cancel: Some(&cancel),
            ..GbrControl::default()
        };
        let err = generalized_binary_reduction_controlled(
            &inst,
            &order,
            &mut bug,
            &GbrConfig::default(),
            &mut control,
        )
        .unwrap_err();
        assert_eq!(err, GbrError::Cancelled);
    }

    #[test]
    fn checkpoint_resume_reaches_the_same_solution() {
        // Needs several iterations: bug requires three independent vars.
        let inst = Instance::over_all_vars(Cnf::new(24));
        let order = VarOrder::natural(24);
        let bug = |s: &VarSet| s.contains(v(3)) && s.contains(v(11)) && s.contains(v(19));
        let mut reference = bug;
        let full =
            generalized_binary_reduction(&inst, &order, &mut reference, &GbrConfig::default())
                .expect("uninterrupted run");
        assert!(full.iterations >= 2, "test needs a multi-iteration run");

        // Interrupt after every possible iteration count and resume.
        for stop_after in 1..full.iterations {
            // Cancel as soon as `stop_after` checkpoints have been taken,
            // keeping the last one.
            let taken = std::sync::atomic::AtomicUsize::new(0);
            let mut saved: Option<GbrCheckpoint> = None;
            let mut hook = |ck: &GbrCheckpoint| {
                taken.store(ck.iterations, std::sync::atomic::Ordering::Relaxed);
                saved = Some(ck.clone());
            };
            let cancel = || taken.load(std::sync::atomic::Ordering::Relaxed) >= stop_after;
            let mut control = GbrControl {
                cancel: Some(&cancel),
                checkpoint: Some(&mut hook),
                resume: None,
            };
            let mut interrupted = bug;
            let err = generalized_binary_reduction_controlled(
                &inst,
                &order,
                &mut interrupted,
                &GbrConfig::default(),
                &mut control,
            )
            .unwrap_err();
            assert_eq!(err, GbrError::Cancelled, "stop_after={stop_after}");
            let ck = saved.expect("a checkpoint was taken");
            assert_eq!(ck.iterations, stop_after);
            let mut resumed_bug = bug;
            let mut control = GbrControl {
                resume: Some(ck),
                ..GbrControl::default()
            };
            let resumed = generalized_binary_reduction_controlled(
                &inst,
                &order,
                &mut resumed_bug,
                &GbrConfig::default(),
                &mut control,
            )
            .expect("resumed run converges");
            assert_eq!(resumed.solution, full.solution, "stop_after={stop_after}");
            assert_eq!(resumed.learned, full.learned, "stop_after={stop_after}");
            assert_eq!(
                resumed.iterations, full.iterations,
                "stop_after={stop_after}"
            );
        }
    }

    #[test]
    fn speculative_controlled_cancels() {
        let inst = chain_instance(16);
        let order = crate::closure_size_order(&inst.cnf);
        let cancel = || true;
        let mut control = GbrControl {
            cancel: Some(&cancel),
            ..GbrControl::default()
        };
        let err = generalized_binary_reduction_speculative_controlled(
            &inst,
            &order,
            &|s: &VarSet| s.contains(v(9)),
            &GbrConfig::default(),
            &SpeculationConfig::new(4),
            &mut control,
        )
        .unwrap_err();
        assert_eq!(err, GbrError::Cancelled);
    }

    #[test]
    fn trace_digest_ignores_wall_time() {
        let mut a = ReductionTrace::new();
        let mut b = ReductionTrace::new();
        a.record(1, 0.5, 33.0, 100, true);
        b.record(1, 7.9, 33.0, 100, true);
        assert_eq!(a.digest(), b.digest());
        let mut c = ReductionTrace::new();
        c.record(1, 0.5, 33.0, 101, true);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn cdcl_engine_choice_is_bit_identical_to_dpll() {
        // A model mixing edges, a general implication, and a negative
        // clause, so MSA hits dead-ends and the complete search actually
        // runs. DpllMinimize exercises the backend on every single MSA.
        let mut cnf = Cnf::new(8);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::implication([v(2), v(3)], [v(4)]));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(5)), Lit::neg(v(6))]));
        cnf.add_clause(Clause::edge(v(6), v(7)));
        let inst = Instance::over_all_vars(cnf);
        let order = crate::closure_size_order(&inst.cnf);
        for strategy in MsaStrategy::ALL {
            let base = GbrConfig {
                msa_strategy: strategy,
                ..GbrConfig::default()
            };
            let cdcl = GbrConfig {
                engine: EngineChoice::Cdcl,
                ..base.clone()
            };
            let mut bug_a = |s: &VarSet| s.contains(v(4)) && s.contains(v(7));
            let mut bug_b = |s: &VarSet| s.contains(v(4)) && s.contains(v(7));
            let a = generalized_binary_reduction(&inst, &order, &mut bug_a, &base).unwrap();
            let b = generalized_binary_reduction(&inst, &order, &mut bug_b, &cdcl).unwrap();
            assert_eq!(a.solution, b.solution, "{strategy:?}");
            assert_eq!(a.learned, b.learned, "{strategy:?}");
            assert_eq!(a.iterations, b.iterations, "{strategy:?}");
            assert_eq!(a.progression_lengths, b.progression_lengths, "{strategy:?}");
        }
    }

    #[test]
    fn cdcl_engine_choice_matches_on_chains() {
        let inst = chain_instance(24);
        let order = crate::closure_size_order(&inst.cnf);
        let cdcl = GbrConfig {
            engine: EngineChoice::Cdcl,
            ..GbrConfig::default()
        };
        let mut bug_a = |s: &VarSet| s.contains(v(13)) && s.contains(v(4));
        let mut bug_b = |s: &VarSet| s.contains(v(13)) && s.contains(v(4));
        let a =
            generalized_binary_reduction(&inst, &order, &mut bug_a, &GbrConfig::default()).unwrap();
        let b = generalized_binary_reduction(&inst, &order, &mut bug_b, &cdcl).unwrap();
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.learned, b.learned);
        assert_eq!(a.progression_lengths, b.progression_lengths);
    }

    #[test]
    fn cdcl_engine_choice_is_inert_under_legacy_scan() {
        let inst = chain_instance(12);
        let order = crate::closure_size_order(&inst.cnf);
        let legacy_cdcl = GbrConfig {
            propagation: PropagationMode::LegacyScan,
            engine: EngineChoice::Cdcl,
            ..GbrConfig::default()
        };
        let mut bug_a = |s: &VarSet| s.contains(v(7));
        let mut bug_b = |s: &VarSet| s.contains(v(7));
        let a =
            generalized_binary_reduction(&inst, &order, &mut bug_a, &GbrConfig::default()).unwrap();
        let b = generalized_binary_reduction(&inst, &order, &mut bug_b, &legacy_cdcl).unwrap();
        assert_eq!(a.solution, b.solution);
    }

    #[test]
    fn portfolio_commits_smallest_solution() {
        let inst = chain_instance(8);
        let natural = VarOrder::natural(8);
        let good = crate::closure_size_order(&inst.cnf);
        let predicate = |s: &VarSet| s.contains(v(5));
        // The natural order keeps the whole chain (size 8); the closure
        // order recovers the minimal suffix {5, 6, 7}.
        let run = generalized_binary_reduction_portfolio(
            &inst,
            &[natural.clone(), good.clone()],
            &predicate,
            &GbrConfig::default(),
            &SpeculationConfig::new(2),
        )
        .expect("portfolio");
        assert_eq!(run.member_sizes, vec![8, 3]);
        assert_eq!(run.winner, 1);
        assert_eq!(run.run.outcome.solution.len(), 3);
        assert!(run.run.outcome.solution.contains(v(5)));
    }

    #[test]
    fn portfolio_breaks_ties_toward_the_lowest_index() {
        let inst = chain_instance(8);
        let good = crate::closure_size_order(&inst.cnf);
        let predicate = |s: &VarSet| s.contains(v(5));
        let run = generalized_binary_reduction_portfolio(
            &inst,
            &[good.clone(), good.clone()],
            &predicate,
            &GbrConfig::default(),
            &SpeculationConfig::new(2),
        )
        .expect("portfolio");
        assert_eq!(run.winner, 0, "ties must commit the lowest index");
        assert_eq!(run.member_sizes[0], run.member_sizes[1]);
        // The duplicate member demanded the identical probe sequence, so
        // the shared memo answered all of it.
        assert!(run.run.stats.memo_hits >= run.run.stats.useful_calls / 2);
    }

    #[test]
    fn portfolio_winner_matches_standalone_run() {
        let inst = chain_instance(16);
        let natural = VarOrder::natural(16);
        let good = crate::closure_size_order(&inst.cnf);
        let predicate = |s: &VarSet| s.contains(v(9));
        let standalone = generalized_binary_reduction_speculative(
            &inst,
            &good,
            &predicate,
            &GbrConfig::default(),
            &SpeculationConfig::new(2),
        )
        .expect("standalone");
        let run = generalized_binary_reduction_portfolio(
            &inst,
            &[natural, good],
            &predicate,
            &GbrConfig::default(),
            &SpeculationConfig::new(2),
        )
        .expect("portfolio");
        assert_eq!(run.winner, 1);
        assert_eq!(run.run.outcome.solution, standalone.outcome.solution);
        assert_eq!(run.run.outcome.learned, standalone.outcome.learned);
        assert_eq!(run.run.outcome.iterations, standalone.outcome.iterations);
        assert_eq!(run.run.trace.digest(), standalone.trace.digest());
    }

    #[test]
    fn portfolio_is_deterministic_across_repeats_and_threads() {
        let inst = chain_instance(20);
        let orders = [
            VarOrder::natural(20),
            crate::closure_size_order(&inst.cnf),
            crate::closure_size_order(&inst.cnf).reversed(),
        ];
        let predicate = |s: &VarSet| s.contains(v(11));
        let mut seen: Option<(usize, Vec<usize>, VarSet)> = None;
        for threads in [1usize, 2, 4, 2] {
            let run = generalized_binary_reduction_portfolio(
                &inst,
                &orders,
                &predicate,
                &GbrConfig::default(),
                &SpeculationConfig::new(threads),
            )
            .expect("portfolio");
            let key = (run.winner, run.member_sizes, run.run.outcome.solution);
            match &seen {
                None => seen = Some(key),
                Some(prev) => assert_eq!(*prev, key, "threads={threads}"),
            }
        }
    }

    #[test]
    fn portfolio_propagates_errors() {
        let inst = Instance::over_all_vars(Cnf::new(4));
        let orders = [VarOrder::natural(4)];
        let err = generalized_binary_reduction_portfolio(
            &inst,
            &orders,
            &|_: &VarSet| false,
            &GbrConfig::default(),
            &SpeculationConfig::new(2),
        )
        .unwrap_err();
        assert_eq!(err, GbrError::PredicateNotMonotone);
    }

    #[test]
    fn all_msa_strategies_reduce() {
        let inst = chain_instance(10);
        let order = crate::closure_size_order(&inst.cnf);
        for strategy in MsaStrategy::ALL {
            let mut bug = |s: &VarSet| s.contains(v(7));
            let config = GbrConfig {
                msa_strategy: strategy,
                ..GbrConfig::default()
            };
            let out = generalized_binary_reduction(&inst, &order, &mut bug, &config).unwrap();
            assert!(out.solution.contains(v(7)), "{strategy:?}");
            assert!(inst.cnf.eval(&out.solution), "{strategy:?}");
        }
    }
}
