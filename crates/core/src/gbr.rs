//! Generalized Binary Reduction (Algorithm 1 of the paper).
//!
//! GBR solves the Input Reduction Problem approximately in polynomial time.
//! It interleaves two building blocks: runs of the black-box predicate `P`
//! and computations of an approximate minimal satisfying assignment
//! ([`msa`](lbr_logic::msa)). The key data structure is the *progression* —
//! a list of disjoint variable sets every prefix of which is a valid
//! sub-input — so `P` is only ever applied to valid inputs.
//!
//! The main loop (quoting the paper): while `¬P(D₀)`, find the minimal
//! prefix `D^∪_r` of the progression that satisfies `P` (by binary search),
//! learn the set `D_r` (some element of it must be in every solution within
//! the current search space), and rebuild the progression over the smaller
//! search space `D^∪_r` with the learned clause conjoined.

use crate::{Instance, Predicate};
use lbr_logic::{engine, msa_scan, Clause, Cnf, Engine, Lit, MsaStrategy, Var, VarOrder, VarSet};

/// How GBR evaluates the dependency model while building progressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PropagationMode {
    /// One persistent watched-literal [`Engine`] per reduction run: learned
    /// sets become permanent level-0 clauses, the search-space restriction
    /// and each progression prefix are pushed as assumption levels, and
    /// every MSA runs from the engine's current state. No formula is ever
    /// cloned. This is the default and produces bit-identical progressions
    /// to [`LegacyScan`](PropagationMode::LegacyScan).
    #[default]
    Incremental,
    /// The original implementation: every progression step clones a
    /// restricted CNF and re-propagates it from scratch with the scanning
    /// [`msa_scan`]. Kept as the measurable baseline and the reference the
    /// incremental mode is differentially tested against.
    LegacyScan,
}

/// Configuration for [`generalized_binary_reduction`].
#[derive(Debug, Clone)]
pub struct GbrConfig {
    /// Strategy for the approximate minimal-satisfying-assignment calls.
    pub msa_strategy: MsaStrategy,
    /// Safety bound on main-loop iterations (defaults to a generous
    /// multiple of `|I|`; the paper proves at most `|I|` are needed when
    /// the predicate is monotone).
    pub max_iterations: Option<usize>,
    /// Anytime budget: stop after this many predicate invocations and
    /// return the smallest valid failing input seen so far. This is the
    /// paper's "fixed time window" scenario — "we can stop both algorithms
    /// at any point in the execution and use the smallest input until that
    /// point that preserves the error message."
    pub max_predicate_calls: Option<u64>,
    /// How the dependency model is propagated (incremental engine vs the
    /// scan-based baseline). Does not affect results, only speed.
    pub propagation: PropagationMode,
}

impl Default for GbrConfig {
    fn default() -> Self {
        GbrConfig {
            msa_strategy: MsaStrategy::GreedyClosure,
            max_iterations: None,
            max_predicate_calls: None,
            propagation: PropagationMode::default(),
        }
    }
}

/// Why a GBR run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GbrError {
    /// The validity model `R⁺` became unsatisfiable — the instance's
    /// assumptions (`R_I(I)` holds) were violated.
    ModelUnsatisfiable,
    /// The predicate rejected the whole search space, contradicting the
    /// monotonicity assumption (or `P(I)` was false to begin with).
    PredicateNotMonotone,
    /// The iteration safety bound was hit.
    IterationLimit,
}

impl std::fmt::Display for GbrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GbrError::ModelUnsatisfiable => write!(f, "dependency model became unsatisfiable"),
            GbrError::PredicateNotMonotone => {
                write!(f, "predicate rejected the whole search space (not monotone, or P(I) false)")
            }
            GbrError::IterationLimit => write!(f, "iteration safety bound exceeded"),
        }
    }
}

impl std::error::Error for GbrError {}

/// The result of a successful GBR run.
#[derive(Debug, Clone)]
pub struct GbrOutcome {
    /// The failure-inducing valid sub-input `D₀` (or, when the anytime
    /// budget ran out, the smallest failing input seen so far).
    pub solution: VarSet,
    /// Main-loop iterations executed (learned sets added).
    pub iterations: usize,
    /// The learned sets `L`, in learning order.
    pub learned: Vec<VarSet>,
    /// Length of each progression built (diagnostics).
    pub progression_lengths: Vec<usize>,
    /// Whether the run stopped because `max_predicate_calls` was reached
    /// (the solution is then a best-effort answer, not a converged one).
    pub budget_exhausted: bool,
}

/// Runs Generalized Binary Reduction on `(I, P, R_I)`.
///
/// `order` is the total variable order `<` that drives both `MSA_<` and the
/// progression seeds. On success the returned solution satisfies both the
/// predicate and the validity model.
///
/// # Errors
///
/// See [`GbrError`]. In particular the instance must satisfy the paper's
/// assumptions: `R_I(I)` and `P(I)` hold and `P` is monotone on valid
/// sub-inputs.
///
/// # Examples
///
/// ```
/// use lbr_core::{closure_size_order, generalized_binary_reduction, GbrConfig, Instance};
/// use lbr_logic::{Clause, Cnf, Var, VarSet};
///
/// // Model: 0 ⇒ 1. Bug needs variable 1.
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause(Clause::edge(Var::new(0), Var::new(1)));
/// let order = closure_size_order(&cnf);
/// let instance = Instance::over_all_vars(cnf);
/// let mut bug = |s: &VarSet| s.contains(Var::new(1));
/// let out = generalized_binary_reduction(&instance, &order, &mut bug, &GbrConfig::default())
///     .expect("reduction succeeds");
/// assert_eq!(out.solution.iter().collect::<Vec<_>>(), vec![Var::new(1)]);
/// ```
pub fn generalized_binary_reduction(
    instance: &Instance,
    order: &VarOrder,
    predicate: &mut dyn Predicate,
    config: &GbrConfig,
) -> Result<GbrOutcome, GbrError> {
    let universe = instance.vars.universe();
    let mut propagator = Propagator::new(config.propagation, instance, universe)?;
    let mut learned: Vec<VarSet> = Vec::new();
    let mut search_space = instance.vars.clone();
    let mut progression = propagator.progression(
        instance,
        order,
        config.msa_strategy,
        &learned,
        &search_space,
    )?;
    let mut progression_lengths = vec![progression.len()];
    let max_iterations = config
        .max_iterations
        .unwrap_or_else(|| 4 * instance.vars.len() + 16);
    let mut budget = Budgeted {
        inner: predicate,
        calls: 0,
        limit: config.max_predicate_calls,
        best: None,
    };

    for iteration in 0..=max_iterations {
        if iteration == max_iterations {
            return Err(GbrError::IterationLimit);
        }
        // Anytime stop: the current search space is itself a valid failing
        // input (invariant), so a best-so-far answer always exists.
        let Some(d0_fails) = budget.test(&progression[0]) else {
            return Ok(anytime_outcome(budget, search_space, iteration, learned, progression_lengths));
        };
        if d0_fails {
            return Ok(GbrOutcome {
                solution: progression[0].clone(),
                iterations: iteration,
                learned,
                progression_lengths,
                budget_exhausted: false,
            });
        }
        if progression.len() == 1 {
            // D^∪ = D₀ and P(D₀) failed: the invariant P(D^∪) is broken.
            return Err(GbrError::PredicateNotMonotone);
        }
        // Prefix unions D^∪_r for r in 0..len.
        let mut prefix_unions: Vec<VarSet> = Vec::with_capacity(progression.len());
        let mut acc = VarSet::empty(universe);
        for d in &progression {
            acc.union_with(d);
            prefix_unions.push(acc.clone());
        }
        // Binary search for the minimal r with P(D^∪_r). Invariant
        // (INV-PRO) guarantees P holds at the full progression; lo is
        // always a failing index, hi a (presumed) succeeding one.
        let mut lo = 0usize;
        let mut hi = progression.len() - 1;
        let mut hi_verified = false;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let Some(mid_fails) = budget.test(&prefix_unions[mid]) else {
                return Ok(anytime_outcome(budget, search_space, iteration, learned, progression_lengths));
            };
            if mid_fails {
                hi = mid;
                hi_verified = true;
            } else {
                lo = mid;
            }
        }
        if !hi_verified {
            match budget.test(&prefix_unions[hi]) {
                None => {
                    return Ok(anytime_outcome(budget, search_space, iteration, learned, progression_lengths))
                }
                Some(false) => return Err(GbrError::PredicateNotMonotone),
                Some(true) => {}
            }
        }
        let r = hi;
        learned.push(progression[r].clone());
        search_space = prefix_unions[r].clone();
        progression = propagator.progression(
            instance,
            order,
            config.msa_strategy,
            &learned,
            &search_space,
        )?;
        progression_lengths.push(progression.len());
    }
    unreachable!("loop returns or errors before exhausting the range");
}

/// A predicate wrapper enforcing the anytime call budget and remembering
/// the smallest passing (still-failing-the-tool) input seen.
struct Budgeted<'p> {
    inner: &'p mut dyn Predicate,
    calls: u64,
    limit: Option<u64>,
    best: Option<VarSet>,
}

impl Budgeted<'_> {
    /// Runs the predicate; `None` once the budget is exhausted.
    fn test(&mut self, input: &VarSet) -> Option<bool> {
        if self.limit.is_some_and(|l| self.calls >= l) {
            return None;
        }
        self.calls += 1;
        let outcome = self.inner.test(input);
        if outcome && self.best.as_ref().is_none_or(|b| input.len() < b.len()) {
            self.best = Some(input.clone());
        }
        Some(outcome)
    }
}

fn anytime_outcome(
    budget: Budgeted<'_>,
    search_space: VarSet,
    iterations: usize,
    learned: Vec<VarSet>,
    progression_lengths: Vec<usize>,
) -> GbrOutcome {
    GbrOutcome {
        solution: budget.best.unwrap_or(search_space),
        iterations,
        learned,
        progression_lengths,
        budget_exhausted: true,
    }
}

/// The progression-building state for one reduction run: either a
/// persistent incremental engine, or the stateless legacy rebuild.
enum Propagator {
    Incremental {
        engine: Engine,
        /// How many learned sets have already been installed as permanent
        /// level-0 clauses (learned sets only ever grow, in order).
        learned_added: usize,
    },
    Legacy,
}

impl Propagator {
    fn new(mode: PropagationMode, instance: &Instance, universe: usize) -> Result<Self, GbrError> {
        match mode {
            PropagationMode::Incremental => {
                let engine = Engine::new(&instance.cnf, universe);
                if !engine.is_ok() {
                    // Refuted by unit propagation alone; the legacy path
                    // reports the same through its first failed MSA.
                    return Err(GbrError::ModelUnsatisfiable);
                }
                Ok(Propagator::Incremental {
                    engine,
                    learned_added: 0,
                })
            }
            PropagationMode::LegacyScan => Ok(Propagator::Legacy),
        }
    }

    fn progression(
        &mut self,
        instance: &Instance,
        order: &VarOrder,
        strategy: MsaStrategy,
        learned: &[VarSet],
        search_space: &VarSet,
    ) -> Result<Vec<VarSet>, GbrError> {
        match self {
            Propagator::Incremental {
                engine,
                learned_added,
            } => build_progression_incremental(
                engine,
                learned_added,
                &instance.cnf,
                order,
                strategy,
                learned,
                search_space,
            ),
            Propagator::Legacy => {
                build_progression(&instance.cnf, order, strategy, learned, search_space)
            }
        }
    }
}

/// The incremental `PROGRESSION_{R_I,<}(L, J)`: same contract as
/// [`build_progression`], but no formula is ever cloned. Newly learned sets
/// become permanent level-0 clauses; the restriction to `J` is one
/// assumption level of negated out-of-`J` literals; each progression prefix
/// is asserted as a further assumption level (by the progression invariant
/// a prefix union is a model of the restricted formula, so asserting it
/// never conflicts and never implies new true variables); and each entry is
/// `MSA` run from the engine's current state.
///
/// Unit propagation is confluent, so every step sees exactly the state the
/// legacy rebuild would recompute, and the produced progressions are
/// identical — differentially tested in `tests/gbr_differential.rs`.
#[allow(clippy::too_many_arguments)]
fn build_progression_incremental(
    engine: &mut Engine,
    learned_added: &mut usize,
    cnf: &Cnf,
    order: &VarOrder,
    strategy: MsaStrategy,
    learned: &[VarSet],
    search_space: &VarSet,
) -> Result<Vec<VarSet>, GbrError> {
    let _ = cnf; // only consumed by the debug-mode invariant check below
    engine.backtrack(0);
    // Learned sets are positive clauses over their full member list; under
    // the restriction level below, members outside `J` are false, so the
    // engine clause behaves exactly like the legacy `l ∩ J` clause (and a
    // learned set disjoint from `J` surfaces as a restriction conflict, the
    // same `ModelUnsatisfiable` the legacy path reports).
    while *learned_added < learned.len() {
        let lits: Vec<Lit> = learned[*learned_added].iter().map(Lit::pos).collect();
        engine.add_clause(&lits);
        *learned_added += 1;
        if !engine.is_ok() {
            return Err(GbrError::ModelUnsatisfiable);
        }
    }
    // Restriction level: every variable outside `J` is false. Variables
    // beyond `num_vars` occur in no clause and are never picked true by
    // MSA, so they need no explicit assumption.
    let restriction: Vec<Lit> = (0..engine.num_vars() as u32)
        .map(Var::new)
        .filter(|v| !search_space.contains(*v))
        .map(Lit::neg)
        .collect();
    if !engine.assume_all(&restriction) {
        return Err(GbrError::ModelUnsatisfiable);
    }
    let d0 = engine::msa_from_state(engine, order, strategy)
        .ok_or(GbrError::ModelUnsatisfiable)?;
    let mut covered = d0.clone();
    let asserted: Vec<Lit> = covered.iter().map(Lit::pos).collect();
    let ok = engine.assume_all(&asserted);
    debug_assert!(ok, "asserting the MSA model must not conflict");
    let mut progression = vec![d0];

    while let Some(x) = order.min_in_difference(search_space, &covered) {
        let before = engine.decision_level();
        let entry = if engine.assume(Lit::pos(x)) {
            engine::msa_from_state(engine, order, strategy).map(|s_abs| {
                // `s_abs` is the absolute true-set; strip the prefix that is
                // already covered to get this progression entry (⊇ {x}).
                s_abs.difference(&covered)
            })
        } else {
            None
        };
        engine.backtrack(before);
        match entry {
            Some(entry) => {
                let lits: Vec<Lit> = entry.iter().map(Lit::pos).collect();
                let ok = engine.assume_all(&lits);
                debug_assert!(ok, "asserting a progression prefix must not conflict");
                covered.union_with(&entry);
                progression.push(entry);
            }
            None => {
                // `x` cannot be made true inside this search space. Close
                // the progression with the whole remainder: its prefix is
                // the full search space, which is valid by assumption.
                let rest = search_space.difference(&covered);
                covered.union_with(&rest);
                progression.push(rest);
                break;
            }
        }
    }
    engine.backtrack(0);
    debug_assert_eq!(covered, *search_space, "progression must cover J");
    #[cfg(debug_assertions)]
    check_progression_invariants(cnf, learned, search_space, &progression);
    Ok(progression)
}

/// The `PROGRESSION_{R_I,<}(L, J)` subroutine.
///
/// Produces a non-empty list of disjoint subsets of `J` whose union is `J`,
/// such that (a) every prefix union is a model of `R_I` restricted to `J`
/// and (b) every prefix union overlaps every learned set in `L`.
///
/// Entry 0 is `MSA_<(R⁺)`; entry `k+1` is built by picking the `<`-least
/// uncovered variable `x` and computing `MSA_<(R⁺ ∧ x | D^∪_k = 1)`.
/// Rebuilds restricted formulas at every step with the scan-based
/// [`msa_scan`]; [`PropagationMode::Incremental`] (the default inside
/// [`generalized_binary_reduction`]) produces identical progressions
/// without the clones.
pub fn build_progression(
    cnf: &Cnf,
    order: &VarOrder,
    strategy: MsaStrategy,
    learned: &[VarSet],
    search_space: &VarSet,
) -> Result<Vec<VarSet>, GbrError> {
    let universe = search_space.universe();
    let no_force = VarSet::empty(universe);
    // R⁺: conjoin one positive clause per learned set, then set variables
    // outside J to false.
    let mut rplus = cnf.restrict(search_space, &no_force);
    for l in learned {
        let members: Vec<_> = l.iter().filter(|v| search_space.contains(*v)).collect();
        if members.is_empty() {
            return Err(GbrError::ModelUnsatisfiable);
        }
        rplus.add_clause(Clause::implication([], members));
    }

    let d0 = msa_scan(&rplus, order, strategy).ok_or(GbrError::ModelUnsatisfiable)?;
    let mut covered = d0.clone();
    // Condition away what is already decided true; remaining clauses range
    // over J \ covered.
    let mut current = rplus.restrict(search_space, &covered);
    let mut progression = vec![d0];

    while let Some(x) = order.min_in_difference(search_space, &covered) {
        let mut seed = VarSet::empty(universe);
        seed.insert(x);
        let conditioned = current.restrict(search_space, &seed);
        match msa_scan(&conditioned, order, strategy) {
            Some(extra) => {
                let mut entry = extra;
                entry.insert(x);
                covered.union_with(&entry);
                current = current.restrict(search_space, &entry);
                progression.push(entry);
            }
            None => {
                // `x` cannot be made true inside this search space. Close
                // the progression with the whole remainder: its prefix is
                // the full search space, which is valid by assumption.
                let rest = search_space.difference(&covered);
                covered.union_with(&rest);
                progression.push(rest);
                break;
            }
        }
    }
    debug_assert_eq!(covered, *search_space, "progression must cover J");
    #[cfg(debug_assertions)]
    check_progression_invariants(cnf, learned, search_space, &progression);
    Ok(progression)
}

/// Debug-mode check of Lemma 4.3's progression invariants: entries are
/// disjoint (INV-D), every prefix union is a model of `R_I` restricted to
/// `J`, and every prefix overlaps every learned set (INV-PRO).
#[cfg(debug_assertions)]
fn check_progression_invariants(
    cnf: &Cnf,
    learned: &[VarSet],
    search_space: &VarSet,
    progression: &[VarSet],
) {
    let universe = search_space.universe();
    let no_force = VarSet::empty(universe);
    let restricted = cnf.restrict(search_space, &no_force);
    let mut acc = VarSet::empty(universe);
    for (i, d) in progression.iter().enumerate() {
        assert!(acc.is_disjoint(d), "INV-D violated at entry {i}");
        acc.union_with(d);
        // The final entry may be the unshrunk remainder (the fallback when
        // a variable cannot be made true); its prefix is the whole search
        // space, valid by the instance's assumption rather than by MSA.
        let is_fallback_tail = i + 1 == progression.len() && acc == *search_space;
        assert!(
            restricted.eval(&acc) || is_fallback_tail,
            "INV-PRO validity violated at prefix {i}"
        );
        for (k, l) in learned.iter().enumerate() {
            assert!(
                !acc.is_disjoint(l),
                "INV-PRO overlap violated: prefix {i} misses learned set {k}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oracle;
    use lbr_logic::{Lit, Var};

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    fn chain_instance(n: usize) -> Instance {
        // 0 ⇒ 1 ⇒ … ⇒ n-1
        let mut cnf = Cnf::new(n);
        for i in 0..n - 1 {
            cnf.add_clause(Clause::edge(v(i as u32), v(i as u32 + 1)));
        }
        Instance::over_all_vars(cnf)
    }

    #[test]
    fn progression_prefixes_are_valid_and_disjoint() {
        let inst = chain_instance(6);
        let order = VarOrder::natural(6);
        let prog = build_progression(
            &inst.cnf,
            &order,
            MsaStrategy::GreedyClosure,
            &[],
            &inst.vars,
        )
        .expect("progression");
        let mut acc = VarSet::empty(6);
        for (i, d) in prog.iter().enumerate() {
            assert!(acc.is_disjoint(d), "entry {i} overlaps prefix");
            acc.union_with(d);
            assert!(inst.cnf.eval(&acc), "prefix {i} invalid");
        }
        assert_eq!(acc, inst.vars);
    }

    #[test]
    fn progression_overlaps_learned_sets() {
        let inst = chain_instance(6);
        let order = VarOrder::natural(6);
        let learned = vec![VarSet::from_iter_with_universe(6, [v(4)])];
        let prog = build_progression(
            &inst.cnf,
            &order,
            MsaStrategy::GreedyClosure,
            &learned,
            &inst.vars,
        )
        .expect("progression");
        // D0 must contain v4 (and therefore v5 by the chain).
        assert!(prog[0].contains(v(4)));
        assert!(prog[0].contains(v(5)));
    }

    #[test]
    fn finds_single_required_var() {
        let inst = chain_instance(8);
        let order = crate::closure_size_order(&inst.cnf);
        // Bug requires exactly variable 5 (and validity pulls 6, 7).
        let mut bug = |s: &VarSet| s.contains(v(5));
        let out =
            generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default()).unwrap();
        assert!(out.solution.contains(v(5)));
        assert!(inst.cnf.eval(&out.solution));
        // Chain validity forces 6 and 7 as well; nothing below 5 needed.
        assert!(!out.solution.contains(v(0)));
        assert_eq!(out.solution.len(), 3);
    }

    #[test]
    fn finds_conjunction_of_two_vars() {
        // No constraints at all; bug needs both 2 and 6.
        let inst = Instance::over_all_vars(Cnf::new(8));
        let order = VarOrder::natural(8);
        let mut bug = |s: &VarSet| s.contains(v(2)) && s.contains(v(6));
        let out =
            generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default()).unwrap();
        let got: Vec<Var> = out.solution.iter().collect();
        assert_eq!(got, vec![v(2), v(6)]);
        assert_eq!(out.iterations, 2); // one learned set per variable
    }

    #[test]
    fn respects_non_graph_constraints() {
        // (2 ∧ 3) ⇒ 4; bug needs 2 and 3 — solution must include 4.
        let mut cnf = Cnf::new(5);
        cnf.add_clause(Clause::implication([v(2), v(3)], [v(4)]));
        let inst = Instance::over_all_vars(cnf);
        let order = VarOrder::natural(5);
        let mut bug = |s: &VarSet| s.contains(v(2)) && s.contains(v(3));
        let out =
            generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default()).unwrap();
        assert!(out.solution.contains(v(4)));
        assert!(inst.cnf.eval(&out.solution));
        assert!(!out.solution.contains(v(0)));
    }

    #[test]
    fn paper_suboptimality_example() {
        // Section 4.4: (a ∧ b ⇒ c) ∧ (c ⇒ b), P true iff b, order (c, b, a).
        // GBR returns {b, c}, suboptimal vs {b}.
        let (c, b, a) = (v(0), v(1), v(2));
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([a, b], [c]));
        cnf.add_clause(Clause::edge(c, b));
        let inst = Instance::over_all_vars(cnf);
        let order = VarOrder::from_permutation(vec![c, b, a]);
        let mut bug = |s: &VarSet| s.contains(b);
        let out =
            generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default()).unwrap();
        let got: Vec<Var> = out.solution.iter().collect();
        assert_eq!(got, vec![c, b], "expected the paper's suboptimal {{b, c}}");
    }

    #[test]
    fn local_minimality_on_graph_constraints() {
        // Theorem 4.5: with only graph constraints and a well-picked order
        // (closure-size ascending), the solution is locally minimal —
        // removing any single variable breaks P or validity.
        let mut cnf = Cnf::new(6);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(2), v(3)));
        cnf.add_clause(Clause::edge(v(4), v(5)));
        let inst = Instance::over_all_vars(cnf.clone());
        let order = crate::closure_size_order(&cnf);
        let mut bug = |s: &VarSet| s.contains(v(1)) && s.contains(v(3));
        let out =
            generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default()).unwrap();
        let bug2 = |s: &VarSet| s.contains(v(1)) && s.contains(v(3));
        assert!(bug2(&out.solution));
        assert_eq!(out.solution.len(), 2, "optimal is {{1, 3}}");
        for rem in out.solution.clone().iter() {
            let mut smaller = out.solution.clone();
            smaller.remove(rem);
            let still_valid = inst.cnf.eval(&smaller);
            assert!(
                !still_valid || !bug2(&smaller),
                "removing {rem} kept a valid failing input — not locally minimal"
            );
        }
    }

    #[test]
    fn bad_order_can_be_suboptimal_on_chains() {
        // With the *natural* order on a chain, the first progression is
        // [∅, everything]: GBR learns nothing useful and returns the whole
        // chain. This motivates `closure_size_order`.
        let inst = chain_instance(8);
        let natural = VarOrder::natural(8);
        let mut bug = |s: &VarSet| s.contains(v(5));
        let out =
            generalized_binary_reduction(&inst, &natural, &mut bug, &GbrConfig::default())
                .unwrap();
        assert_eq!(out.solution.len(), 8, "natural order keeps everything");
        // The closure-size order recovers the minimal suffix {5, 6, 7}.
        let good = crate::closure_size_order(&inst.cnf);
        let mut bug = |s: &VarSet| s.contains(v(5));
        let out =
            generalized_binary_reduction(&inst, &good, &mut bug, &GbrConfig::default()).unwrap();
        assert_eq!(out.solution.len(), 3);
    }

    #[test]
    fn anytime_budget_returns_best_so_far() {
        let inst = chain_instance(32);
        let order = crate::closure_size_order(&inst.cnf);
        // Converged run for reference.
        let mut bug = |s: &VarSet| s.contains(v(20));
        let full = generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default())
            .expect("converges");
        assert!(!full.budget_exhausted);
        // A budget of 2 calls cannot converge, but must return something
        // valid and failing.
        for limit in [1u64, 2, 3, 5] {
            let mut bug = |s: &VarSet| s.contains(v(20));
            let config = GbrConfig {
                max_predicate_calls: Some(limit),
                ..GbrConfig::default()
            };
            let out = generalized_binary_reduction(&inst, &order, &mut bug, &config)
                .expect("anytime result");
            if out.budget_exhausted {
                assert!(inst.cnf.eval(&out.solution), "limit {limit}: invalid");
                assert!(out.solution.contains(v(20)), "limit {limit}: failure lost");
                assert!(out.solution.len() >= full.solution.len());
            } else {
                assert_eq!(out.solution, full.solution);
            }
        }
        // A generous budget converges to the same answer.
        let mut bug = |s: &VarSet| s.contains(v(20));
        let config = GbrConfig {
            max_predicate_calls: Some(10_000),
            ..GbrConfig::default()
        };
        let out = generalized_binary_reduction(&inst, &order, &mut bug, &config).unwrap();
        assert!(!out.budget_exhausted);
        assert_eq!(out.solution, full.solution);
    }

    #[test]
    fn non_monotone_predicate_is_detected() {
        let inst = Instance::over_all_vars(Cnf::new(4));
        let order = VarOrder::natural(4);
        // P is false everywhere — violates P(I).
        let mut bug = |_: &VarSet| false;
        let err = generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default())
            .unwrap_err();
        assert_eq!(err, GbrError::PredicateNotMonotone);
    }

    #[test]
    fn unsatisfiable_model_is_detected() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::unit(Lit::neg(v(0))));
        let inst = Instance::over_all_vars(cnf);
        let order = VarOrder::natural(2);
        let mut bug = |_: &VarSet| true;
        let err = generalized_binary_reduction(&inst, &order, &mut bug, &GbrConfig::default())
            .unwrap_err();
        assert_eq!(err, GbrError::ModelUnsatisfiable);
    }

    #[test]
    fn oracle_counts_polynomially_on_chain() {
        let n = 64;
        let inst = chain_instance(n);
        let order = crate::closure_size_order(&inst.cnf);
        let mut bug = |s: &VarSet| s.contains(v(40));
        let mut oracle = Oracle::new(&mut bug, 0.0);
        let out =
            generalized_binary_reduction(&inst, &order, &mut oracle, &GbrConfig::default())
                .unwrap();
        assert!(out.solution.contains(v(40)));
        assert_eq!(out.solution.len(), 24, "minimal suffix {{40..63}}");
        // One search: ~log2(n) + constant probes.
        assert!(
            oracle.calls() <= 2 * (n as u64).ilog2() as u64 + 8,
            "too many predicate calls: {}",
            oracle.calls()
        );
    }

    #[test]
    fn all_msa_strategies_reduce() {
        let inst = chain_instance(10);
        let order = crate::closure_size_order(&inst.cnf);
        for strategy in MsaStrategy::ALL {
            let mut bug = |s: &VarSet| s.contains(v(7));
            let config = GbrConfig {
                msa_strategy: strategy,
                ..GbrConfig::default()
            };
            let out = generalized_binary_reduction(&inst, &order, &mut bug, &config).unwrap();
            assert!(out.solution.contains(v(7)), "{strategy:?}");
            assert!(inst.cnf.eval(&out.solution), "{strategy:?}");
        }
    }
}
