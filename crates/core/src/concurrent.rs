//! The thread-safe probe path: concurrent predicates, a sharded probe
//! memo, and the speculative [`ProbeScheduler`] behind parallel GBR.
//!
//! The paper's wall time is dominated by tool invocations (≈33 s per
//! decompile+compile), and GBR's binary search issues them one at a time.
//! Probes of *disjoint candidates* are independent, though: while the
//! search waits for the probe of prefix `D^∪_mid`, the probes it would
//! issue next — for either outcome of the pending one — can already run on
//! other cores. This module provides the machinery:
//!
//! * [`ConcurrentPredicate`] — a `Sync` probe path (`&self`, not
//!   `&mut self`) so one predicate can serve many worker threads. Tool
//!   oracles implement it by being pure per probe (each probe builds its
//!   own candidate; nothing is mutated).
//! * [`ShardedMemo`] — a striped concurrent cache keyed by candidate
//!   subset. Workers share hits without a global lock; in-flight entries
//!   are claimed so a subset is only ever probed once.
//! * [`ProbeScheduler`] — a work queue + worker pool with epoch-style
//!   cancellation: speculation that becomes irrelevant after the search
//!   narrows is dropped before it runs (in-flight probes finish and still
//!   populate the memo, which is harmless for a deterministic predicate).
//!
//! Everything is `std`-only (scoped threads, mutexes, condvars), matching
//! the eval harness's pool style.

use crate::keyed::KeyedMap;
use lbr_logic::VarSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// The outcome of one probe: the predicate verdict plus the measured size
/// of the candidate (so traces don't need a second pass over the input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Whether the failure is still induced (the predicate verdict).
    pub outcome: bool,
    /// Size of the tested candidate (variable count, or a custom metric
    /// such as serialized bytes).
    pub size: u64,
}

/// A black-box predicate that may be probed from many threads at once.
///
/// This is the thread-safe sibling of [`Predicate`](crate::Predicate):
/// `probe` takes `&self`, so implementations must be pure per probe —
/// each call builds and tests its own candidate without mutating shared
/// state. Deterministic implementations (the same input always yields the
/// same outcome) are required for speculative probing to be invisible.
pub trait ConcurrentPredicate: Sync {
    /// Tests the candidate subset, returning the verdict and its size.
    fn probe(&self, input: &VarSet) -> Probe;
}

impl<F: Fn(&VarSet) -> bool + Sync> ConcurrentPredicate for F {
    fn probe(&self, input: &VarSet) -> Probe {
        Probe {
            outcome: self(input),
            size: input.len() as u64,
        }
    }
}

/// A probe-outcome cache that outlives a single reduction run — the
/// interface a persistent (disk-backed, cross-job) oracle cache exposes
/// to the pipeline.
///
/// Implementations sit *beneath* the per-run bookkeeping: a hit replaces
/// the tool invocation only, so logical predicate-call counts, traces,
/// and results are bit-identical whether the cache is cold or warm. Keys
/// are candidate subsets; implementations must only be shared between
/// runs whose predicate is the same pure function (callers namespace by
/// input + oracle identity).
pub trait ProbeCache: Sync {
    /// Returns the remembered probe for this candidate, if any.
    fn lookup(&self, key: &VarSet) -> Option<Probe>;
    /// Remembers a freshly executed probe.
    fn store(&self, key: &VarSet, probe: Probe);
}

/// The per-key state inside a memo shard.
#[derive(Debug)]
struct Slot<V> {
    /// `None` while the probe is in flight (claimed but not finished).
    value: Option<V>,
    /// Whether the owning algorithm ever asked for this key (as opposed
    /// to it only being probed speculatively).
    demanded: bool,
}

#[derive(Debug)]
struct Shard<V> {
    map: Mutex<KeyedMap<Slot<V>>>,
    ready: Condvar,
}

/// What [`ShardedMemo::claim_or_get`] found.
pub enum ClaimResult<V> {
    /// The value is ready; the flag says whether this was the key's first
    /// demand.
    Done(V, bool),
    /// Another thread is computing it; wait with [`ShardedMemo::wait`].
    InFlight(bool),
    /// The caller claimed the key and must compute and
    /// [`fulfill`](ShardedMemo::fulfill) it.
    Claimed,
}

/// Totals from a final scan of the memo (see [`ShardedMemo::scan`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoScan {
    /// Distinct keys ever claimed (each was computed exactly once).
    pub entries: u64,
    /// Keys that were demanded at least once.
    pub demanded: u64,
}

/// A sharded (striped) concurrent memo keyed by candidate subset.
///
/// Keys are bucketed by [`VarSet::fingerprint`]; each shard is an
/// independent mutex + condvar, so threads probing different subsets
/// almost never contend. A key is *claimed* before it is computed, which
/// gives the memo run-once semantics: concurrent requests for the same
/// subset run the underlying computation exactly once and everyone else
/// blocks until the value lands. That makes hit/miss counts deterministic
/// under parallelism — the miss count is exactly the number of distinct
/// keys computed, regardless of thread interleaving.
#[derive(Debug)]
pub struct ShardedMemo<V> {
    shards: Vec<Shard<V>>,
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> ShardedMemo<V> {
    /// Creates a memo with `shards` stripes (rounded up to a power of
    /// two).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedMemo {
            shards: (0..n)
                .map(|_| Shard {
                    map: Mutex::new(KeyedMap::new()),
                    ready: Condvar::new(),
                })
                .collect(),
            mask: (n - 1) as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: u64) -> &Shard<V> {
        &self.shards[(fp & self.mask) as usize]
    }

    /// Returns the cached value for `key`, computing it with `f` if absent.
    ///
    /// Exactly one caller computes each distinct key; concurrent callers
    /// for the same key block until the value is ready. The computing call
    /// counts as a miss, every other call (cached or waited) as a hit.
    pub fn get_or_compute(&self, key: &VarSet, f: impl FnOnce() -> V) -> V {
        let shard = self.shard(key.fingerprint());
        {
            let mut map = shard.map.lock().expect("memo shard");
            if let Some(slot) = map.get_mut(key) {
                slot.demanded = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(v) = &slot.value {
                    return v.clone();
                }
                return Self::wait_in(shard, map, key);
            }
            map.insert_if_absent(
                key,
                Slot {
                    value: None,
                    demanded: true,
                },
            );
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let v = f();
        self.fulfill(key, v.clone());
        v
    }

    /// Claims `key` for speculative computation. Returns `false` if it is
    /// already claimed or done (speculation is then redundant).
    pub fn try_claim(&self, key: &VarSet) -> bool {
        let mut map = self
            .shard(key.fingerprint())
            .map
            .lock()
            .expect("memo shard");
        map.insert_if_absent(
            key,
            Slot {
                value: None,
                demanded: false,
            },
        )
    }

    /// Looks up `key` on behalf of the owning algorithm, marking it
    /// demanded. The caller must compute and [`fulfill`] on
    /// [`ClaimResult::Claimed`] and [`wait`](ShardedMemo::wait) on
    /// [`ClaimResult::InFlight`].
    pub fn claim_or_get(&self, key: &VarSet) -> ClaimResult<V> {
        let mut map = self
            .shard(key.fingerprint())
            .map
            .lock()
            .expect("memo shard");
        if let Some(slot) = map.get_mut(key) {
            let first = !slot.demanded;
            slot.demanded = true;
            return match &slot.value {
                Some(v) => ClaimResult::Done(v.clone(), first),
                None => ClaimResult::InFlight(first),
            };
        }
        map.insert_if_absent(
            key,
            Slot {
                value: None,
                demanded: true,
            },
        );
        ClaimResult::Claimed
    }

    /// Publishes the value for a previously claimed key and wakes waiters.
    pub fn fulfill(&self, key: &VarSet, value: V) {
        let shard = self.shard(key.fingerprint());
        let mut map = shard.map.lock().expect("memo shard");
        let slot = map.get_mut(key).expect("fulfill without claim");
        slot.value = Some(value);
        shard.ready.notify_all();
    }

    /// Blocks until the in-flight value for `key` is published.
    pub fn wait(&self, key: &VarSet) -> V {
        let shard = self.shard(key.fingerprint());
        let map = shard.map.lock().expect("memo shard");
        Self::wait_in(shard, map, key)
    }

    fn wait_in(shard: &Shard<V>, mut map: MutexGuard<'_, KeyedMap<Slot<V>>>, key: &VarSet) -> V {
        loop {
            if let Some(v) = map.get(key).and_then(|slot| slot.value.clone()) {
                return v;
            }
            map = shard.ready.wait(map).expect("memo shard");
        }
    }

    /// Probes served without computing (cached or waited-for).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that computed a fresh value (= distinct keys demanded via
    /// [`get_or_compute`](Self::get_or_compute)).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Scans all shards for entry totals. Call after all workers have
    /// quiesced (e.g. once the owning thread scope has joined).
    pub fn scan(&self) -> MemoScan {
        let mut scan = MemoScan::default();
        for shard in &self.shards {
            let map = shard.map.lock().expect("memo shard");
            for (_, slot) in map.iter() {
                scan.entries += 1;
                if slot.demanded {
                    scan.demanded += 1;
                }
            }
        }
        scan
    }
}

#[derive(Debug, Default)]
struct SpecQueue {
    items: VecDeque<VarSet>,
    shutdown: bool,
}

/// How a demanded probe was satisfied (see [`ProbeScheduler::demand`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandKind {
    /// Speculation had already finished the probe: zero latency.
    Ready,
    /// The probe was in flight; the caller blocked until it finished.
    Waited,
    /// Nothing had started it; the caller ran the tool itself.
    Computed,
}

/// The result of a demanded probe.
#[derive(Debug, Clone, Copy)]
pub struct Demanded {
    /// The probe verdict and size.
    pub probe: Probe,
    /// Whether this was the first demand of the subset (deterministic
    /// miss accounting: first demand = miss, repeats = hits).
    pub first_demand: bool,
    /// How the demand was satisfied (timing-dependent).
    pub kind: DemandKind,
}

/// A speculative probe scheduler: a sharded memo, a retargetable work
/// queue, and stat counters. Worker threads run [`worker`] and execute
/// queued speculations; the owning (search) thread calls [`demand`] for
/// the probes the algorithm actually needs and [`speculate`] to retarget
/// the queue whenever the search narrows.
///
/// Retargeting *replaces* the queue: stale speculation that has not been
/// claimed yet is cancelled outright. Claimed probes finish and publish
/// into the memo — wasted wall time at worst, never wrong results, since
/// the predicate is deterministic and keyed by subset.
///
/// [`worker`]: ProbeScheduler::worker
/// [`demand`]: ProbeScheduler::demand
/// [`speculate`]: ProbeScheduler::speculate
pub struct ProbeScheduler<'p> {
    predicate: &'p dyn ConcurrentPredicate,
    cache: ShardedMemo<Probe>,
    queue: Mutex<SpecQueue>,
    work: Condvar,
    executed: AtomicU64,
}

impl<'p> ProbeScheduler<'p> {
    /// Creates a scheduler over `predicate` with `shards` memo stripes.
    pub fn new(predicate: &'p dyn ConcurrentPredicate, shards: usize) -> Self {
        ProbeScheduler {
            predicate,
            cache: ShardedMemo::new(shards),
            queue: Mutex::new(SpecQueue::default()),
            work: Condvar::new(),
            executed: AtomicU64::new(0),
        }
    }

    /// The worker loop: claim queued speculations and execute them.
    /// Returns when [`shutdown`](Self::shutdown) is called.
    pub fn worker(&self) {
        loop {
            let candidate = {
                let mut q = self.queue.lock().expect("speculation queue");
                loop {
                    if let Some(c) = q.items.pop_front() {
                        break c;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.work.wait(q).expect("speculation queue");
                }
            };
            if self.cache.try_claim(&candidate) {
                let probe = self.predicate.probe(&candidate);
                self.executed.fetch_add(1, Ordering::Relaxed);
                self.cache.fulfill(&candidate, probe);
            }
        }
    }

    /// Replaces the speculation queue with `candidates` (front of the list
    /// runs first). An empty list cancels all pending speculation.
    pub fn speculate(&self, candidates: Vec<VarSet>) {
        let mut q = self.queue.lock().expect("speculation queue");
        q.items.clear();
        q.items.extend(candidates);
        drop(q);
        self.work.notify_all();
    }

    /// Demands the probe of `input` for the search itself: returns the
    /// cached result, waits for an in-flight one, or computes it inline.
    pub fn demand(&self, input: &VarSet) -> Demanded {
        match self.cache.claim_or_get(input) {
            ClaimResult::Done(probe, first_demand) => Demanded {
                probe,
                first_demand,
                kind: DemandKind::Ready,
            },
            ClaimResult::InFlight(first_demand) => Demanded {
                probe: self.cache.wait(input),
                first_demand,
                kind: DemandKind::Waited,
            },
            ClaimResult::Claimed => {
                let probe = self.predicate.probe(input);
                self.executed.fetch_add(1, Ordering::Relaxed);
                self.cache.fulfill(input, probe);
                Demanded {
                    probe,
                    first_demand: true,
                    kind: DemandKind::Computed,
                }
            }
        }
    }

    /// Stops the workers once the queue drains (call before joining).
    pub fn shutdown(&self) {
        self.queue.lock().expect("speculation queue").shutdown = true;
        self.work.notify_all();
    }

    /// Total predicate executions (useful + speculative).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Scans the memo for entry/demand totals (call after joining).
    pub fn scan(&self) -> MemoScan {
        self.cache.scan()
    }
}

/// Where a GBR run's probe verdicts come from.
///
/// The speculative driver behind
/// [`generalized_binary_reduction_with_source`](crate::generalized_binary_reduction_with_source)
/// only ever *demands* probes in the exact sequential order and
/// *retargets* a speculation frontier; it does not care whether the
/// answers are computed by local worker threads ([`ProbeScheduler`]) or
/// by remote worker nodes pulling slices of the frontier over the wire.
/// Any implementation must uphold the scheduler's contract:
///
/// * `demand` is keyed by subset and run-once — repeat demands of the
///   same subset return the identical [`Probe`] with
///   `first_demand == false`;
/// * `demand` must make progress even with zero background workers
///   (compute inline when nobody has claimed the probe);
/// * `speculate` replaces the pending frontier; an empty list cancels
///   all speculation that has not been claimed yet.
///
/// Under that contract the demanded probe sequence — and therefore the
/// reduction's output, predicate-call count, and trace digest — is
/// bit-identical for every implementation.
pub trait VerdictSource: Sync {
    /// Demands the probe of `input` for the search itself (blocking).
    fn demand(&self, input: &VarSet) -> Demanded;
    /// Replaces the speculation frontier (front of the list runs first).
    fn speculate(&self, candidates: Vec<VarSet>);
    /// Total predicate executions so far (useful + speculative).
    fn executed(&self) -> u64;
    /// Entry/demand totals of the verdict memo.
    fn scan(&self) -> MemoScan;
}

impl VerdictSource for ProbeScheduler<'_> {
    fn demand(&self, input: &VarSet) -> Demanded {
        ProbeScheduler::demand(self, input)
    }

    fn speculate(&self, candidates: Vec<VarSet>) {
        ProbeScheduler::speculate(self, candidates)
    }

    fn executed(&self) -> u64 {
        ProbeScheduler::executed(self)
    }

    fn scan(&self) -> MemoScan {
        ProbeScheduler::scan(self)
    }
}

/// A factory for remote (or otherwise externally scheduled)
/// [`VerdictSource`]s, one per reduction run.
///
/// The cluster coordinator implements this: `open_frontier` registers a
/// job's shared probe frontier with the worker fan-out and returns the
/// driver-facing handle. The `local` predicate is the run's own oracle
/// stack — the source must fall back to it so a run makes progress with
/// zero connected workers and can take over probes from dead ones.
pub trait ProbeDistributor: Sync {
    /// Opens the verdict source for one reduction run. Dropping the
    /// returned source ends the run's distribution (workers pulling from
    /// it see an empty frontier).
    fn open_frontier<'a>(
        &'a self,
        local: &'a dyn ConcurrentPredicate,
    ) -> Box<dyn VerdictSource + 'a>;

    /// A hint for how wide the speculation frontier should be (0 = let
    /// the caller pick; typically `connected_workers × batch`).
    fn frontier_width(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_logic::Var;
    use std::sync::atomic::AtomicUsize;

    fn set(universe: usize, vars: &[u32]) -> VarSet {
        VarSet::from_iter_with_universe(universe, vars.iter().map(|&v| Var::new(v)))
    }

    #[test]
    fn memo_computes_each_key_once() {
        let memo: ShardedMemo<u32> = ShardedMemo::new(8);
        let computed = AtomicUsize::new(0);
        let key = set(10, &[1, 3]);
        for _ in 0..3 {
            let v = memo.get_or_compute(&key, || {
                computed.fetch_add(1, Ordering::Relaxed);
                7
            });
            assert_eq!(v, 7);
        }
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.hits(), 2);
    }

    #[test]
    fn memo_run_once_under_contention() {
        let memo: ShardedMemo<usize> = ShardedMemo::new(4);
        let computed = AtomicUsize::new(0);
        let keys: Vec<VarSet> = (0..16u32).map(|i| set(64, &[i, i + 32])).collect();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for (i, k) in keys.iter().enumerate() {
                        let v = memo.get_or_compute(k, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            i
                        });
                        assert_eq!(v, i);
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), keys.len());
        assert_eq!(memo.misses(), keys.len() as u64);
        assert_eq!(memo.hits(), (8 * keys.len()) as u64 - keys.len() as u64);
    }

    #[test]
    fn scheduler_speculation_feeds_demand() {
        let predicate = |s: &VarSet| s.len() >= 2;
        let scheduler = ProbeScheduler::new(&predicate, 8);
        let a = set(8, &[0, 1]);
        let b = set(8, &[2]);
        std::thread::scope(|s| {
            s.spawn(|| scheduler.worker());
            scheduler.speculate(vec![a.clone(), b.clone()]);
            let da = scheduler.demand(&a);
            let db = scheduler.demand(&b);
            assert!(da.probe.outcome);
            assert!(!db.probe.outcome);
            assert!(da.first_demand && db.first_demand);
            // Repeat demand: never first again, always ready.
            let again = scheduler.demand(&a);
            assert!(!again.first_demand);
            assert_eq!(again.kind, DemandKind::Ready);
            scheduler.shutdown();
        });
        let scan = scheduler.scan();
        assert_eq!(scan.entries, 2);
        assert_eq!(scan.demanded, 2);
        assert_eq!(scheduler.executed(), 2);
    }

    #[test]
    fn scheduler_cancellation_drops_unclaimed_work() {
        let predicate = |_: &VarSet| true;
        let scheduler = ProbeScheduler::new(&predicate, 8);
        // No workers: queued speculation never executes.
        scheduler.speculate(vec![set(8, &[0]), set(8, &[1])]);
        scheduler.speculate(Vec::new()); // cancel
        let d = scheduler.demand(&set(8, &[2]));
        assert_eq!(d.kind, DemandKind::Computed);
        assert_eq!(scheduler.executed(), 1);
        let scan = scheduler.scan();
        assert_eq!(scan.entries, 1, "cancelled speculation never ran");
        scheduler.shutdown();
    }
}
