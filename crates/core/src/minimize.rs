//! Local minimization of a reduction result.
//!
//! Theorem 4.5 guarantees GBR's output is *locally minimal* for graph
//! constraints with a well-picked order: no proper subset satisfies the
//! predicate. For general constraints (or a poorly picked order) the
//! output may admit further shrinking; this module provides the greedy
//! postpass that tries to remove each variable — together with everything
//! the validity model then forces out — while the predicate keeps failing.
//!
//! The pass costs at most `|solution|` extra predicate invocations per
//! sweep, so it trades tool runs for output size — an ablation knob the
//! harness exposes.

use crate::{Instance, Predicate};
use lbr_logic::{Var, VarOrder, VarSet};

/// Statistics from a [`minimize_solution`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Predicate invocations spent.
    pub predicate_calls: u64,
    /// Variables removed from the solution.
    pub removed: usize,
    /// Full sweeps performed.
    pub sweeps: usize,
}

/// Greedily shrinks a valid failure-inducing solution while keeping it
/// valid and failing. Sweeps in reverse `<` order until a fixpoint.
///
/// For each candidate variable `v`, the pass computes the *largest* valid
/// sub-solution without `v` (downward repair: removing `v` may force
/// removing its dependents) and keeps it if the predicate still fails.
///
/// The result is locally minimal: removing any single variable (with its
/// forced consequences) either breaks validity or loses the failure.
pub fn minimize_solution(
    instance: &Instance,
    order: &VarOrder,
    predicate: &mut dyn Predicate,
    solution: &VarSet,
) -> (VarSet, MinimizeStats) {
    let mut current = solution.clone();
    let mut stats = MinimizeStats::default();
    loop {
        stats.sweeps += 1;
        let mut changed = false;
        let mut candidates: Vec<Var> = current.iter().collect();
        order.sort(&mut candidates);
        candidates.reverse();
        for v in candidates {
            if !current.contains(v) {
                continue; // already dropped by an earlier shrink
            }
            if let Some(smaller) = shrink_without(instance, order, &current, v) {
                if smaller.len() < current.len() {
                    stats.predicate_calls += 1;
                    if predicate.test(&smaller) {
                        stats.removed += current.len() - smaller.len();
                        current = smaller;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return (current, stats);
        }
    }
}

/// The *largest* valid subset of `solution` that excludes `v`, computed by
/// downward repair: drop `v`, then while some clause is violated, drop one
/// of its kept antecedents (removal can only ever fix clauses whose
/// negative literals are still kept). Returns `None` when a violated
/// clause has no removable antecedent — `v` is not removable at all.
fn shrink_without(
    instance: &Instance,
    order: &VarOrder,
    solution: &VarSet,
    v: Var,
) -> Option<VarSet> {
    let mut kept = solution.clone();
    kept.remove(v);
    loop {
        let violated = instance.cnf.clauses().iter().find(|c| !c.eval(&kept));
        let Some(clause) = violated else {
            debug_assert!(instance.cnf.eval(&kept));
            return Some(kept);
        };
        // Violated means: every negative literal's variable is kept and no
        // positive literal's variable is. Repair by removing the <-largest
        // kept antecedent (largest = least fundamental under the order).
        let removable = clause.negatives().filter(|w| kept.contains(*w));
        let pick = removable.max_by_key(|&w| order.rank(w))?;
        kept.remove(pick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_logic::{Clause, Cnf};

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn removes_unneeded_variables() {
        // No constraints; solution carries dead weight.
        let instance = Instance::over_all_vars(Cnf::new(5));
        let order = VarOrder::natural(5);
        let solution = VarSet::full(5);
        let mut bug = |s: &VarSet| s.contains(v(1)) && s.contains(v(3));
        let (min, stats) = minimize_solution(&instance, &order, &mut bug, &solution);
        assert_eq!(min.iter().collect::<Vec<_>>(), vec![v(1), v(3)]);
        assert!(stats.removed >= 3);
    }

    #[test]
    fn respects_validity_closure() {
        // 0 ⇒ 1 ⇒ 2; bug needs 0, so 1 and 2 must stay.
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        let instance = Instance::over_all_vars(cnf);
        let order = VarOrder::natural(4);
        let solution = VarSet::full(4);
        let mut bug = |s: &VarSet| s.contains(v(0));
        let (min, _) = minimize_solution(&instance, &order, &mut bug, &solution);
        assert_eq!(min.len(), 3);
        assert!(min.contains(v(0)) && min.contains(v(1)) && min.contains(v(2)));
        assert!(!min.contains(v(3)));
    }

    #[test]
    fn fixes_suboptimal_gbr_result() {
        // The Section 4.4 suboptimality example: GBR with order (c, b, a)
        // returns {b, c}; minimization recovers {b}.
        let (c, b, a) = (v(0), v(1), v(2));
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([a, b], [c]));
        cnf.add_clause(Clause::edge(c, b));
        let instance = Instance::over_all_vars(cnf);
        let order = VarOrder::from_permutation(vec![c, b, a]);
        let mut suboptimal = VarSet::empty(3);
        suboptimal.insert(b);
        suboptimal.insert(c);
        let mut bug = |s: &VarSet| s.contains(b);
        let (min, _) = minimize_solution(&instance, &order, &mut bug, &suboptimal);
        assert_eq!(min.iter().collect::<Vec<_>>(), vec![b]);
    }

    #[test]
    fn already_minimal_is_untouched() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        let instance = Instance::over_all_vars(cnf);
        let order = VarOrder::natural(2);
        let mut solution = VarSet::empty(2);
        solution.insert(v(0));
        solution.insert(v(1));
        let mut bug = |s: &VarSet| s.contains(v(0));
        let (min, stats) = minimize_solution(&instance, &order, &mut bug, &solution);
        assert_eq!(min, solution);
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn result_is_locally_minimal() {
        let mut cnf = Cnf::new(6);
        cnf.add_clause(Clause::implication([v(0), v(1)], [v(2)]));
        cnf.add_clause(Clause::edge(v(3), v(4)));
        let instance = Instance::over_all_vars(cnf.clone());
        let order = VarOrder::natural(6);
        let mut bug = |s: &VarSet| s.contains(v(0)) && s.contains(v(4));
        let solution = VarSet::full(6);
        let (min, _) = minimize_solution(&instance, &order, &mut bug, &solution);
        let bug2 = |s: &VarSet| s.contains(v(0)) && s.contains(v(4));
        assert!(bug2(&min) && cnf.eval(&min));
        for x in min.clone().iter() {
            let mut smaller = min.clone();
            smaller.remove(x);
            assert!(
                !cnf.eval(&smaller) || !bug2(&smaller),
                "removing {x} keeps a valid failing input"
            );
        }
    }
}
