//! Reduction-over-time traces (the data behind Figure 8b).

/// One predicate invocation, as recorded by
/// [`Oracle`](crate::Oracle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// 1-based invocation index.
    pub call: u64,
    /// Wall-clock seconds since the oracle was created.
    pub wall_secs: f64,
    /// Modeled seconds (`call × cost_per_call`).
    pub modeled_secs: f64,
    /// Size of the tested sub-input (variable count, or a custom metric).
    pub size: u64,
    /// Whether the failure was still induced.
    pub success: bool,
}

/// The full history of a reduction run.
///
/// The paper's Figure 8b observes that a reduction can be *stopped at any
/// point* and the smallest failure-inducing input seen so far used; the
/// trace supports that query via [`ReductionTrace::best_at_modeled_time`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReductionTrace {
    points: Vec<TracePoint>,
}

impl ReductionTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an invocation record.
    pub fn record(
        &mut self,
        call: u64,
        wall_secs: f64,
        modeled_secs: f64,
        size: u64,
        success: bool,
    ) {
        self.points.push(TracePoint {
            call,
            wall_secs,
            modeled_secs,
            size,
            success,
        });
    }

    /// All recorded points in invocation order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of recorded invocations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The size of the smallest sub-input that still induced the failure.
    pub fn best_failing_size(&self) -> Option<u64> {
        self.points
            .iter()
            .filter(|p| p.success)
            .map(|p| p.size)
            .min()
    }

    /// The smallest failing size among invocations whose *modeled* time is
    /// at most `t` seconds. `None` if no failing input was seen by then.
    pub fn best_at_modeled_time(&self, t: f64) -> Option<u64> {
        self.points
            .iter()
            .filter(|p| p.success && p.modeled_secs <= t)
            .map(|p| p.size)
            .min()
    }

    /// The smallest failing size among the first `calls` invocations.
    pub fn best_at_call(&self, calls: u64) -> Option<u64> {
        self.points
            .iter()
            .filter(|p| p.success && p.call <= calls)
            .map(|p| p.size)
            .min()
    }

    /// Total modeled seconds consumed (last point), 0 if empty.
    pub fn total_modeled_secs(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.modeled_secs)
    }

    /// Total wall seconds consumed (last point), 0 if empty.
    pub fn total_wall_secs(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.wall_secs)
    }

    /// A 64-bit FNV-1a digest of the trace's *deterministic* content:
    /// call indices, candidate sizes, verdicts, and modeled times. Wall
    /// times are excluded, so two runs of the same logical probe sequence
    /// — sequential vs speculative, in-process vs through the service
    /// daemon — digest identically, which is how CI asserts end-to-end
    /// determinism without shipping whole traces around.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |w: u64| {
            for byte in w.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for p in &self.points {
            mix(p.call);
            mix(p.size);
            mix(p.success as u64);
            mix(p.modeled_secs.to_bits());
        }
        h
    }

    /// Whether two traces recorded the *same logical probe sequence*:
    /// identical call indices, candidate sizes, verdicts, and modeled
    /// times, point for point. Wall times are ignored, exactly as in
    /// [`digest`](Self::digest) — but unlike the digest this cannot
    /// collide, so differential harnesses use it to assert bit-identity
    /// between a run and its sequential baseline.
    pub fn same_probe_sequence(&self, other: &ReductionTrace) -> bool {
        self.points.len() == other.points.len()
            && self.points.iter().zip(&other.points).all(|(a, b)| {
                a.call == b.call
                    && a.size == b.size
                    && a.success == b.success
                    && a.modeled_secs.to_bits() == b.modeled_secs.to_bits()
            })
    }

    /// Merges another trace after this one, shifting its call indices and
    /// times so the merged trace reads as one sequential run. Used when a
    /// benchmark requires several reduction searches (one per distinct
    /// error), as the paper's long-running cases do.
    pub fn append_sequential(&mut self, other: &ReductionTrace) {
        let call0 = self.points.last().map_or(0, |p| p.call);
        let wall0 = self.total_wall_secs();
        let modeled0 = self.total_modeled_secs();
        for p in &other.points {
            self.points.push(TracePoint {
                call: call0 + p.call,
                wall_secs: wall0 + p.wall_secs,
                modeled_secs: modeled0 + p.modeled_secs,
                size: p.size,
                success: p.success,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReductionTrace {
        let mut t = ReductionTrace::new();
        t.record(1, 0.1, 33.0, 100, true);
        t.record(2, 0.2, 66.0, 40, false);
        t.record(3, 0.3, 99.0, 60, true);
        t
    }

    #[test]
    fn best_queries() {
        let t = sample();
        assert_eq!(t.best_failing_size(), Some(60));
        assert_eq!(t.best_at_modeled_time(33.0), Some(100));
        assert_eq!(t.best_at_modeled_time(99.0), Some(60));
        assert_eq!(t.best_at_modeled_time(1.0), None);
        assert_eq!(t.best_at_call(2), Some(100));
    }

    #[test]
    fn totals() {
        let t = sample();
        assert!((t.total_modeled_secs() - 99.0).abs() < 1e-9);
        assert!((t.total_wall_secs() - 0.3).abs() < 1e-9);
        assert!(ReductionTrace::new().total_modeled_secs() == 0.0);
    }

    #[test]
    fn sequential_append_shifts() {
        let mut a = sample();
        let b = sample();
        a.append_sequential(&b);
        assert_eq!(a.len(), 6);
        let p = a.points()[3];
        assert_eq!(p.call, 4);
        assert!((p.modeled_secs - 132.0).abs() < 1e-9);
        assert!((p.wall_secs - 0.4).abs() < 1e-9);
    }
}
