//! The Hitting Set reduction behind Theorem 4.2.
//!
//! The Input Reduction Problem is NP-complete because the Hitting Set
//! Problem (Karp, 1972) reduces to it: given a collection of sets
//! `S₁, …, Sₖ` over a universe `U` and a budget `k`, build the instance
//! whose variables are `U`, whose validity model is trivial (`R_I = true`),
//! and whose predicate accepts a subset iff it intersects every `Sᵢ`. A
//! failure-inducing sub-input of size ≤ k is then exactly a hitting set of
//! size ≤ k. This module provides the constructive mapping (useful both as
//! documentation and as a stress generator for the algorithms).

use crate::{Instance, Predicate};
use lbr_logic::{Cnf, Var, VarSet};

/// A Hitting Set instance: sets over the universe `0..universe`.
#[derive(Debug, Clone)]
pub struct HittingSet {
    /// Universe size.
    pub universe: usize,
    /// The sets that must each be hit.
    pub sets: Vec<VarSet>,
}

impl HittingSet {
    /// Creates an instance from member lists.
    pub fn new(universe: usize, sets: Vec<Vec<u32>>) -> Self {
        HittingSet {
            universe,
            sets: sets
                .into_iter()
                .map(|s| VarSet::from_iter_with_universe(universe, s.into_iter().map(Var::new)))
                .collect(),
        }
    }

    /// Whether `candidate` hits every set.
    pub fn is_hitting(&self, candidate: &VarSet) -> bool {
        self.sets.iter().all(|s| !s.is_disjoint(candidate))
    }

    /// Maps to an Input Reduction Problem instance: trivial validity model,
    /// predicate = "hits every set". The predicate is monotone, as
    /// Definition 4.1 requires.
    pub fn to_reduction_instance(&self) -> (Instance, impl FnMut(&VarSet) -> bool + '_) {
        let instance = Instance::new(VarSet::full(self.universe), Cnf::new(self.universe));
        let sets = &self.sets;
        let predicate = move |candidate: &VarSet| sets.iter().all(|s| !s.is_disjoint(candidate));
        (instance, predicate)
    }
}

/// Verifies the reduction's correctness on a candidate: the predicate of
/// the mapped instance accepts exactly the hitting sets.
pub fn reduction_is_faithful(hs: &HittingSet, candidate: &VarSet) -> bool {
    let (_, mut pred) = hs.to_reduction_instance();
    Predicate::test(&mut pred, candidate) == hs.is_hitting(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generalized_binary_reduction, GbrConfig};
    use lbr_logic::VarOrder;

    #[test]
    fn mapping_is_faithful() {
        let hs = HittingSet::new(5, vec![vec![0, 1], vec![1, 2], vec![3]]);
        for bits in 0..32u32 {
            let mut c = VarSet::empty(5);
            for i in 0..5 {
                if bits >> i & 1 == 1 {
                    c.insert(Var::new(i));
                }
            }
            assert!(reduction_is_faithful(&hs, &c));
        }
    }

    #[test]
    fn gbr_finds_a_hitting_set() {
        let hs = HittingSet::new(6, vec![vec![0, 1], vec![1, 2], vec![4, 5]]);
        let (instance, mut pred) = hs.to_reduction_instance();
        let order = VarOrder::natural(6);
        let out = generalized_binary_reduction(&instance, &order, &mut pred, &GbrConfig::default())
            .expect("hitting sets exist");
        assert!(hs.is_hitting(&out.solution));
        // {1, 4} (or {1, 5}) is optimal; GBR should find size 2.
        assert_eq!(out.solution.len(), 2);
    }

    #[test]
    fn predicate_is_monotone() {
        let hs = HittingSet::new(4, vec![vec![0], vec![2, 3]]);
        let small = VarSet::from_iter_with_universe(4, [Var::new(0), Var::new(2)]);
        let big = VarSet::full(4);
        assert!(hs.is_hitting(&small));
        assert!(hs.is_hitting(&big));
        let tiny = VarSet::from_iter_with_universe(4, [Var::new(0)]);
        assert!(!hs.is_hitting(&tiny));
    }
}
