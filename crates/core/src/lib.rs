//! Input-reduction algorithms from *Logical Bytecode Reduction* (PLDI 2021)
//! and its predecessors.
//!
//! The crate provides, over the propositional substrate of
//! [`lbr_logic`]:
//!
//! * [`Instance`] / [`Predicate`] — the Input Reduction Problem
//!   `(I, P, R_I)` of Definition 4.1, with an instrumenting [`Oracle`] that
//!   records the reduction-over-time traces behind Figure 8,
//! * [`generalized_binary_reduction`] — **GBR** (Algorithm 1), which
//!   interleaves black-box predicate runs with approximate minimal
//!   satisfying assignments and only ever tests *valid* sub-inputs,
//! * [`generalized_binary_reduction_speculative`] — the same search with
//!   a speculative parallel probe pool ([`ProbeScheduler`] over a
//!   [`ConcurrentPredicate`]): bit-identical results, shorter wall time,
//!   and separate useful/speculative/critical-path accounting
//!   ([`ProbeStats`]),
//! * [`binary_reduction`] — the graph-closure Binary Reduction of J-Reduce
//!   (ESEC/FSE 2019), the paper's main baseline,
//! * [`ddmin`] — Zeller & Hildebrandt's algorithm with validity-aware
//!   outcomes,
//! * [`lossy_encode`] / [`lossy_graph`] — the two lossy encodings of
//!   Section 4.3 that approximate general clauses with graph edges,
//! * [`DepGraph`] — dependency graphs, Tarjan SCCs and closure lists,
//! * [`closure_size_order`] — the "pick `<` well" heuristic Theorem 4.5
//!   needs for locally minimal solutions,
//! * [`HittingSet`] — the constructive NP-completeness mapping of
//!   Theorem 4.2.
//!
//! # Quick example
//!
//! ```
//! use lbr_core::{closure_size_order, generalized_binary_reduction, GbrConfig, Instance};
//! use lbr_logic::{Clause, Cnf, Var, VarSet};
//!
//! // Validity: keeping 0 requires 1; the bug needs 1.
//! let mut cnf = Cnf::new(4);
//! cnf.add_clause(Clause::edge(Var::new(0), Var::new(1)));
//! let order = closure_size_order(&cnf);
//! let instance = Instance::over_all_vars(cnf);
//! let mut bug = |s: &VarSet| s.contains(Var::new(1));
//! let out = generalized_binary_reduction(&instance, &order, &mut bug, &GbrConfig::default())?;
//! assert_eq!(out.solution.len(), 1);
//! # Ok::<(), lbr_core::GbrError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod binary;
mod concurrent;
mod ddmin;
mod fault;
mod gbr;
mod graph;
mod hitting;
mod input;
mod keyed;
mod lossy;
mod minimize;
mod orders;
mod problem;
mod stack;
mod stats;
mod strategy;
mod trace;

pub use binary::{binary_reduction, BinaryReductionError, BinaryReductionOutcome};
pub use concurrent::{
    ClaimResult, ConcurrentPredicate, DemandKind, Demanded, MemoScan, Probe, ProbeCache,
    ProbeDistributor, ProbeScheduler, ShardedMemo, VerdictSource,
};
pub use ddmin::{ddmin, DdminStats, TestOutcome};
pub use fault::{FaultInjector, FaultPlan};
pub use gbr::{
    build_progression, generalized_binary_reduction, generalized_binary_reduction_controlled,
    generalized_binary_reduction_portfolio, generalized_binary_reduction_portfolio_controlled,
    generalized_binary_reduction_speculative, generalized_binary_reduction_speculative_controlled,
    generalized_binary_reduction_with_source, EngineChoice, GbrCheckpoint, GbrConfig, GbrControl,
    GbrError, GbrOutcome, PortfolioRun, PropagationMode, SpeculationConfig, SpeculativeRun,
};
pub use graph::{Closure, DepGraph};
pub use hitting::{reduction_is_faithful, HittingSet};
pub use input::{CoarseModel, Input, InputModel, InputOracle, ModelStats};
pub use keyed::KeyedMap;
pub use lossy::{lossy_encode, lossy_graph, lossy_is_sound, LossyGraph, LossyPick};
pub use minimize::{minimize_solution, MinimizeStats};
pub use orders::{
    activity_order, closure_size_order, closure_sizes, closure_sizes_of_graph, history_order,
    natural_order, probe_activity,
};
pub use problem::{Instance, Oracle, Predicate};
pub use stack::{
    CacheLayer, CoverageTrace, FaultyCache, LatencyLayer, MemoryCache, OracleLayer, OracleStack,
    StatsLayer, TraceLayer, ValidationLayer,
};
pub use stats::{CacheStats, ProbeStats};
pub use strategy::{
    OrderChoice, PipelineError, ReductionStrategy, RunOptions, ServiceHooks, StrategyCaps,
    StrategyOutput, StrategyRegistry,
};
pub use trace::{ReductionTrace, TracePoint};
