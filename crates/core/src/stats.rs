//! The one set of probe/cache statistics types every frontend shares.
//!
//! Before this module, the reduce CSV, the eval JSON, and the daemon's
//! `stats` endpoint each carried their own copy of the same counters
//! under drifting names. Now there is exactly one [`ProbeStats`] (per-run
//! probe accounting) and one [`CacheStats`] (cross-run persistent-cache
//! accounting), and each renders itself through
//! [`fields`](ProbeStats::fields) — so a CSV header, a JSON key, and a
//! stats-endpoint field for the same counter are always the same string.

/// Probe accounting for one reduction run.
///
/// Sequential runs have trivial speculation columns (nothing speculative,
/// critical path = fresh tool runs); speculative parallel runs fill in
/// wasted vs blocking probes. The memo columns are the per-run oracle
/// memo's hit/miss totals, deterministic at every thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Logical probes demanded by the search (equals sequential calls).
    pub useful_calls: u64,
    /// Probes executed speculatively whose result was never demanded.
    pub speculative_calls: u64,
    /// Demanded probes that were not already finished when demanded (the
    /// search blocked on them: waited for a worker or ran the tool
    /// itself). Ranges from `useful_calls` (no useful speculation) down
    /// towards the number of main-loop iterations (perfect speculation).
    pub critical_path_calls: u64,
    /// Demanded probes answered from the per-run memo without a fresh
    /// tool run (repeat demands of a subset; deterministic).
    pub memo_hits: u64,
    /// Distinct subsets demanded (each ran the tool once; deterministic).
    pub memo_misses: u64,
}

impl ProbeStats {
    /// Probe accounting for a run without speculation: every probe is
    /// useful, nothing is speculative, and the critical path is every
    /// probe that had to run the tool (all of them without a memo, the
    /// misses with one).
    pub fn sequential(calls: u64, memo_hits: u64, memo_misses: u64) -> ProbeStats {
        ProbeStats {
            useful_calls: calls,
            speculative_calls: 0,
            critical_path_calls: if memo_hits + memo_misses == calls {
                memo_misses
            } else {
                calls
            },
            memo_hits,
            memo_misses,
        }
    }

    /// The serialized field set, in canonical order. Every frontend (CSV
    /// columns, JSON keys, the daemon's per-job stats) renders exactly
    /// these names, so the same counter never appears under two spellings.
    pub fn fields(&self) -> [(&'static str, u64); 5] {
        [
            ("cache_hits", self.memo_hits),
            ("cache_misses", self.memo_misses),
            ("useful_calls", self.useful_calls),
            ("speculative_calls", self.speculative_calls),
            ("critical_path_calls", self.critical_path_calls),
        ]
    }
}

/// Counter snapshot of a cross-run probe cache (the persistent oracle
/// cache of the service crate, or any other [`ProbeCache`]
/// implementation that keeps totals).
///
/// [`ProbeCache`]: crate::ProbeCache
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total entries currently held.
    pub entries: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (the caller then runs the tool).
    pub misses: u64,
    /// Hits on entries loaded from disk — proof that cached work survived
    /// a restart.
    pub warm_hits: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (`0.0` with no lookups).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// The serialized field set, in canonical order (see
    /// [`ProbeStats::fields`]).
    pub fn fields(&self) -> [(&'static str, u64); 4] {
        [
            ("entries", self.entries),
            ("hits", self.hits),
            ("misses", self.misses),
            ("warm_hits", self.warm_hits),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stats_with_memo() {
        let s = ProbeStats::sequential(10, 4, 6);
        assert_eq!(s.useful_calls, 10);
        assert_eq!(s.speculative_calls, 0);
        assert_eq!(s.critical_path_calls, 6, "misses are the critical path");
        assert_eq!(s.memo_hits, 4);
    }

    #[test]
    fn sequential_stats_without_memo() {
        let s = ProbeStats::sequential(10, 0, 0);
        assert_eq!(s.critical_path_calls, 10, "every probe ran the tool");
    }

    #[test]
    fn cache_hit_rate() {
        let empty = CacheStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
        let s = CacheStats {
            entries: 5,
            hits: 3,
            misses: 1,
            warm_hits: 2,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.fields()[3], ("warm_hits", 2));
    }
}
