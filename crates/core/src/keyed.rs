//! The one keyed-cache implementation every probe memo shares.
//!
//! Probe caches throughout the workspace — the per-run memo of
//! [`Oracle`](crate::Oracle), the striped concurrent
//! [`ShardedMemo`](crate::ShardedMemo), and the disk-backed persistent
//! cache of the service crate — all key values by a candidate subset
//! ([`VarSet`]) and all want the same trick: bucket by the cheap 64-bit
//! [`VarSet::fingerprint`] so the hot hit path is one multiply-xor pass
//! over the words (instead of `SipHash` over the full word vector), and
//! resolve the rare fingerprint collisions by full set equality inside the
//! bucket. [`KeyedMap`] is that trick, written once.

use lbr_logic::VarSet;
use std::collections::HashMap;

/// A map keyed by candidate subsets, bucketed by fingerprint with exact
/// equality resolving collisions. Semantically identical to a
/// `HashMap<VarSet, V>`; faster on the hit path and clone-free on lookup.
#[derive(Debug, Clone)]
pub struct KeyedMap<V> {
    buckets: HashMap<u64, Vec<(VarSet, V)>>,
    len: usize,
}

impl<V> Default for KeyedMap<V> {
    fn default() -> Self {
        KeyedMap::new()
    }
}

impl<V> KeyedMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        KeyedMap {
            buckets: HashMap::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value stored for `key`, if any.
    pub fn get(&self, key: &VarSet) -> Option<&V> {
        self.buckets
            .get(&key.fingerprint())?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Mutable access to the value stored for `key`, if any.
    pub fn get_mut(&mut self, key: &VarSet) -> Option<&mut V> {
        self.buckets
            .get_mut(&key.fingerprint())?
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether `key` has an entry.
    pub fn contains(&self, key: &VarSet) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` for `key` if absent; returns `false` (and leaves
    /// the existing value untouched) when the key is already present.
    /// First-write-wins matches what probe caches want: the predicate is
    /// pure, so duplicates are necessarily equal.
    pub fn insert_if_absent(&mut self, key: &VarSet, value: V) -> bool {
        let bucket = self.buckets.entry(key.fingerprint()).or_default();
        if bucket.iter().any(|(k, _)| k == key) {
            return false;
        }
        bucket.push((key.clone(), value));
        self.len += 1;
        true
    }

    /// Iterates over all entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&VarSet, &V)> {
        self.buckets
            .values()
            .flat_map(|bucket| bucket.iter().map(|(k, v)| (k, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_logic::Var;

    fn set(universe: usize, vars: &[u32]) -> VarSet {
        VarSet::from_iter_with_universe(universe, vars.iter().map(|&v| Var::new(v)))
    }

    #[test]
    fn insert_get_and_first_write_wins() {
        let mut map: KeyedMap<u32> = KeyedMap::new();
        let a = set(8, &[1, 3]);
        let b = set(8, &[2]);
        assert!(map.get(&a).is_none());
        assert!(map.insert_if_absent(&a, 7));
        assert!(!map.insert_if_absent(&a, 8), "duplicate insert is a no-op");
        assert!(map.insert_if_absent(&b, 9));
        assert_eq!(map.get(&a), Some(&7));
        assert_eq!(map.get(&b), Some(&9));
        assert_eq!(map.len(), 2);
        *map.get_mut(&b).unwrap() = 10;
        assert_eq!(map.get(&b), Some(&10));
    }

    #[test]
    fn iter_sees_every_entry() {
        let mut map: KeyedMap<usize> = KeyedMap::new();
        let keys: Vec<VarSet> = (0..16u32).map(|i| set(32, &[i])).collect();
        for (i, k) in keys.iter().enumerate() {
            map.insert_if_absent(k, i);
        }
        let mut seen: Vec<usize> = map.iter().map(|(_, &v)| v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }
}
