//! The classic `ddmin` algorithm (Zeller & Hildebrandt, 2002) with
//! validity-aware outcomes.
//!
//! `ddmin` partitions the atoms of the input into `n` chunks and tests each
//! chunk and each complement, doubling granularity when stuck. Running a
//! sub-input has three outcomes — the paper's "the failure still happens,
//! the failure is gone, and don't know" — captured by [`TestOutcome`]. The
//! "don't know" outcome is the *test-case validity problem*: for inputs
//! with internal dependencies most subsets are invalid, which is why ddmin
//! "tends to produce disappointing results" on bytecode and why the paper's
//! logical modeling wins.

use lbr_logic::VarSet;

/// Outcome of running the tool on a sub-input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestOutcome {
    /// The failure is still induced (ddmin's *fail*, ✘).
    Fail,
    /// The program behaves correctly (ddmin's *pass*, ✔).
    Pass,
    /// The sub-input is invalid — nothing was learned (*don't know*, ?).
    Unresolved,
}

/// Statistics of a [`ddmin`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DdminStats {
    /// Total test invocations.
    pub tests: u64,
    /// Tests that came back [`TestOutcome::Unresolved`].
    pub unresolved: u64,
}

/// Runs ddmin over `atoms` (disjoint groups of variables forming the
/// reduction units), returning a 1-minimal failing subset of the atoms as a
/// single variable set.
///
/// `test` receives the union of the candidate atoms. The initial input (all
/// atoms) must fail; if it does not, the full input is returned unchanged.
///
/// # Examples
///
/// ```
/// use lbr_core::{ddmin, TestOutcome};
/// use lbr_logic::{Var, VarSet};
/// // Eight singleton atoms; the failure needs atoms 1 and 5.
/// let atoms: Vec<VarSet> = (0..8)
///     .map(|i| VarSet::from_iter_with_universe(8, [Var::new(i)]))
///     .collect();
/// let (result, _stats) = ddmin(&atoms, 8, |s| {
///     if s.contains(Var::new(1)) && s.contains(Var::new(5)) {
///         TestOutcome::Fail
///     } else {
///         TestOutcome::Pass
///     }
/// });
/// assert_eq!(result.len(), 2);
/// ```
pub fn ddmin<F>(atoms: &[VarSet], universe: usize, mut test: F) -> (VarSet, DdminStats)
where
    F: FnMut(&VarSet) -> TestOutcome,
{
    let mut stats = DdminStats::default();
    let mut current: Vec<VarSet> = atoms.to_vec();
    let mut run = |s: &VarSet, stats: &mut DdminStats| {
        stats.tests += 1;
        let o = test(s);
        if o == TestOutcome::Unresolved {
            stats.unresolved += 1;
        }
        o
    };

    if current.is_empty() {
        return (VarSet::empty(universe), stats);
    }
    let mut n = 2usize.min(current.len());

    'outer: loop {
        let chunks = partition(&current, n);
        // Reduce to subset.
        for chunk in &chunks {
            let candidate = union_of(chunk, universe);
            if run(&candidate, &mut stats) == TestOutcome::Fail {
                current = chunk.clone();
                n = 2.min(current.len().max(1));
                if current.len() <= 1 {
                    break 'outer;
                }
                continue 'outer;
            }
        }
        // Reduce to complement.
        if n > 2 || chunks.len() > 2 {
            for (i, _) in chunks.iter().enumerate() {
                let complement: Vec<VarSet> = chunks
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .flat_map(|(_, c)| c.clone())
                    .collect();
                let candidate = union_of(&complement, universe);
                if run(&candidate, &mut stats) == TestOutcome::Fail {
                    current = complement;
                    n = (n - 1).max(2).min(current.len());
                    continue 'outer;
                }
            }
        }
        // Increase granularity.
        if n >= current.len() {
            break;
        }
        n = (2 * n).min(current.len());
    }
    (union_of(&current, universe), stats)
}

/// Splits a list of atoms into `n` nearly equal chunks.
fn partition(atoms: &[VarSet], n: usize) -> Vec<Vec<VarSet>> {
    let n = n.min(atoms.len()).max(1);
    let base = atoms.len() / n;
    let extra = atoms.len() % n;
    let mut out = Vec::with_capacity(n);
    let mut idx = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        out.push(atoms[idx..idx + size].to_vec());
        idx += size;
    }
    out
}

fn union_of(atoms: &[VarSet], universe: usize) -> VarSet {
    let mut s = VarSet::empty(universe);
    for a in atoms {
        s.union_with(a);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbr_logic::{Clause, Cnf, Var};

    fn singletons(n: usize) -> Vec<VarSet> {
        (0..n as u32)
            .map(|i| VarSet::from_iter_with_universe(n, [Var::new(i)]))
            .collect()
    }

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn finds_single_atom() {
        let atoms = singletons(16);
        let (r, stats) = ddmin(&atoms, 16, |s| {
            if s.contains(v(9)) {
                TestOutcome::Fail
            } else {
                TestOutcome::Pass
            }
        });
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![v(9)]);
        assert!(stats.tests > 0);
    }

    #[test]
    fn finds_pair_across_chunks() {
        let atoms = singletons(8);
        let (r, _) = ddmin(&atoms, 8, |s| {
            if s.contains(v(0)) && s.contains(v(7)) {
                TestOutcome::Fail
            } else {
                TestOutcome::Pass
            }
        });
        assert!(r.contains(v(0)) && r.contains(v(7)));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn validity_unresolved_counts() {
        // Validity model: 0 ⇒ 1. Most subsets invalid.
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        let atoms = singletons(4);
        let (r, stats) = ddmin(&atoms, 4, |s| {
            if !cnf.eval(s) {
                TestOutcome::Unresolved
            } else if s.contains(v(0)) {
                TestOutcome::Fail
            } else {
                TestOutcome::Pass
            }
        });
        assert!(r.contains(v(0)) && r.contains(v(1)));
        assert!(
            stats.unresolved > 0,
            "dependencies should cause don't-knows"
        );
    }

    #[test]
    fn empty_atoms() {
        let (r, _) = ddmin(&[], 4, |_| TestOutcome::Pass);
        assert!(r.is_empty());
    }

    #[test]
    fn one_minimality() {
        // The result must be 1-minimal: removing any single atom passes.
        let atoms = singletons(12);
        let needed = [v(2), v(5), v(11)];
        let mut check = |s: &VarSet| {
            if needed.iter().all(|&x| s.contains(x)) {
                TestOutcome::Fail
            } else {
                TestOutcome::Pass
            }
        };
        let (r, _) = ddmin(&atoms, 12, &mut check);
        assert_eq!(r.len(), 3);
        for x in r.clone().iter() {
            let mut smaller = r.clone();
            smaller.remove(x);
            assert_eq!(check(&smaller), TestOutcome::Pass);
        }
    }

    #[test]
    fn partition_sizes() {
        let atoms = singletons(7);
        let chunks = partition(&atoms, 3);
        assert_eq!(chunks.len(), 3);
        let sizes: Vec<usize> = chunks.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
    }

    #[test]
    fn non_failing_input_returns_everything() {
        let atoms = singletons(4);
        let (r, _) = ddmin(&atoms, 4, |_| TestOutcome::Pass);
        assert_eq!(r.len(), 4);
    }
}
