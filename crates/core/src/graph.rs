//! Dependency graphs, strongly connected components, and closures.
//!
//! J-Reduce (Kalhauge & Palsberg, ESEC/FSE 2019) models validity with a
//! dependency graph: an edge `x → y` means "keeping x requires keeping y",
//! and the valid sub-inputs are exactly the transitive closures. This module
//! provides the graph, Tarjan's SCC algorithm, per-node closures, and the
//! topologically ordered closure list that Binary Reduction consumes.

use lbr_logic::{Clause, ClauseShape, Cnf, Var, VarSet};

/// A dependency graph over variables `0..n`.
///
/// # Examples
///
/// ```
/// use lbr_core::DepGraph;
/// use lbr_logic::Var;
/// let mut g = DepGraph::new(3);
/// g.add_edge(Var::new(0), Var::new(1));
/// g.add_edge(Var::new(1), Var::new(2));
/// let c = g.closure_of([Var::new(0)]);
/// assert_eq!(c.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DepGraph {
    n: usize,
    adj: Vec<Vec<Var>>,
    required: VarSet,
}

impl DepGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DepGraph {
            n,
            adj: vec![Vec::new(); n],
            required: VarSet::empty(n),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the dependency `from → to` ("keeping `from` requires `to`").
    pub fn add_edge(&mut self, from: Var, to: Var) {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "node out of range"
        );
        if from != to && !self.adj[from.index()].contains(&to) {
            self.adj[from.index()].push(to);
        }
    }

    /// Marks a node as required in every sub-input.
    pub fn require(&mut self, v: Var) {
        self.required.insert(v);
    }

    /// The set of required nodes.
    pub fn required(&self) -> &VarSet {
        &self.required
    }

    /// Successors of `v`.
    pub fn successors(&self, v: Var) -> &[Var] {
        &self.adj[v.index()]
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// The transitive closure of a seed set (the seed, all required nodes'
    /// closure excluded — pure reachability from `seed`).
    pub fn closure_of<I: IntoIterator<Item = Var>>(&self, seed: I) -> VarSet {
        let mut out = VarSet::empty(self.n);
        let mut stack: Vec<Var> = seed.into_iter().collect();
        while let Some(v) = stack.pop() {
            if out.insert(v) {
                stack.extend(self.adj[v.index()].iter().copied());
            }
        }
        out
    }

    /// Whether `sub` is dependency-closed (every edge from a member stays
    /// inside) and contains all required nodes.
    pub fn is_closed(&self, sub: &VarSet) -> bool {
        if !self.required.is_subset(sub) {
            return false;
        }
        sub.iter()
            .all(|v| self.adj[v.index()].iter().all(|t| sub.contains(*t)))
    }

    /// Converts to the equivalent CNF (edges become implications, required
    /// nodes become positive units) — a *graph constraint* in the paper's
    /// terminology.
    pub fn to_cnf(&self) -> Cnf {
        let mut cnf = Cnf::new(self.n);
        for v in 0..self.n {
            for &t in &self.adj[v] {
                cnf.add_clause(Clause::edge(Var::new(v as u32), t));
            }
        }
        for r in self.required.iter() {
            cnf.add_clause(Clause::unit(lbr_logic::Lit::pos(r)));
        }
        cnf
    }

    /// Builds a graph from a CNF consisting solely of graph constraints.
    ///
    /// Returns `None` if any clause is not an edge or a positive unit — use
    /// [`lossy_encode`](crate::lossy_encode) first for general CNF.
    pub fn from_graph_cnf(cnf: &Cnf) -> Option<Self> {
        let mut g = DepGraph::new(cnf.num_vars());
        for c in cnf.clauses() {
            match c.shape() {
                ClauseShape::Edge { from, to } => g.add_edge(from, to),
                ClauseShape::UnitPositive(v) => g.require(v),
                _ => return None,
            }
        }
        Some(g)
    }

    /// Computes strongly connected components with Tarjan's algorithm.
    ///
    /// Components are returned in *reverse topological order of the
    /// condensation*: if component `A` has an edge to component `B`
    /// (A depends on B), then `B` appears before `A`. This is the order a
    /// progression wants — every prefix of closures is dependency-closed.
    pub fn sccs(&self) -> Vec<Vec<Var>> {
        Tarjan::run(self)
    }

    /// The topologically ordered closure list (Step 2–3 of the J-Reduce
    /// recipe): one entry per SCC, in dependency order, each entry being the
    /// full transitive closure of that SCC.
    pub fn closure_list(&self) -> Vec<Closure> {
        self.sccs()
            .into_iter()
            .map(|scc| {
                let set = self.closure_of(scc.iter().copied());
                Closure { scc, set }
            })
            .collect()
    }
}

/// One entry of a closure list: a strongly connected component and its full
/// transitive closure.
#[derive(Debug, Clone)]
pub struct Closure {
    /// The members of the SCC itself.
    pub scc: Vec<Var>,
    /// The transitive closure of the SCC (includes the SCC).
    pub set: VarSet,
}

/// Iterative Tarjan SCC.
struct Tarjan<'g> {
    graph: &'g DepGraph,
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<Var>,
    next_index: u32,
    out: Vec<Vec<Var>>,
}

const UNVISITED: u32 = u32::MAX;

impl<'g> Tarjan<'g> {
    fn run(graph: &'g DepGraph) -> Vec<Vec<Var>> {
        let n = graph.len();
        let mut t = Tarjan {
            graph,
            index: vec![UNVISITED; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            out: Vec::new(),
        };
        for v in 0..n {
            if t.index[v] == UNVISITED {
                t.visit(Var::new(v as u32));
            }
        }
        // Tarjan emits components in reverse topological order of the
        // condensation (callees before callers), which is what we want.
        t.out
    }

    fn visit(&mut self, root: Var) {
        // Explicit stack: (node, next-successor-index).
        let mut work: Vec<(Var, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut si)) = work.last_mut() {
            if *si == 0 {
                self.index[v.index()] = self.next_index;
                self.lowlink[v.index()] = self.next_index;
                self.next_index += 1;
                self.stack.push(v);
                self.on_stack[v.index()] = true;
            }
            if let Some(&w) = self.graph.adj[v.index()].get(*si) {
                *si += 1;
                if self.index[w.index()] == UNVISITED {
                    work.push((w, 0));
                } else if self.on_stack[w.index()] {
                    self.lowlink[v.index()] = self.lowlink[v.index()].min(self.index[w.index()]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    self.lowlink[parent.index()] =
                        self.lowlink[parent.index()].min(self.lowlink[v.index()]);
                }
                if self.lowlink[v.index()] == self.index[v.index()] {
                    let mut comp = Vec::new();
                    loop {
                        let w = self.stack.pop().expect("scc stack non-empty");
                        self.on_stack[w.index()] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    self.out.push(comp);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    fn paper_class_graph() -> DepGraph {
        // Section 2 class-level graph: M -> A, M -> I, A -> I, A -> B,
        // B -> I, I -> B.  Nodes: M=0, A=1, B=2, I=3.
        let mut g = DepGraph::new(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(0), v(3));
        g.add_edge(v(1), v(3));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(3));
        g.add_edge(v(3), v(2));
        g.require(v(0));
        g
    }

    #[test]
    fn closure_reaches_everything_from_m() {
        // The paper's point: the only closure containing M is all classes.
        let g = paper_class_graph();
        let c = g.closure_of([v(0)]);
        assert_eq!(c.len(), 4);
        assert!(g.is_closed(&c));
    }

    #[test]
    fn sccs_group_cycle() {
        let g = paper_class_graph();
        let sccs = g.sccs();
        // {B, I} form a cycle; M and A are singletons.
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().any(|s| s == &vec![v(2), v(3)]));
        // Dependency order: {B,I} first, then A, then M.
        assert_eq!(sccs.last().expect("nonempty"), &vec![v(0)]);
    }

    #[test]
    fn closure_list_prefixes_are_closed() {
        let g = paper_class_graph();
        let list = g.closure_list();
        let mut acc = VarSet::empty(g.len());
        for closure in &list {
            acc.union_with(&closure.set);
            // Prefix unions are dependency-closed (ignoring `required`).
            for m in acc.iter() {
                for &t in g.successors(m) {
                    assert!(acc.contains(t));
                }
            }
        }
        assert_eq!(acc.len(), 4);
    }

    #[test]
    fn cnf_roundtrip() {
        let g = paper_class_graph();
        let cnf = g.to_cnf();
        assert!(cnf.clauses().iter().all(|c| c.is_graph_constraint()));
        let g2 = DepGraph::from_graph_cnf(&cnf).expect("graph cnf");
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.required(), g.required());
    }

    #[test]
    fn from_cnf_rejects_general_clauses() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([v(0), v(1)], [v(2)]));
        assert!(DepGraph::from_graph_cnf(&cnf).is_none());
    }

    #[test]
    fn is_closed_checks_required() {
        let g = paper_class_graph();
        let empty = VarSet::empty(4);
        assert!(!g.is_closed(&empty)); // M required
        let all = VarSet::full(4);
        assert!(g.is_closed(&all));
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        let n = 50_000;
        let mut g = DepGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(v(i as u32), v(i as u32 + 1));
        }
        let sccs = g.sccs();
        assert_eq!(sccs.len(), n);
        // Dependency order: the sink (n-1) first.
        assert_eq!(sccs[0], vec![v(n as u32 - 1)]);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = DepGraph::new(1);
        g.add_edge(v(0), v(0));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.sccs().len(), 1);
    }
}
