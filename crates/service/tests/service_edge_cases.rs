//! Edge cases around the daemon's failure surfaces: jobs cancelled before
//! a worker ever picks them up, garbage on the wire, and checkpoint files
//! truncated mid-write. The common bar for all of them: the daemon stays
//! up, and whatever it does finish is bit-identical to the in-process
//! reference — degraded modes may cost time, never correctness.

use lbr_classfile::write_program;
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{run_reduction_with, ReductionReport, RunOptions};
use lbr_service::{load_checkpoint, Client, Daemon, DaemonConfig, Json};
use lbr_workload::{generate, WorkloadConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lbr-edge-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn make_container(dir: &Path, seed: u64, classes: usize) -> (PathBuf, Vec<u8>) {
    let config = WorkloadConfig {
        seed,
        classes,
        interfaces: (classes / 3).max(2),
        plant: BugSet::decompiler_a().kinds().to_vec(),
        ..WorkloadConfig::default()
    };
    let program = generate(&config);
    let bytes = write_program(&program);
    let path = dir.join(format!("bench-{seed}.lbrc"));
    std::fs::write(&path, &bytes).expect("write container");
    (path, bytes)
}

fn baseline(bytes: &[u8]) -> ReductionReport {
    let program = lbr_classfile::read_program(bytes).expect("read container");
    let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
    assert!(oracle.is_failing(), "fixture must trigger decompiler a");
    run_reduction_with(
        &program,
        &oracle,
        "logical/greedy",
        33.0,
        &RunOptions::default(),
    )
    .expect("baseline reduction")
}

fn start_daemon(
    dir: &Path,
    workers: usize,
) -> (Client, std::thread::JoinHandle<std::io::Result<()>>) {
    let daemon = Daemon::start(DaemonConfig::new(dir, workers)).expect("start daemon");
    let addr = daemon.local_addr().to_string();
    let handle = std::thread::spawn(move || daemon.run());
    let client = Client::connect(addr);
    assert!(
        client.wait_ready(Duration::from_secs(5)),
        "daemon never came up"
    );
    (client, handle)
}

fn submit_spec(input: &Path, output: &Path, extra: &[(&str, Json)]) -> Json {
    let mut fields = vec![
        ("input", Json::str(input.display().to_string())),
        ("decompiler", Json::str("a")),
        ("output", Json::str(output.display().to_string())),
    ];
    fields.extend(extra.iter().cloned());
    Json::obj_from(fields)
}

/// A job cancelled while still queued never runs at all: no output file,
/// no predicate calls billed to it, and the worker that was busy at the
/// time finishes its own job untouched.
#[test]
fn cancelling_a_queued_job_prevents_it_from_ever_starting() {
    let dir = scratch("cancel-queued");
    let (input, bytes) = make_container(&dir, 41, 14);
    let reference = baseline(&bytes);
    let state = dir.join("state");
    let (client, handle) = start_daemon(&state, 1);

    // Occupy the only worker with a slowed-down job, then queue a second
    // job behind it and cancel that one before a worker can exist for it.
    let slow_out = dir.join("slow.lbrc");
    let slow = client
        .submit(&submit_spec(
            &input,
            &slow_out,
            &[("probe_latency_micros", Json::count(2_000))],
        ))
        .unwrap();
    let doomed_out = dir.join("doomed.lbrc");
    let doomed = client
        .submit(&submit_spec(&input, &doomed_out, &[]))
        .unwrap();
    client.cancel(doomed).unwrap();

    let cancelled = client.wait_result(doomed).unwrap();
    assert_eq!(cancelled.str_field("status"), Some("cancelled"));
    assert_eq!(
        cancelled.u64_field("predicate_calls").unwrap_or(0),
        0,
        "a never-started job must not have run any probes"
    );

    // The job in front of it is unaffected and still bit-identical.
    let finished = client.wait_result(slow).unwrap();
    assert_eq!(finished.str_field("status"), Some("done"));
    assert_eq!(
        std::fs::read(&slow_out).unwrap(),
        write_program(&reference.reduced)
    );
    assert!(
        !doomed_out.exists(),
        "a cancelled queued job must write nothing"
    );

    let stats = client.stats().unwrap();
    let jobs = stats.get("jobs").expect("stats.jobs");
    assert_eq!(jobs.u64_field("done"), Some(1));
    assert_eq!(jobs.u64_field("cancelled"), Some(1));

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Raw garbage on the wire gets a structured `{"ok": false}` answer, and
/// the daemon keeps serving well-formed requests on later connections.
#[test]
fn corrupt_json_on_the_wire_is_rejected_without_killing_the_daemon() {
    let dir = scratch("corrupt-wire");
    let state = dir.join("state");
    let (client, handle) = start_daemon(&state, 1);
    let addr = std::fs::read_to_string(state.join("daemon.addr")).unwrap();

    for garbage in [
        "this is { not json\n",
        "{\"op\": \"submit\", \"spec\": \n", // truncated mid-document
        "{\"op\": \"submit\"} trailing garbage\n", // valid prefix, junk suffix
    ] {
        let mut stream = TcpStream::connect(addr.trim()).unwrap();
        stream.write_all(garbage.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let response = Json::parse(&line).expect("daemon must answer garbage with JSON");
        assert_eq!(response.bool_field("ok"), Some(false), "for {garbage:?}");
        assert!(
            response.str_field("error").unwrap().contains("bad request"),
            "for {garbage:?}: {line}"
        );
    }

    // The daemon survived all three and still does real work.
    assert!(
        client.ping(),
        "daemon must still answer after garbage requests"
    );
    let (input, bytes) = make_container(&dir, 42, 10);
    let reference = baseline(&bytes);
    let out = dir.join("out.lbrc");
    let id = client.submit(&submit_spec(&input, &out, &[])).unwrap();
    let result = client.wait_result(id).unwrap();
    assert_eq!(result.str_field("status"), Some("done"));
    assert_eq!(
        std::fs::read(&out).unwrap(),
        write_program(&reference.reduced)
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint truncated mid-write (power loss between `write` and
/// `rename` would normally prevent this, but disks lie) must not wedge the
/// restarted daemon or corrupt the result: the daemon discards the
/// unreadable checkpoint, reruns the job from scratch, and determinism
/// guarantees the same reduced bytes.
#[test]
fn truncated_checkpoint_restarts_the_job_and_converges_to_the_same_bytes() {
    let dir = scratch("truncated-ckpt");
    let (input, bytes) = make_container(&dir, 23, 18);
    let reference = baseline(&bytes);
    let state = dir.join("state");
    let (client, handle) = start_daemon(&state, 1);

    let out = dir.join("out.lbrc");
    let id = client
        .submit(&submit_spec(
            &input,
            &out,
            &[("probe_latency_micros", Json::count(1_500))],
        ))
        .unwrap();

    // Wait for the first checkpoint, then take the daemon down mid-job.
    let ckpt = state.join(format!("job-{id}.ckpt"));
    let deadline = Instant::now() + Duration::from_secs(30);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "no checkpoint appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    assert!(!out.exists(), "the interrupted job must not have finished");

    // Simulate the torn write: chop the checkpoint in half and confirm it
    // is now unreadable rather than a silently-valid prefix.
    let full = std::fs::read(&ckpt).unwrap();
    assert!(
        full.len() > 2,
        "checkpoint too small to truncate meaningfully"
    );
    std::fs::write(&ckpt, &full[..full.len() / 2]).unwrap();
    assert!(
        load_checkpoint(&ckpt).is_err(),
        "a half-written checkpoint must read as corrupt, not as data"
    );

    // Restart over the same state directory: the corrupt checkpoint is
    // discarded, the job re-runs from the beginning, and the output still
    // matches the uninterrupted reference bit for bit.
    let (client, handle) = start_daemon(&state, 2);
    let resumed = client.wait_result(id).unwrap();
    assert_eq!(resumed.str_field("status"), Some("done"));
    assert_eq!(
        std::fs::read(&out).unwrap(),
        write_program(&reference.reduced),
        "restart after checkpoint corruption must converge to the same bytes"
    );
    assert_eq!(
        resumed.u64_field("predicate_calls"),
        Some(reference.predicate_calls)
    );
    assert!(!ckpt.exists(), "finished jobs clean up their checkpoint");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
