//! Tests of the event-loop front door: binary framing (including torn,
//! interleaved, and oversize frames), batching with coalescing, admission
//! control (queue-full and per-client sheds with `retry_after_ms`), idle
//! timeouts that spare parked connections, streaming progress events
//! racing cancellation, and the content-addressed result store.

use lbr_classfile::write_program;
use lbr_decompiler::BugSet;
use lbr_service::{
    frame, Client, Connection, Daemon, DaemonConfig, FrameDecoder, Framing, Json, WireFrame,
};
use lbr_workload::{generate, WorkloadConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lbr-async-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn make_container(dir: &Path, seed: u64, classes: usize) -> PathBuf {
    let config = WorkloadConfig {
        seed,
        classes,
        interfaces: (classes / 3).max(2),
        plant: BugSet::decompiler_a().kinds().to_vec(),
        ..WorkloadConfig::default()
    };
    let path = dir.join(format!("bench-{seed}.lbrc"));
    std::fs::write(&path, write_program(&generate(&config))).expect("write container");
    path
}

fn start_daemon(config: DaemonConfig) -> (Client, std::thread::JoinHandle<std::io::Result<()>>) {
    let daemon = Daemon::start(config).expect("start daemon");
    let addr = daemon.local_addr().to_string();
    let handle = std::thread::spawn(move || daemon.run());
    let client = Client::connect(addr);
    assert!(
        client.wait_ready(Duration::from_secs(5)),
        "daemon never came up"
    );
    (client, handle)
}

fn shutdown(client: &Client, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    client.shutdown().expect("shutdown");
    handle.join().expect("daemon thread").expect("daemon run");
}

fn slow_spec(input: &Path, latency_micros: u64) -> Json {
    Json::obj([
        ("input", Json::str(input.display().to_string())),
        ("decompiler", Json::str("a")),
        ("probe_latency_micros", Json::count(latency_micros)),
    ])
}

/// A full queue sheds immediately with `"shed": true` and a positive
/// `retry_after_ms` — it never blocks the submitter.
#[test]
fn queue_full_sheds_with_retry_after() {
    let dir = scratch("shed");
    let input = make_container(&dir, 3, 10);
    let mut config = DaemonConfig::new(dir.join("state"), 1);
    config.queue_capacity = 1;
    let (client, handle) = start_daemon(config);

    // One running + one queued job saturate workers=1, capacity=1;
    // keep submitting until the daemon sheds (the first submit may have
    // been popped already).
    let spec = slow_spec(&input, 30_000);
    let mut shed = None;
    for _ in 0..8 {
        let response = client
            .request(&{
                let Json::Obj(mut fields) = spec.clone() else {
                    unreachable!()
                };
                fields.insert("op".to_owned(), Json::str("submit"));
                Json::Obj(fields)
            })
            .expect("submit request");
        if response.bool_field("ok") == Some(false) {
            shed = Some(response);
            break;
        }
    }
    let shed = shed.expect("queue never filled");
    assert_eq!(shed.bool_field("shed"), Some(true));
    assert_eq!(shed.str_field("error"), Some("queue full"));
    let retry = shed.u64_field("retry_after_ms").expect("retry_after_ms");
    assert!(retry > 0, "retry hint must be positive");

    shutdown(&client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One connection may exceed `max_inflight_per_client` only by being
/// shed; a second connection is unaffected (per-client fairness).
#[test]
fn per_client_cap_sheds_third_job_but_not_other_clients() {
    let dir = scratch("cap");
    let input = make_container(&dir, 5, 10);
    let mut config = DaemonConfig::new(dir.join("state"), 1);
    config.max_inflight_per_client = 2;
    let (client, handle) = start_daemon(config);
    let addr = client.addr().to_string();

    let mut conn = Connection::negotiate(&addr, true).expect("connect");
    let spec = slow_spec(&input, 20_000);
    conn.submit(&spec, false).expect("first submit");
    conn.submit(&spec, false).expect("second submit");
    let third = conn
        .request(&{
            let Json::Obj(mut fields) = spec.clone() else {
                unreachable!()
            };
            fields.insert("op".to_owned(), Json::str("submit"));
            Json::Obj(fields)
        })
        .expect("third submit request");
    assert_eq!(third.bool_field("ok"), Some(false));
    assert_eq!(third.bool_field("shed"), Some(true));
    assert!(third.u64_field("retry_after_ms").is_some());

    // A different client still gets in.
    let mut other = Connection::negotiate(&addr, true).expect("connect other");
    other.submit(&spec, false).expect("other client submit");

    shutdown(&client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A binary frame delivered byte-by-byte across many writes must decode
/// exactly like one delivered whole (no torn-frame misparses).
#[test]
fn torn_binary_frames_reassemble() {
    let dir = scratch("torn");
    let config = DaemonConfig::new(dir.join("state"), 1);
    let (client, handle) = start_daemon(config);

    let mut stream = TcpStream::connect(client.addr()).expect("connect");
    let ping = frame::encode_binary_frame(frame::OP_DOC, &Json::obj([("op", Json::str("ping"))]));
    for byte in &ping {
        stream.write_all(&[*byte]).expect("write byte");
        stream.flush().expect("flush");
    }
    let mut decoder = FrameDecoder::new(1 << 20);
    let response = read_one_frame(&mut stream, &mut decoder);
    let WireFrame::Binary { doc, .. } = response else {
        panic!("expected a binary response to a binary request");
    };
    assert_eq!(doc.bool_field("ok"), Some(true));

    shutdown(&client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A frame larger than `max_frame_bytes` draws one error response and a
/// close — the daemon never buffers unbounded input.
#[test]
fn oversize_frame_is_rejected_and_connection_closed() {
    let dir = scratch("oversize");
    let mut config = DaemonConfig::new(dir.join("state"), 1);
    config.max_frame_bytes = 1024;
    let (client, handle) = start_daemon(config);

    let mut stream = TcpStream::connect(client.addr()).expect("connect");
    let huge = Json::obj([("op", Json::str("x".repeat(4096)))]);
    stream
        .write_all(&frame::encode_binary_frame(frame::OP_DOC, &huge))
        .expect("write oversize");
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .expect("read error response until close");
    assert!(
        text.contains("\"ok\":false"),
        "expected an error response, got {text:?}"
    );

    shutdown(&client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One connection may interleave JSON lines and binary frames request by
/// request; each gets a response in its own framing, with identical
/// content.
#[test]
fn json_and_binary_interleave_on_one_connection() {
    let dir = scratch("interleave");
    let config = DaemonConfig::new(dir.join("state"), 1);
    let (client, handle) = start_daemon(config);

    let mut stream = TcpStream::connect(client.addr()).expect("connect");
    let mut decoder = FrameDecoder::new(1 << 20);

    stream
        .write_all(b"{\"op\":\"stats\"}\n")
        .expect("json stats");
    let json_reply = read_one_frame(&mut stream, &mut decoder);
    assert_eq!(json_reply.framing(), Framing::Json);
    let WireFrame::JsonLine(line) = json_reply else {
        unreachable!()
    };
    let json_doc = Json::parse(&line).expect("parse json stats");

    let stats = frame::encode_binary_frame(frame::OP_DOC, &Json::obj([("op", Json::str("stats"))]));
    stream.write_all(&stats).expect("binary stats");
    let binary_reply = read_one_frame(&mut stream, &mut decoder);
    assert_eq!(binary_reply.framing(), Framing::Binary);
    let WireFrame::Binary {
        doc: binary_doc, ..
    } = binary_reply
    else {
        unreachable!()
    };

    // Value-identical across framings, bar fields that move with time.
    for key in ["ok", "workers", "queue", "jobs"] {
        assert_eq!(
            json_doc.get(key).map(Json::render),
            binary_doc.get(key).map(Json::render),
            "stats field {key} differs between framings"
        );
    }

    shutdown(&client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same job run over JSON framing and binary framing produces
/// byte-for-byte identical reduced containers and identical deterministic
/// report fields.
#[test]
fn binary_and_json_framed_jobs_are_bit_identical() {
    let dir = scratch("framing-ident");
    let input = make_container(&dir, 7, 12);
    let config = DaemonConfig::new(dir.join("state"), 2);
    let (client, handle) = start_daemon(config);
    let addr = client.addr().to_string();

    let run = |binary: bool, out: &Path| -> Json {
        let mut conn = Connection::negotiate(&addr, binary).expect("connect");
        assert_eq!(
            conn.framing(),
            if binary {
                Framing::Binary
            } else {
                Framing::Json
            }
        );
        let spec = Json::obj([
            ("input", Json::str(input.display().to_string())),
            ("decompiler", Json::str("a")),
            ("output", Json::str(out.display().to_string())),
        ]);
        let id = conn.submit(&spec, false).expect("submit");
        conn.wait_result(id).expect("wait result")
    };
    let out_b = dir.join("out-binary.lbrc");
    let out_j = dir.join("out-json.lbrc");
    let result_b = run(true, &out_b);
    let result_j = run(false, &out_j);

    assert_eq!(result_b.str_field("status"), Some("done"));
    for key in ["status", "trace_digest", "predicate_calls", "final_bytes"] {
        assert_eq!(
            result_b.get(key).map(Json::render),
            result_j.get(key).map(Json::render),
            "result field {key} differs between framings"
        );
    }
    assert_eq!(
        std::fs::read(&out_b).expect("binary output"),
        std::fs::read(&out_j).expect("json output"),
        "reduced containers must be byte-identical across framings"
    );

    shutdown(&client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Batch frames: one frame carries many submits, identical submits in the
/// same batch coalesce to one job, and every entry gets its own response.
#[test]
fn batch_submits_coalesce_identical_entries() {
    let dir = scratch("batch");
    let input = make_container(&dir, 9, 10);
    let config = DaemonConfig::new(dir.join("state"), 1);
    let (client, handle) = start_daemon(config);

    let mut conn = Connection::negotiate(client.addr(), true).expect("connect");
    let entry = Json::obj([
        ("op", Json::str("submit")),
        ("input", Json::str(input.display().to_string())),
        ("decompiler", Json::str("a")),
    ]);
    let ping = Json::obj([("op", Json::str("ping"))]);
    let responses = conn
        .batch(&[entry.clone(), ping, entry.clone()])
        .expect("batch");
    assert_eq!(responses.len(), 3);
    let id0 = responses[0].u64_field("id").expect("first id");
    assert_eq!(responses[1].bool_field("ok"), Some(true));
    assert_eq!(responses[2].u64_field("id"), Some(id0), "must coalesce");
    assert_eq!(responses[2].bool_field("coalesced"), Some(true));

    let result = conn.wait_result(id0).expect("result");
    assert_eq!(result.str_field("status"), Some("done"));

    shutdown(&client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancelling a job mid-run while a subscriber streams its progress: the
/// subscriber still gets a clean `terminal` event (status cancelled) and
/// the stream does not hang or tear.
#[test]
fn cancel_races_streaming_progress_events() {
    let dir = scratch("cancel-stream");
    let input = make_container(&dir, 11, 14);
    let config = DaemonConfig::new(dir.join("state"), 1);
    let (client, handle) = start_daemon(config);

    let mut conn = Connection::negotiate(client.addr(), true).expect("connect");
    let id = conn
        .submit(&slow_spec(&input, 5_000), true)
        .expect("submit with events");

    // Let at least one progress event arrive, then cancel from a second
    // connection while events are still streaming.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut saw_progress = false;
    loop {
        assert!(Instant::now() < deadline, "no terminal event arrived");
        let event = conn.next_event().expect("event stream");
        match event.str_field("event") {
            Some("progress") if !saw_progress => {
                saw_progress = true;
                client.cancel(id).expect("cancel mid-stream");
            }
            Some("terminal") => {
                assert_eq!(event.u64_field("id"), Some(id));
                let status = event
                    .get("result")
                    .and_then(|r| r.str_field("status"))
                    .expect("terminal result status")
                    .to_owned();
                assert!(
                    status == "cancelled" || status == "done",
                    "unexpected terminal status {status}"
                );
                break;
            }
            _ => {}
        }
    }
    assert!(saw_progress, "expected streamed progress before terminal");

    shutdown(&client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Idle connections are closed after the timeout; a connection parked on
/// `result --wait` is exempt for as long as the job runs.
#[test]
fn idle_timeout_closes_quiet_but_spares_parked_connections() {
    let dir = scratch("idle");
    let input = make_container(&dir, 13, 12);
    let mut config = DaemonConfig::new(dir.join("state"), 1);
    config.idle_timeout = Duration::from_millis(300);
    let (client, handle) = start_daemon(config);

    // Park a waiter on a job slow enough to outlive several idle windows.
    let addr = client.addr().to_string();
    let parked = std::thread::spawn(move || {
        let mut conn = Connection::negotiate(&addr, true).expect("connect");
        let id = conn
            .submit(&slow_spec(&input, 8_000), false)
            .expect("submit");
        conn.wait_result(id)
            .expect("parked wait must survive idle sweep")
    });

    // A connection that never speaks is closed: reads return EOF.
    let mut quiet = TcpStream::connect(client.addr()).expect("connect quiet");
    quiet
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut buf = [0u8; 16];
    let start = Instant::now();
    let n = quiet.read(&mut buf).expect("idle close, not timeout");
    assert_eq!(n, 0, "daemon should close the idle connection");
    assert!(
        start.elapsed() < Duration::from_secs(9),
        "close must come from the idle sweep"
    );

    let result = parked.join().expect("parked thread");
    assert_eq!(result.str_field("status"), Some("done"));

    shutdown(&client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// With `memoize_results`, an identical resubmission replays the stored
/// result: identical deterministic fields, identical reduced bytes,
/// `"replayed": true`, and a `jobs.replayed` count in stats.
#[test]
fn result_store_replays_identical_jobs() {
    let dir = scratch("memo");
    let input = make_container(&dir, 17, 12);
    let mut config = DaemonConfig::new(dir.join("state"), 1);
    config.memoize_results = true;
    let (client, handle) = start_daemon(config);

    let out1 = dir.join("out1.lbrc");
    let out2 = dir.join("out2.lbrc");
    let spec = |out: &Path| {
        Json::obj([
            ("input", Json::str(input.display().to_string())),
            ("decompiler", Json::str("a")),
            ("output", Json::str(out.display().to_string())),
        ])
    };
    let id1 = client.submit(&spec(&out1)).expect("first submit");
    let first = client.wait_result(id1).expect("first result");
    assert_eq!(first.str_field("status"), Some("done"));
    assert_eq!(first.bool_field("replayed"), None);

    let id2 = client.submit(&spec(&out2)).expect("second submit");
    let second = client.wait_result(id2).expect("second result");
    assert_eq!(second.bool_field("replayed"), Some(true));
    for key in ["status", "trace_digest", "predicate_calls", "final_bytes"] {
        assert_eq!(
            first.get(key).map(Json::render),
            second.get(key).map(Json::render),
            "replayed field {key} differs from the original run"
        );
    }
    assert_eq!(
        std::fs::read(&out1).expect("first output"),
        std::fs::read(&out2).expect("replayed output")
    );
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("jobs").and_then(|j| j.u64_field("replayed")),
        Some(1)
    );

    // A different probe configuration is a different content address —
    // it must run, not replay.
    let out3 = dir.join("out3.lbrc");
    let id3 = client
        .submit(&{
            let Json::Obj(mut fields) = spec(&out3) else {
                unreachable!()
            };
            fields.insert("probe_latency_micros".to_owned(), Json::count(1));
            Json::Obj(fields)
        })
        .expect("third submit");
    let third = client.wait_result(id3).expect("third result");
    assert_eq!(third.bool_field("replayed"), None);
    assert_eq!(
        first.str_field("trace_digest"),
        third.str_field("trace_digest"),
        "determinism across probe configs"
    );

    shutdown(&client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reads exactly one frame off a blocking stream.
fn read_one_frame(stream: &mut TcpStream, decoder: &mut FrameDecoder) -> WireFrame {
    loop {
        if let Some(frame) = decoder.next_frame().expect("well-framed response") {
            return frame;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "connection closed before a full frame");
        decoder.push(&chunk[..n]);
    }
}
