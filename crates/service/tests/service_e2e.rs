//! End-to-end tests of the reduction service: the daemon produces
//! bit-identical results to in-process runs, survives shutdown mid-job by
//! resuming from its checkpoint, shares its persistent cache across jobs
//! and restarts, and sustains concurrent jobs without deadlock.

use lbr_classfile::write_program;
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{
    run_logical_resumable, run_reduction_with, ReductionReport, RunOptions, ServiceHooks,
};
use lbr_logic::MsaStrategy;
use lbr_prng::SplitMix64;
use lbr_service::{namespace_digest, Client, Daemon, DaemonConfig, Json, PersistentOracleCache};
use lbr_workload::{generate, WorkloadConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A fresh scratch directory per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lbr-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A failing benchmark program for decompiler `a`, written as a container.
fn make_container(dir: &Path, seed: u64, classes: usize) -> (PathBuf, Vec<u8>) {
    let config = WorkloadConfig {
        seed,
        classes,
        interfaces: (classes / 3).max(2),
        plant: BugSet::decompiler_a().kinds().to_vec(),
        ..WorkloadConfig::default()
    };
    let program = generate(&config);
    let bytes = write_program(&program);
    let path = dir.join(format!("bench-{seed}.lbrc"));
    std::fs::write(&path, &bytes).expect("write container");
    (path, bytes)
}

/// The in-process reference run the daemon must reproduce exactly.
fn baseline(bytes: &[u8]) -> ReductionReport {
    let program = lbr_classfile::read_program(bytes).expect("read container");
    let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
    assert!(oracle.is_failing(), "fixture must trigger decompiler a");
    run_reduction_with(
        &program,
        &oracle,
        "logical/greedy",
        33.0,
        &RunOptions::default(),
    )
    .expect("baseline reduction")
}

fn start_daemon(
    dir: &Path,
    workers: usize,
) -> (Client, std::thread::JoinHandle<std::io::Result<()>>) {
    let daemon = Daemon::start(DaemonConfig::new(dir, workers)).expect("start daemon");
    let addr = daemon.local_addr().to_string();
    let handle = std::thread::spawn(move || daemon.run());
    let client = Client::connect(addr);
    assert!(
        client.wait_ready(Duration::from_secs(5)),
        "daemon never came up"
    );
    (client, handle)
}

fn submit_spec(input: &Path, output: &Path, extra: &[(&str, Json)]) -> Json {
    let mut fields = vec![
        ("input", Json::str(input.display().to_string())),
        ("decompiler", Json::str("a")),
        ("output", Json::str(output.display().to_string())),
    ];
    fields.extend(extra.iter().cloned());
    Json::obj_from(fields)
}

/// S3: the property test. Random programs, reduced three ways — no
/// external cache, a cold persistent cache, and that cache saved,
/// reloaded, and reused — must agree bit-for-bit on the reduced program,
/// the predicate-call count, the oracle's memo accounting, the probe
/// stats, and the trace digest. The reloaded round must also answer
/// probes from *warm* (disk-loaded) entries.
#[test]
fn property_persistent_cache_is_invisible_to_results() {
    let dir = scratch("prop");
    let mut rng = SplitMix64::seed_from_u64(0x5EED_CAFE);
    for round in 0..4u64 {
        let seed = rng.next_u64();
        let classes = 10 + rng.gen_range(0..10u64) as usize;
        let (_, bytes) = make_container(&dir, seed, classes);
        let program = lbr_classfile::read_program(&bytes).unwrap();
        let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
        if !oracle.is_failing() {
            continue;
        }
        let reference = baseline(&bytes);
        let ns = namespace_digest("a", &bytes);
        let cache_path = dir.join(format!("cache-{round}"));

        let cold_report = {
            let cache = PersistentOracleCache::open(&cache_path).unwrap();
            let scoped = cache.namespaced(ns);
            let report = run_logical_resumable(
                &program,
                &oracle,
                MsaStrategy::GreedyClosure,
                33.0,
                &RunOptions::default(),
                ServiceHooks {
                    cache: Some(&scoped),
                    ..ServiceHooks::default()
                },
            )
            .unwrap();
            cache.save_if_dirty().unwrap();
            assert!(cache.stats().warm_hits == 0, "cold cache cannot be warm");
            report
        };

        let cache = PersistentOracleCache::open(&cache_path).unwrap();
        assert!(!cache.is_empty(), "saved cache must reload its entries");
        let scoped = cache.namespaced(ns);
        let warm_report = run_logical_resumable(
            &program,
            &oracle,
            MsaStrategy::GreedyClosure,
            33.0,
            &RunOptions::default(),
            ServiceHooks {
                cache: Some(&scoped),
                ..ServiceHooks::default()
            },
        )
        .unwrap();
        assert!(
            cache.stats().warm_hits > 0,
            "round {round}: reloaded entries must answer probes"
        );

        for (name, report) in [("cold", &cold_report), ("warm", &warm_report)] {
            assert_eq!(
                write_program(&report.reduced),
                write_program(&reference.reduced),
                "round {round}: {name} cache changed the reduced bytes"
            );
            assert_eq!(
                report.predicate_calls, reference.predicate_calls,
                "round {round}: {name}"
            );
            assert_eq!(
                report.cache_hits(),
                reference.cache_hits(),
                "round {round}: {name}"
            );
            assert_eq!(
                report.cache_misses(),
                reference.cache_misses(),
                "round {round}: {name}"
            );
            assert_eq!(
                report.probe_stats, reference.probe_stats,
                "round {round}: {name}"
            );
            assert_eq!(
                report.trace.digest(),
                reference.trace.digest(),
                "round {round}: {name} cache changed the trace"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The daemon reproduces the in-process reduction exactly — reduced
/// bytes, predicate calls, trace digest — and a second identical job is
/// answered from the shared cache without changing any of them.
#[test]
fn daemon_job_matches_in_process_run() {
    let dir = scratch("match");
    let (input, bytes) = make_container(&dir, 11, 18);
    let reference = baseline(&bytes);
    let state = dir.join("state");
    let (client, handle) = start_daemon(&state, 4);

    let out1 = dir.join("out1.lbrc");
    let id1 = client.submit(&submit_spec(&input, &out1, &[])).unwrap();
    let result1 = client.wait_result(id1).unwrap();
    assert_eq!(result1.str_field("status"), Some("done"));
    assert_eq!(
        result1.u64_field("predicate_calls"),
        Some(reference.predicate_calls)
    );
    assert_eq!(
        result1.str_field("trace_digest"),
        Some(format!("{:016x}", reference.trace.digest()).as_str())
    );
    assert_eq!(
        std::fs::read(&out1).unwrap(),
        write_program(&reference.reduced),
        "daemon output differs from the in-process reduction"
    );

    // Same input, same oracle: the persistent cache answers every probe,
    // and none of the per-run numbers move.
    let out2 = dir.join("out2.lbrc");
    let id2 = client.submit(&submit_spec(&input, &out2, &[])).unwrap();
    let result2 = client.wait_result(id2).unwrap();
    assert_eq!(result2.str_field("status"), Some("done"));
    assert_eq!(
        result2.u64_field("predicate_calls"),
        Some(reference.predicate_calls)
    );
    assert_eq!(
        result2.str_field("trace_digest"),
        result1.str_field("trace_digest")
    );
    assert_eq!(std::fs::read(&out2).unwrap(), std::fs::read(&out1).unwrap());

    let stats = client.stats().unwrap();
    let jobs = stats.get("jobs").expect("stats.jobs");
    assert_eq!(jobs.u64_field("done"), Some(2));
    assert_eq!(stats.u64_field("queue_depth"), Some(0));
    let cache = stats.get("cache").expect("stats.cache");
    assert!(
        cache.u64_field("hits").unwrap() > 0,
        "second job must hit the cache"
    );
    let per_job = stats
        .get("per_job")
        .and_then(Json::as_arr)
        .expect("stats.per_job");
    assert_eq!(per_job.len(), 2);
    assert!(per_job
        .iter()
        .all(|j| j.u64_field("predicate_calls") == Some(reference.predicate_calls)));

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    assert!(
        !state.join("daemon.addr").exists(),
        "clean shutdown removes the addr file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash tolerance: shut the daemon down mid-job; a new daemon over the
/// same state directory resumes the job from its checkpoint and produces
/// the same reduced bytes, and a fresh identical job is answered from
/// *warm* (disk-persisted) cache entries with a bit-identical report.
#[test]
fn interrupted_job_resumes_and_cache_survives_restart() {
    let dir = scratch("resume");
    let (input, bytes) = make_container(&dir, 23, 20);
    let reference = baseline(&bytes);
    let state = dir.join("state");
    let (client, handle) = start_daemon(&state, 1);

    // Slow the probes down so the shutdown lands mid-search.
    let out = dir.join("out.lbrc");
    let id = client
        .submit(&submit_spec(
            &input,
            &out,
            &[("probe_latency_micros", Json::count(1500))],
        ))
        .unwrap();

    // Wait for the first checkpoint, then pull the rug.
    let ckpt = state.join(format!("job-{id}.ckpt"));
    let deadline = Instant::now() + Duration::from_secs(30);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "no checkpoint appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    assert!(!out.exists(), "the interrupted job must not have finished");

    // Restart over the same state directory: the job is re-enqueued and
    // resumes from the checkpoint instead of starting over.
    let (client, handle) = start_daemon(&state, 2);
    let resumed = client.wait_result(id).unwrap();
    assert_eq!(resumed.str_field("status"), Some("done"));
    assert_eq!(resumed.bool_field("resumed"), Some(true));
    assert_eq!(
        std::fs::read(&out).unwrap(),
        write_program(&reference.reduced),
        "resumed job must converge to the uninterrupted reduction"
    );
    assert!(!ckpt.exists(), "finished jobs clean up their checkpoint");

    // A brand-new identical job hits entries the *previous* daemon wrote.
    let out2 = dir.join("out2.lbrc");
    let id2 = client.submit(&submit_spec(&input, &out2, &[])).unwrap();
    let fresh = client.wait_result(id2).unwrap();
    assert_eq!(fresh.str_field("status"), Some("done"));
    assert_eq!(
        fresh.u64_field("predicate_calls"),
        Some(reference.predicate_calls)
    );
    assert_eq!(
        fresh.str_field("trace_digest"),
        Some(format!("{:016x}", reference.trace.digest()).as_str())
    );
    assert_eq!(
        std::fs::read(&out2).unwrap(),
        write_program(&reference.reduced)
    );
    let stats = client.stats().unwrap();
    let warm = stats
        .get("cache")
        .and_then(|c| c.u64_field("warm_hits"))
        .unwrap();
    assert!(
        warm > 0,
        "probes must be answered by disk-persisted entries"
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Eight concurrent jobs on eight workers: no deadlock, every job done,
/// every output identical to its own in-process baseline.
#[test]
fn eight_concurrent_jobs_complete_correctly() {
    let dir = scratch("load");
    let mut fixtures = Vec::new();
    for seed in 0..8u64 {
        let (input, bytes) = make_container(&dir, 100 + seed, 10);
        fixtures.push((input, baseline(&bytes)));
    }
    let state = dir.join("state");
    let (client, handle) = start_daemon(&state, 8);
    let ids: Vec<(u64, usize)> = fixtures
        .iter()
        .enumerate()
        .map(|(i, (input, _))| {
            let out = dir.join(format!("out-{i}.lbrc"));
            (client.submit(&submit_spec(input, &out, &[])).unwrap(), i)
        })
        .collect();
    for (id, i) in ids {
        let result = client.wait_result(id).unwrap();
        assert_eq!(result.str_field("status"), Some("done"), "job {id}");
        assert_eq!(
            std::fs::read(dir.join(format!("out-{i}.lbrc"))).unwrap(),
            write_program(&fixtures[i].1.reduced),
            "job {id} output differs from its baseline"
        );
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("jobs").and_then(|j| j.u64_field("done")), Some(8));
    assert_eq!(stats.u64_field("workers"), Some(8));
    let utilization = stats.f64_field("worker_utilization").unwrap();
    assert!((0.0..=1.0).contains(&utilization));
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Protocol errors and failure modes: bad specs are rejected, jobs over
/// unreadable or non-failing inputs fail with a diagnostic, queued jobs
/// can be cancelled, and unknown operations are answered, not dropped.
#[test]
fn failures_cancellation_and_protocol_errors() {
    let dir = scratch("fail");
    let state = dir.join("state");
    let (client, handle) = start_daemon(&state, 1);

    // Submit without an input is rejected outright.
    assert!(client
        .submit(&Json::obj_from(vec![("decompiler", Json::str("a"))]))
        .is_err());

    // A vanished input file fails the job, with the reason in the result.
    let id = client
        .submit(&Json::obj_from(vec![(
            "input",
            Json::str("/nonexistent/x.lbrc"),
        )]))
        .unwrap();
    let result = client.wait_result(id).unwrap();
    assert_eq!(result.str_field("status"), Some("failed"));
    assert!(result.str_field("error").unwrap().contains("cannot read"));

    // An input that does not trigger the oracle's bugs is a failure too.
    let clean = generate(&WorkloadConfig {
        seed: 5,
        classes: 8,
        interfaces: 2,
        plant: vec![],
        ..WorkloadConfig::default()
    });
    let clean_path = dir.join("clean.lbrc");
    std::fs::write(&clean_path, write_program(&clean)).unwrap();
    let id = client
        .submit(&Json::obj_from(vec![(
            "input",
            Json::str(clean_path.display().to_string()),
        )]))
        .unwrap();
    let result = client.wait_result(id).unwrap();
    assert_eq!(result.str_field("status"), Some("failed"));
    assert!(result
        .str_field("error")
        .unwrap()
        .contains("does not trigger"));

    // With one worker busy on a slow job, a queued job can be cancelled.
    let (input, _) = make_container(&dir, 77, 16);
    let out = dir.join("slow.lbrc");
    let slow = client
        .submit(&submit_spec(
            &input,
            &out,
            &[("probe_latency_micros", Json::count(20_000))],
        ))
        .unwrap();
    let queued = client
        .submit(&submit_spec(&input, &dir.join("q.lbrc"), &[]))
        .unwrap();
    client.cancel(queued).unwrap();
    let result = client.wait_result(queued).unwrap();
    assert_eq!(result.str_field("status"), Some("cancelled"));

    // Cancelling the running job stops it between probes.
    client.cancel(slow).unwrap();
    let result = client.wait_result(slow).unwrap();
    assert_eq!(result.str_field("status"), Some("cancelled"));
    assert!(!out.exists(), "a cancelled job writes no output");

    // Unknown ops and statuses of unknown jobs answer with errors.
    let response = client
        .request(&Json::obj([("op", Json::str("frobnicate"))]))
        .unwrap();
    assert_eq!(response.bool_field("ok"), Some(false));
    assert!(client.status(999).is_err());

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
