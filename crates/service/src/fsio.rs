//! Crash-safe file writes: temp file + `fsync` + atomic rename.
//!
//! Every file the daemon persists — job specs, checkpoints, results, the
//! oracle cache — goes through [`atomic_write`], so a reader (including a
//! restarted daemon) only ever observes either the old complete contents
//! or the new complete contents, never a torn file. A `kill -9` between
//! any two instructions leaves the state directory consistent.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: the data is written to a sibling
/// temp file, flushed to disk (`fsync`), renamed over the target, and the
/// parent directory is synced so the rename itself is durable.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Directory fsync is advisory on some filesystems; ignore
            // failures (the rename already happened).
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`atomic_write`] for text payloads.
pub fn atomic_write_str(path: &Path, text: &str) -> io::Result<()> {
    atomic_write(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join(format!("lbr-fsio-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.json");
        atomic_write_str(&path, "one").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "one");
        atomic_write_str(&path, "two").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "two");
        // No temp litter.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
