//! The disk-backed persistent oracle cache shared across jobs and across
//! daemon restarts.
//!
//! Entries are content-addressed: the key is the candidate keep-set (its
//! 64-bit [`VarSet::fingerprint`] indexes a bucket; full set equality
//! resolves collisions) under a caller-supplied *namespace* — a digest of
//! the input container and the oracle configuration — so two jobs only
//! share entries when their probes are the same pure function. The value
//! is the probe verdict and candidate size, exactly what a tool run
//! produces.
//!
//! Persistence is a single text file written via
//! [`atomic_write`](crate::fsio::atomic_write): a reader never observes a
//! torn cache, and a `kill -9` at any instant loses at most the entries
//! added since the last save. Correctness never depends on the cache —
//! it sits beneath every per-run counter (see
//! [`ProbeCache`](lbr_core::ProbeCache)), so a lost entry merely costs
//! one tool re-run.

use crate::fsio::atomic_write_str;
use lbr_core::{FaultInjector, Probe, ProbeCache};
use lbr_logic::{Var, VarSet};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub use lbr_core::{CacheStats, FaultPlan};

const HEADER: &str = "lbr-oracle-cache v1";

/// One remembered probe.
#[derive(Debug, Clone)]
struct CacheEntry {
    key: VarSet,
    probe: Probe,
    /// Loaded from disk (a previous process's work) rather than stored by
    /// this process — the distinction behind the `warm_hits` stat.
    warm: bool,
}

#[derive(Default)]
struct CacheInner {
    /// (namespace, key fingerprint) → entries with that fingerprint.
    buckets: HashMap<(u64, u64), Vec<CacheEntry>>,
    /// Entries added since the last save.
    dirty: usize,
    len: usize,
}

/// The persistent, thread-safe oracle cache. See the module docs.
pub struct PersistentOracleCache {
    path: PathBuf,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    warm_hits: AtomicU64,
    faults: FaultInjector,
}

impl PersistentOracleCache {
    /// Opens the cache at `path`, loading any existing entries (which are
    /// marked *warm*). A missing file is an empty cache; a file with an
    /// unknown header is an error (never silently dropped).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut inner = CacheInner::default();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let mut lines = text.lines();
                if lines.next() != Some(HEADER) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: not a {HEADER} file", path.display()),
                    ));
                }
                for (lineno, line) in lines.enumerate() {
                    if line.is_empty() {
                        continue;
                    }
                    let entry = parse_line(line).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}: bad cache line {}", path.display(), lineno + 2),
                        )
                    })?;
                    let (ns, key, probe) = entry;
                    inner
                        .buckets
                        .entry((ns, key.fingerprint()))
                        .or_default()
                        .push(CacheEntry {
                            key,
                            probe,
                            warm: true,
                        });
                    inner.len += 1;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(PersistentOracleCache {
            path,
            inner: Mutex::new(inner),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            faults: FaultInjector::new(),
        })
    }

    /// Arms probabilistic fault injection (see [`FaultPlan`]). A rate of
    /// `0` disarms it.
    pub fn inject_faults(&self, plan: FaultPlan) {
        self.faults.arm(plan);
    }

    /// How many operations have been faulted so far — lets tests confirm
    /// that the fault path was actually exercised.
    pub fn faults_injected(&self) -> u64 {
        self.faults.injected()
    }

    /// Looks up a probe under the namespace, counting a hit or a miss.
    ///
    /// Under an armed [`FaultPlan`] a faulted lookup degrades to a miss:
    /// the caller re-runs the tool, which is always safe.
    pub fn lookup(&self, namespace: u64, key: &VarSet) -> Option<Probe> {
        if self.faults.fire() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let inner = self.inner.lock().expect("cache lock");
        let found = inner
            .buckets
            .get(&(namespace, key.fingerprint()))
            .and_then(|bucket| bucket.iter().find(|e| e.key == *key));
        match found {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if entry.warm {
                    self.warm_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(entry.probe)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Remembers a probe under the namespace (first write wins — the
    /// predicate is pure, so duplicates are necessarily equal).
    ///
    /// Under an armed [`FaultPlan`] a faulted store is silently dropped:
    /// the entry is simply lost and a later probe recomputes it.
    pub fn store(&self, namespace: u64, key: &VarSet, probe: Probe) {
        if self.faults.fire() {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        let bucket = inner
            .buckets
            .entry((namespace, key.fingerprint()))
            .or_default();
        if bucket.iter().any(|e| e.key == *key) {
            return;
        }
        bucket.push(CacheEntry {
            key: key.clone(),
            probe,
            warm: false,
        });
        inner.len += 1;
        inner.dirty += 1;
    }

    /// Serializes every entry and atomically replaces the cache file.
    pub fn save(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("cache lock");
        let mut out = String::with_capacity(64 * inner.len + HEADER.len() + 1);
        out.push_str(HEADER);
        out.push('\n');
        // Deterministic line order: sort by (namespace, fingerprint, key).
        let mut keys: Vec<&(u64, u64)> = inner.buckets.keys().collect();
        keys.sort();
        for k in keys {
            for entry in &inner.buckets[k] {
                render_line(k.0, &entry.key, entry.probe, &mut out);
            }
        }
        atomic_write_str(&self.path, &out)?;
        inner.dirty = 0;
        Ok(())
    }

    /// [`save`](Self::save) only if entries were added since the last one.
    pub fn save_if_dirty(&self) -> io::Result<()> {
        if self.inner.lock().expect("cache lock").dirty > 0 {
            self.save()?;
        }
        Ok(())
    }

    /// Total entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").len
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
        }
    }

    /// The file this cache persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A view of one namespace implementing [`ProbeCache`], the interface
    /// `lbr_jreduce::ServiceHooks` consumes.
    pub fn namespaced(&self, namespace: u64) -> NamespacedCache<'_> {
        NamespacedCache {
            cache: self,
            namespace,
        }
    }
}

/// A [`PersistentOracleCache`] scoped to one namespace.
pub struct NamespacedCache<'c> {
    cache: &'c PersistentOracleCache,
    namespace: u64,
}

impl ProbeCache for NamespacedCache<'_> {
    fn lookup(&self, key: &VarSet) -> Option<Probe> {
        self.cache.lookup(self.namespace, key)
    }

    fn store(&self, key: &VarSet, probe: Probe) {
        self.cache.store(self.namespace, key, probe);
    }
}

/// FNV-1a digest of `salt` and `data` — the namespace for probes of one
/// (input container, oracle configuration) pair.
pub fn namespace_digest(salt: &str, data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in salt.bytes() {
        mix(b);
    }
    mix(0xff); // separator: namespace("ab", b"c") ≠ namespace("a", b"bc")
    for &b in data {
        mix(b);
    }
    h
}

/// `<ns hex> <universe> <outcome> <size> <idx,idx,…|->`
fn render_line(ns: u64, key: &VarSet, probe: Probe, out: &mut String) {
    use std::fmt::Write;
    write!(
        out,
        "{ns:016x} {} {} {} ",
        key.universe(),
        probe.outcome as u8,
        probe.size
    )
    .expect("write to string");
    if key.is_empty() {
        out.push('-');
    } else {
        for (i, v) in key.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{}", v.index()).expect("write to string");
        }
    }
    out.push('\n');
}

fn parse_line(line: &str) -> Option<(u64, VarSet, Probe)> {
    let mut fields = line.split(' ');
    let ns = u64::from_str_radix(fields.next()?, 16).ok()?;
    let universe: usize = fields.next()?.parse().ok()?;
    let outcome = match fields.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let size: u64 = fields.next()?.parse().ok()?;
    let members = fields.next()?;
    if fields.next().is_some() {
        return None;
    }
    let key = if members == "-" {
        VarSet::empty(universe)
    } else {
        let mut indices = Vec::new();
        for part in members.split(',') {
            let idx: u32 = part.parse().ok()?;
            if idx as usize >= universe {
                return None;
            }
            indices.push(Var::new(idx));
        }
        VarSet::from_iter_with_universe(universe, indices)
    };
    Some((ns, key, Probe { outcome, size }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(universe: usize, members: &[u32]) -> VarSet {
        VarSet::from_iter_with_universe(universe, members.iter().copied().map(Var::new))
    }

    #[test]
    fn store_lookup_and_counters() {
        let dir = std::env::temp_dir().join(format!("lbr-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = PersistentOracleCache::open(dir.join("c1")).unwrap();
        let key = set(8, &[1, 3, 5]);
        assert_eq!(cache.lookup(7, &key), None);
        cache.store(
            7,
            &key,
            Probe {
                outcome: true,
                size: 42,
            },
        );
        assert_eq!(
            cache.lookup(7, &key),
            Some(Probe {
                outcome: true,
                size: 42
            })
        );
        // Namespaces are disjoint.
        assert_eq!(cache.lookup(8, &key), None);
        let stats = cache.stats();
        assert_eq!(
            (stats.entries, stats.hits, stats.misses, stats.warm_hits),
            (1, 1, 2, 0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn survives_save_and_reload() {
        let dir = std::env::temp_dir().join(format!("lbr-cache2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache");
        {
            let cache = PersistentOracleCache::open(&path).unwrap();
            cache.store(
                1,
                &set(6, &[0, 2]),
                Probe {
                    outcome: false,
                    size: 9,
                },
            );
            cache.store(
                1,
                &set(6, &[]),
                Probe {
                    outcome: true,
                    size: 0,
                },
            );
            cache.store(
                2,
                &set(6, &[0, 2]),
                Probe {
                    outcome: true,
                    size: 11,
                },
            );
            cache.save_if_dirty().unwrap();
        }
        let cache = PersistentOracleCache::open(&path).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(
            cache.lookup(1, &set(6, &[0, 2])),
            Some(Probe {
                outcome: false,
                size: 9
            })
        );
        assert_eq!(
            cache.lookup(1, &set(6, &[])),
            Some(Probe {
                outcome: true,
                size: 0
            })
        );
        assert_eq!(
            cache.lookup(2, &set(6, &[0, 2])),
            Some(Probe {
                outcome: true,
                size: 11
            })
        );
        assert_eq!(cache.stats().warm_hits, 3, "reloaded entries count as warm");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faults_degrade_to_misses_never_wrong_results() {
        let dir = std::env::temp_dir().join(format!("lbr-cache4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = PersistentOracleCache::open(dir.join("faulty")).unwrap();
        let key = set(8, &[2, 4]);
        let probe = Probe {
            outcome: true,
            size: 17,
        };
        cache.store(3, &key, probe);
        assert_eq!(cache.lookup(3, &key), Some(probe));

        // Every operation faults: lookups miss, stores are dropped.
        cache.inject_faults(FaultPlan {
            rate: 1.0,
            seed: 99,
        });
        assert_eq!(cache.lookup(3, &key), None, "faulted lookup must miss");
        let other = set(8, &[1]);
        cache.store(
            3,
            &other,
            Probe {
                outcome: false,
                size: 5,
            },
        );
        assert_eq!(cache.len(), 1, "faulted store must be dropped");
        assert!(cache.faults_injected() >= 2);

        // Disarmed: the surviving entry is served again, intact. A fault
        // can only cost a re-run — it can never corrupt what is returned.
        cache.inject_faults(FaultPlan { rate: 0.0, seed: 0 });
        assert_eq!(cache.lookup(3, &key), Some(probe));
        assert_eq!(cache.lookup(3, &other), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_stream_is_seed_deterministic() {
        let dir = std::env::temp_dir().join(format!("lbr-cache5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let draw = |seed: u64| {
            let cache = PersistentOracleCache::open(dir.join(format!("f{seed}"))).unwrap();
            let key = set(4, &[0]);
            cache.store(
                0,
                &key,
                Probe {
                    outcome: true,
                    size: 1,
                },
            );
            cache.inject_faults(FaultPlan { rate: 0.5, seed });
            // A miss on a stored key can only come from an injected fault.
            (0..64)
                .map(|_| cache.lookup(0, &key).is_none())
                .collect::<Vec<bool>>()
        };
        assert_eq!(draw(7), draw(7), "same seed, same fault pattern");
        assert_ne!(draw(7), draw(8), "different seeds should diverge");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_foreign_files() {
        let dir = std::env::temp_dir().join(format!("lbr-cache3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("notacache");
        std::fs::write(&path, "something else\n").unwrap();
        assert!(PersistentOracleCache::open(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn namespace_digest_separates() {
        assert_ne!(namespace_digest("a", b"bc"), namespace_digest("ab", b"c"));
        assert_ne!(namespace_digest("a", b"x"), namespace_digest("b", b"x"));
        assert_eq!(namespace_digest("a", b"x"), namespace_digest("a", b"x"));
    }
}
