//! A multi-threaded reduction *service* over the pipeline of
//! [`lbr_jreduce`]: a daemon that queues, runs, checkpoints, and resumes
//! reduction jobs, plus the client for its wire protocol.
//!
//! The paper's tool is a batch process: one input, one oracle, one long
//! run of ≈33 s probes. This crate wraps that pipeline the way a fuzzing
//! or CI fleet would deploy it —
//!
//! * [`Daemon`] listens on localhost TCP and runs jobs from a bounded
//!   priority [`JobQueue`] on a pool of worker threads;
//! * a [`PersistentOracleCache`] shares probe verdicts across jobs *and
//!   across restarts*: entries are content-addressed by a digest of the
//!   input container and oracle configuration plus the candidate keep-set,
//!   so only genuinely identical probes are shared, and the whole file is
//!   replaced atomically so a crash can never corrupt it;
//! * running jobs checkpoint their GBR state
//!   ([`GbrCheckpoint`](lbr_core::GbrCheckpoint)) after every iteration;
//!   a killed daemon restarts, re-enqueues unfinished jobs, and resumes
//!   them from the snapshot — converging to the *same* reduced program an
//!   uninterrupted run produces;
//! * [`Client`] speaks the newline-delimited JSON protocol: `submit`,
//!   `status`, `result`, `cancel`, `stats`, `shutdown`.
//!
//! Determinism is the invariant everything here preserves: a job's
//! reduced bytes, predicate-call count, and trace digest are identical
//! whether it runs in-process, through the daemon, against a cold or warm
//! cache, interrupted or not, at any worker count. The end-to-end tests
//! assert exactly that.
//!
//! Everything is built on `std` alone — the wire format is the minimal
//! [`Json`] document model in [`json`], persistence is plain files under
//! a state directory written crash-safely by [`fsio`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod checkpoint;
pub mod client;
pub mod daemon;
pub mod frame;
pub mod fsio;
pub mod job;
pub mod json;
pub mod queue;
mod reactor;
mod shard;

pub use cache::{namespace_digest, CacheStats, FaultPlan, NamespacedCache, PersistentOracleCache};
pub use checkpoint::{load_checkpoint, save_checkpoint};
pub use client::{Client, Connection, Submitted};
pub use daemon::{ClusterDispatch, Daemon, DaemonConfig};
pub use frame::{
    read_binary_frame, write_binary_frame, FrameDecoder, Framing, WireError, WireFrame, OP_CLUSTER,
};
pub use fsio::{atomic_write, atomic_write_str};
pub use job::{JobPhase, JobSpec};
pub use json::Json;
pub use queue::{JobQueue, QueueFull};
