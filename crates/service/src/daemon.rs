//! The reduction daemon: a multi-threaded TCP service running GBR jobs.
//!
//! One daemon owns a *state directory* holding everything it needs to
//! survive a crash:
//!
//! ```text
//! state/
//!   daemon.addr        the bound 127.0.0.1:port, written atomically
//!   oracle.cache       the persistent probe cache, shared by all jobs
//!   job-7.spec.json    what job 7 asked for
//!   job-7.ckpt         job 7's latest resumable GBR snapshot
//!   job-7.result.json  job 7's terminal outcome (done / failed / cancelled)
//! ```
//!
//! Every file is written via [`atomic_write`](crate::fsio::atomic_write).
//! On startup the daemon rescans the directory: specs with a result file
//! become terminal records, specs without one are re-enqueued — with a
//! checkpoint file, the job resumes mid-search instead of starting over,
//! and the cache (saved at every checkpoint) answers the replayed probes
//! warm.
//!
//! The wire protocol is newline-delimited JSON over localhost TCP, one
//! request and one response per line (see [`crate::client`] and
//! DESIGN.md §Service architecture for the operation list).

use crate::cache::{namespace_digest, PersistentOracleCache};
use crate::checkpoint::{load_checkpoint, save_checkpoint};
use crate::fsio::{atomic_write, atomic_write_str};
use crate::job::{JobPhase, JobSpec};
use crate::json::Json;
use crate::queue::JobQueue;
use lbr_classfile::{read_program, write_program};
use lbr_core::{GbrError, LossyPick};
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{PipelineError, ReductionReport, ReductionSession, RunOptions, Strategy};
use lbr_logic::MsaStrategy;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a daemon is configured.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Directory for the address file, oracle cache, and per-job state.
    pub state_dir: PathBuf,
    /// Worker threads running jobs concurrently.
    pub workers: usize,
    /// Bound of the pending-job queue; submits beyond it are rejected.
    pub queue_capacity: usize,
}

impl DaemonConfig {
    /// A config with `workers` threads over `state_dir` and the default
    /// queue bound of 64 pending jobs.
    pub fn new(state_dir: impl Into<PathBuf>, workers: usize) -> Self {
        DaemonConfig {
            state_dir: state_dir.into(),
            workers: workers.max(1),
            queue_capacity: 64,
        }
    }
}

/// What the daemon remembers about one job, in memory.
struct JobRecord {
    spec: JobSpec,
    phase: JobPhase,
    error: Option<String>,
    predicate_calls: u64,
    /// The job continued from a checkpoint (its own earlier life).
    resumed: bool,
    /// Cooperative cancel flag, polled between probes.
    cancel: Arc<AtomicBool>,
}

/// Shared daemon state: everything workers and connection handlers touch.
struct ServiceState {
    config: DaemonConfig,
    cache: PersistentOracleCache,
    queue: JobQueue,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    /// Nanoseconds workers have spent inside jobs (utilization numerator).
    busy_nanos: AtomicU64,
    started: Instant,
    submitted: AtomicU64,
    /// The bound address, for the shutdown self-connect.
    addr: SocketAddr,
}

impl ServiceState {
    fn job_file(&self, id: u64, suffix: &str) -> PathBuf {
        self.config.state_dir.join(format!("job-{id}.{suffix}"))
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Why [`execute_job`] did not produce a report.
enum JobStop {
    /// The cancel hook fired: user cancel, deadline, or daemon shutdown.
    Cancelled,
    /// A real failure — bad input, non-failing oracle, pipeline error.
    Failed(String),
}

/// A started (bound and recovered, but not yet serving) daemon.
pub struct Daemon {
    state: Arc<ServiceState>,
    listener: TcpListener,
    addr: SocketAddr,
}

impl Daemon {
    /// Creates the state directory, opens the cache, recovers persisted
    /// jobs, binds an ephemeral localhost port, and publishes it in
    /// `daemon.addr`. Call [`run`](Self::run) to serve.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        std::fs::create_dir_all(&config.state_dir)?;
        let cache = PersistentOracleCache::open(config.state_dir.join("oracle.cache"))?;
        let queue = JobQueue::new(config.queue_capacity);
        let mut jobs = HashMap::new();
        let mut max_id = 0u64;
        let mut recovered = Vec::new();
        for entry in std::fs::read_dir(&config.state_dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            let Some(id) = name
                .strip_prefix("job-")
                .and_then(|rest| rest.strip_suffix(".spec.json"))
                .and_then(|id| id.parse::<u64>().ok())
            else {
                continue;
            };
            max_id = max_id.max(id);
            let spec_path = config.state_dir.join(name.as_ref());
            let text = std::fs::read_to_string(&spec_path)?;
            let spec = Json::parse(&text)
                .and_then(|j| JobSpec::from_json(&j, id))
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: {e}", spec_path.display()),
                    )
                })?;
            let result_path = config.state_dir.join(format!("job-{id}.result.json"));
            let record = match std::fs::read_to_string(&result_path) {
                Ok(text) => {
                    // Terminal in a previous life; keep it inspectable.
                    let doc = Json::parse(&text).unwrap_or(Json::Null);
                    let phase = match doc.str_field("status") {
                        Some("failed") => JobPhase::Failed,
                        Some("cancelled") => JobPhase::Cancelled,
                        _ => JobPhase::Done,
                    };
                    JobRecord {
                        spec,
                        phase,
                        error: doc.str_field("error").map(str::to_owned),
                        predicate_calls: doc.u64_field("predicate_calls").unwrap_or(0),
                        resumed: doc.bool_field("resumed").unwrap_or(false),
                        cancel: Arc::new(AtomicBool::new(false)),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // Unfinished: re-enqueue. A checkpoint file means the
                    // search resumes rather than restarts.
                    let resumed = config.state_dir.join(format!("job-{id}.ckpt")).exists();
                    recovered.push((id, spec.priority));
                    JobRecord {
                        spec,
                        phase: JobPhase::Queued,
                        error: None,
                        predicate_calls: 0,
                        resumed,
                        cancel: Arc::new(AtomicBool::new(false)),
                    }
                }
                Err(e) => return Err(e),
            };
            jobs.insert(id, record);
        }
        recovered.sort_unstable(); // deterministic re-enqueue order
        for (id, priority) in recovered {
            if queue.push(id, priority).is_err() {
                let job = jobs.get_mut(&id).expect("recovered job");
                job.phase = JobPhase::Failed;
                job.error = Some("queue full during recovery".to_owned());
            }
        }
        let submitted = jobs.len() as u64;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        atomic_write_str(&config.state_dir.join("daemon.addr"), &format!("{addr}\n"))?;
        Ok(Daemon {
            state: Arc::new(ServiceState {
                config,
                cache,
                queue,
                jobs: Mutex::new(jobs),
                next_id: AtomicU64::new(max_id + 1),
                shutdown: AtomicBool::new(false),
                busy_nanos: AtomicU64::new(0),
                started: Instant::now(),
                submitted: AtomicU64::new(submitted),
                addr,
            }),
            listener,
            addr,
        })
    }

    /// The bound localhost address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until a `shutdown` request: workers drain the queue,
    /// connection handlers answer the protocol. Running jobs are asked to
    /// cancel (they checkpoint first, so a restart resumes them), the
    /// cache is saved, and `daemon.addr` is removed.
    pub fn run(self) -> io::Result<()> {
        let state = &self.state;
        std::thread::scope(|scope| {
            for worker in 0..state.config.workers {
                let state = Arc::clone(state);
                std::thread::Builder::new()
                    .name(format!("lbr-worker-{worker}"))
                    .spawn_scoped(scope, move || {
                        while let Some(id) = state.queue.pop() {
                            run_job(&state, id);
                        }
                    })
                    .expect("spawn worker");
            }
            for stream in self.listener.incoming() {
                if state.shutting_down() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let state = Arc::clone(state);
                std::thread::Builder::new()
                    .name("lbr-conn".to_owned())
                    .spawn_scoped(scope, move || serve_connection(&state, stream))
                    .expect("spawn connection handler");
            }
            // Wake workers; running jobs observe the shutdown flag through
            // their cancel hook and checkpoint out.
            state.queue.close();
        });
        state.cache.save_if_dirty()?;
        let _ = std::fs::remove_file(state.config.state_dir.join("daemon.addr"));
        Ok(())
    }
}

/// One request/response exchange per line until the peer hangs up.
fn serve_connection(state: &ServiceState, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Json::parse(&line) {
            Ok(request) => handle_request(state, &request),
            Err(e) => error_response(&format!("bad request: {e}")),
        };
        if writer
            .write_all(format!("{}\n", response.render()).as_bytes())
            .is_err()
        {
            break;
        }
        if state.shutting_down() {
            break;
        }
    }
}

fn error_response(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::str(message))])
}

fn ok_response<const N: usize>(fields: [(&str, Json); N]) -> Json {
    let mut doc = vec![("ok".to_owned(), Json::Bool(true))];
    doc.extend(fields.into_iter().map(|(k, v)| (k.to_owned(), v)));
    Json::Obj(doc.into_iter().collect())
}

fn handle_request(state: &ServiceState, request: &Json) -> Json {
    match request.str_field("op") {
        Some("ping") => ok_response([]),
        Some("submit") => handle_submit(state, request),
        Some("status") => handle_status(state, request),
        Some("result") => handle_result(state, request),
        Some("cancel") => handle_cancel(state, request),
        Some("stats") => handle_stats(state),
        Some("shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            state.queue.close();
            // Unblock the accept loop so `run` can wind down.
            let _ = TcpStream::connect(state.addr);
            ok_response([])
        }
        Some(other) => error_response(&format!("unknown op {other:?}")),
        None => error_response("request has no \"op\""),
    }
}

fn handle_submit(state: &ServiceState, request: &Json) -> Json {
    if state.shutting_down() {
        return error_response("daemon is shutting down");
    }
    let id = state.next_id.fetch_add(1, Ordering::SeqCst);
    let spec = match JobSpec::from_json(request, id) {
        Ok(mut spec) => {
            spec.id = id;
            spec
        }
        Err(e) => return error_response(&e),
    };
    if let Err(e) = atomic_write_str(&state.job_file(id, "spec.json"), &spec.to_json().render()) {
        return error_response(&format!("cannot persist spec: {e}"));
    }
    let priority = spec.priority;
    state.jobs.lock().expect("jobs lock").insert(
        id,
        JobRecord {
            spec,
            phase: JobPhase::Queued,
            error: None,
            predicate_calls: 0,
            resumed: false,
            cancel: Arc::new(AtomicBool::new(false)),
        },
    );
    if state.queue.push(id, priority).is_err() {
        state.jobs.lock().expect("jobs lock").remove(&id);
        let _ = std::fs::remove_file(state.job_file(id, "spec.json"));
        return error_response("queue full");
    }
    state.submitted.fetch_add(1, Ordering::Relaxed);
    ok_response([("id", Json::count(id))])
}

fn handle_status(state: &ServiceState, request: &Json) -> Json {
    let Some(id) = request.u64_field("id") else {
        return error_response("status needs an \"id\"");
    };
    let jobs = state.jobs.lock().expect("jobs lock");
    match jobs.get(&id) {
        Some(job) => {
            let mut doc = vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("id".to_owned(), Json::count(id)),
                ("phase".to_owned(), Json::str(job.phase.name())),
                ("resumed".to_owned(), Json::Bool(job.resumed)),
            ];
            if let Some(e) = &job.error {
                doc.push(("error".to_owned(), Json::str(e)));
            }
            Json::Obj(doc.into_iter().collect())
        }
        None => error_response(&format!("no such job {id}")),
    }
}

fn handle_result(state: &ServiceState, request: &Json) -> Json {
    let Some(id) = request.u64_field("id") else {
        return error_response("result needs an \"id\"");
    };
    let wait = request.bool_field("wait").unwrap_or(false);
    loop {
        let phase = {
            let jobs = state.jobs.lock().expect("jobs lock");
            match jobs.get(&id) {
                Some(job) => job.phase,
                None => return error_response(&format!("no such job {id}")),
            }
        };
        if phase.is_terminal() {
            break;
        }
        if !wait {
            return error_response(&format!("job {id} is {}", phase.name()));
        }
        if state.shutting_down() {
            return error_response("daemon is shutting down");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    match std::fs::read_to_string(state.job_file(id, "result.json")) {
        Ok(text) => match Json::parse(&text) {
            Ok(doc) => ok_response([("result", doc)]),
            Err(e) => error_response(&format!("corrupt result file: {e}")),
        },
        Err(e) => error_response(&format!("cannot read result: {e}")),
    }
}

fn handle_cancel(state: &ServiceState, request: &Json) -> Json {
    let Some(id) = request.u64_field("id") else {
        return error_response("cancel needs an \"id\"");
    };
    let mut jobs = state.jobs.lock().expect("jobs lock");
    match jobs.get_mut(&id) {
        Some(job) if job.phase.is_terminal() => {
            error_response(&format!("job {id} already {}", job.phase.name()))
        }
        Some(job) if job.phase == JobPhase::Queued => {
            // Finalize immediately; the worker that eventually pops the id
            // sees a non-queued phase and skips it.
            job.phase = JobPhase::Cancelled;
            job.error = Some("cancelled while queued".to_owned());
            job.cancel.store(true, Ordering::SeqCst);
            let doc = terminal_result_doc(id, "cancelled", job.error.as_deref());
            drop(jobs);
            let _ = atomic_write_str(&state.job_file(id, "result.json"), &doc.render());
            ok_response([("id", Json::count(id))])
        }
        Some(job) => {
            job.cancel.store(true, Ordering::SeqCst);
            ok_response([("id", Json::count(id))])
        }
        None => error_response(&format!("no such job {id}")),
    }
}

fn handle_stats(state: &ServiceState) -> Json {
    let uptime = state.started.elapsed().as_secs_f64();
    let busy = state.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
    let utilization = if uptime > 0.0 {
        (busy / (uptime * state.config.workers as f64)).min(1.0)
    } else {
        0.0
    };
    let cache = state.cache.stats();
    let jobs = state.jobs.lock().expect("jobs lock");
    let mut counts = [0u64; 5];
    let mut per_job: Vec<(u64, &JobRecord)> = Vec::with_capacity(jobs.len());
    for (&id, job) in jobs.iter() {
        counts[match job.phase {
            JobPhase::Queued => 0,
            JobPhase::Running => 1,
            JobPhase::Done => 2,
            JobPhase::Failed => 3,
            JobPhase::Cancelled => 4,
        }] += 1;
        per_job.push((id, job));
    }
    per_job.sort_unstable_by_key(|(id, _)| *id);
    let per_job = Json::Arr(
        per_job
            .into_iter()
            .map(|(id, job)| {
                Json::obj([
                    ("id", Json::count(id)),
                    ("phase", Json::str(job.phase.name())),
                    ("predicate_calls", Json::count(job.predicate_calls)),
                    ("resumed", Json::Bool(job.resumed)),
                ])
            })
            .collect(),
    );
    ok_response([
        ("uptime_secs", Json::Num(uptime)),
        ("workers", Json::count(state.config.workers as u64)),
        ("queue_depth", Json::count(state.queue.depth() as u64)),
        ("worker_utilization", Json::Num(utilization)),
        (
            "jobs",
            Json::obj([
                (
                    "submitted",
                    Json::count(state.submitted.load(Ordering::Relaxed)),
                ),
                ("queued", Json::count(counts[0])),
                ("running", Json::count(counts[1])),
                ("done", Json::count(counts[2])),
                ("failed", Json::count(counts[3])),
                ("cancelled", Json::count(counts[4])),
            ]),
        ),
        (
            "cache",
            // The counter names come from the one shared `CacheStats`
            // serialization, so the daemon can never drift from the CSV
            // and JSON frontends.
            Json::Obj(
                cache
                    .fields()
                    .iter()
                    .map(|&(k, v)| (k.to_owned(), Json::count(v)))
                    .chain([("hit_rate".to_owned(), Json::Num(cache.hit_rate()))])
                    .collect(),
            ),
        ),
        ("per_job", per_job),
    ])
}

/// A worker picked job `id` off the queue: run it and persist the outcome.
fn run_job(state: &ServiceState, id: u64) {
    let (spec, cancel) = {
        let mut jobs = state.jobs.lock().expect("jobs lock");
        let Some(job) = jobs.get_mut(&id) else { return };
        if job.phase != JobPhase::Queued {
            return; // cancelled-while-queued jobs are finalized below
        }
        if job.cancel.load(Ordering::SeqCst) {
            job.phase = JobPhase::Cancelled;
            job.error = Some("cancelled while queued".to_owned());
            let doc = terminal_result_doc(id, "cancelled", job.error.as_deref());
            drop(jobs);
            let _ = atomic_write_str(&state.job_file(id, "result.json"), &doc.render());
            return;
        }
        job.phase = JobPhase::Running;
        (job.spec.clone(), Arc::clone(&job.cancel))
    };
    if state.shutting_down() {
        // Leave it Queued on disk; the next daemon re-enqueues it.
        let mut jobs = state.jobs.lock().expect("jobs lock");
        if let Some(job) = jobs.get_mut(&id) {
            job.phase = JobPhase::Queued;
        }
        return;
    }
    let started = Instant::now();
    let outcome = execute_job(state, &spec, &cancel, started);
    state
        .busy_nanos
        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    let _ = state.cache.save_if_dirty();
    match outcome {
        Ok((report, resumed)) => {
            let doc = success_result_doc(&spec, &report, resumed);
            let _ = atomic_write_str(&state.job_file(id, "result.json"), &doc.render());
            let _ = std::fs::remove_file(state.job_file(id, "ckpt"));
            let mut jobs = state.jobs.lock().expect("jobs lock");
            if let Some(job) = jobs.get_mut(&id) {
                job.phase = JobPhase::Done;
                job.predicate_calls = report.predicate_calls;
                job.resumed = resumed;
            }
        }
        Err(JobStop::Cancelled) if state.shutting_down() => {
            // Checkpointed out for shutdown: stays resumable, not terminal.
            let mut jobs = state.jobs.lock().expect("jobs lock");
            if let Some(job) = jobs.get_mut(&id) {
                job.phase = JobPhase::Queued;
            }
        }
        Err(stop) => {
            let (status, error) = match stop {
                JobStop::Cancelled => ("cancelled", "cancelled by request".to_owned()),
                JobStop::Failed(e) => ("failed", e),
                // shutdown case handled above
            };
            let doc = terminal_result_doc(id, status, Some(&error));
            let _ = atomic_write_str(&state.job_file(id, "result.json"), &doc.render());
            let mut jobs = state.jobs.lock().expect("jobs lock");
            if let Some(job) = jobs.get_mut(&id) {
                job.phase = if status == "cancelled" {
                    JobPhase::Cancelled
                } else {
                    JobPhase::Failed
                };
                job.error = Some(error);
            }
        }
    }
}

/// Runs the reduction itself. `Ok` carries the report and whether the run
/// continued from a checkpoint.
fn execute_job(
    state: &ServiceState,
    spec: &JobSpec,
    cancel: &AtomicBool,
    started: Instant,
) -> Result<(ReductionReport, bool), JobStop> {
    let bytes = std::fs::read(&spec.input)
        .map_err(|e| JobStop::Failed(format!("cannot read {}: {e}", spec.input)))?;
    let program =
        read_program(&bytes).map_err(|e| JobStop::Failed(format!("bad container: {e}")))?;
    let bugs = match spec.decompiler.as_str() {
        "a" => BugSet::decompiler_a(),
        "b" => BugSet::decompiler_b(),
        "c" => BugSet::decompiler_c(),
        _ => BugSet::all(),
    };
    let oracle = DecompilerOracle::new(&program, bugs);
    if !oracle.is_failing() {
        return Err(JobStop::Failed(format!(
            "input does not trigger decompiler {}'s bugs — nothing to reduce",
            spec.decompiler
        )));
    }
    let options = RunOptions {
        probe_threads: spec.probe_threads,
        probe_latency_micros: spec.probe_latency_micros,
        ..RunOptions::default()
    };
    let deadline = (spec.deadline_secs > 0.0).then(|| Duration::from_secs_f64(spec.deadline_secs));
    let report = if spec.strategy == "logical" {
        // The service path: persistent cache + checkpoint/resume + cancel.
        let namespace = namespace_digest(&spec.decompiler, &bytes);
        let scoped = state.cache.namespaced(namespace);
        let ckpt_path = state.job_file(spec.id, "ckpt");
        // A checkpoint torn mid-write (truncated file, garbage bytes) is
        // discarded and the search restarts from scratch: determinism
        // guarantees the restarted run lands on the identical result, so
        // the only thing a corrupt checkpoint may ever cost is time.
        let resume = match load_checkpoint(&ckpt_path) {
            Ok(resume) => resume,
            Err(_) => {
                let _ = std::fs::remove_file(&ckpt_path);
                None
            }
        };
        let resumed = resume.is_some();
        let cancel_hook = move || {
            cancel.load(Ordering::SeqCst)
                || state.shutting_down()
                || deadline.is_some_and(|d| started.elapsed() > d)
        };
        // Saving the cache at every checkpoint bounds what a `kill -9`
        // can lose to one iteration of probes.
        let mut checkpoint_hook = |ck: &lbr_core::GbrCheckpoint| {
            let _ = save_checkpoint(&ckpt_path, ck);
            let _ = state.cache.save_if_dirty();
        };
        let mut session = ReductionSession::new(&program, &oracle)
            .strategy(Strategy::Logical(MsaStrategy::GreedyClosure))
            .cost_per_call(spec.cost)
            .options(options)
            .cache(&scoped)
            .cancel(&cancel_hook)
            .checkpoint(&mut checkpoint_hook);
        if let Some(ck) = resume {
            session = session.resume(ck);
        }
        let report = session.run().map_err(map_pipeline_error)?;
        (report, resumed)
    } else {
        // Baseline strategies run uncached and uncheckpointed.
        let strategy = match spec.strategy.as_str() {
            "logical-min" => Strategy::LogicalMinimized,
            "jreduce" => Strategy::JReduce,
            "lossy1" => Strategy::Lossy(LossyPick::FirstFirst),
            "lossy2" => Strategy::Lossy(LossyPick::LastLast),
            _ => Strategy::DdminItems,
        };
        let report = ReductionSession::new(&program, &oracle)
            .strategy(strategy)
            .cost_per_call(spec.cost)
            .options(options)
            .run()
            .map_err(map_pipeline_error)?;
        (report, false)
    };
    if let Some(out) = &spec.output {
        atomic_write(Path::new(out), &write_program(&report.0.reduced))
            .map_err(|e| JobStop::Failed(format!("cannot write {out}: {e}")))?;
    }
    Ok(report)
}

fn map_pipeline_error(e: PipelineError) -> JobStop {
    match e {
        PipelineError::Gbr(GbrError::Cancelled) => JobStop::Cancelled,
        other => JobStop::Failed(other.to_string()),
    }
}

/// The result document of a successful job. The `trace_digest` is the
/// hex-rendered [`ReductionTrace::digest`](lbr_core::ReductionTrace) —
/// comparing it against an in-process run proves the daemon produced a
/// bit-identical reduction (JSON numbers cannot carry a full u64 exactly,
/// hence the string).
fn success_result_doc(spec: &JobSpec, report: &ReductionReport, resumed: bool) -> Json {
    let mut fields = vec![
        ("id", Json::count(spec.id)),
        ("status", Json::str("done")),
        ("strategy", Json::str(&report.strategy)),
        (
            "initial_classes",
            Json::count(report.initial.classes as u64),
        ),
        ("initial_bytes", Json::count(report.initial.bytes as u64)),
        (
            "final_classes",
            Json::count(report.final_metrics.classes as u64),
        ),
        (
            "final_bytes",
            Json::count(report.final_metrics.bytes as u64),
        ),
        ("predicate_calls", Json::count(report.predicate_calls)),
        ("cache_hits", Json::count(report.cache_hits())),
        ("cache_misses", Json::count(report.cache_misses())),
        (
            "trace_digest",
            Json::str(format!("{:016x}", report.trace.digest())),
        ),
        ("resumed", Json::Bool(resumed)),
        ("errors_preserved", Json::Bool(report.errors_preserved)),
        ("still_valid", Json::Bool(report.still_valid)),
        ("modeled_secs", Json::Num(report.modeled_secs)),
        ("wall_secs", Json::Num(report.wall_secs)),
    ];
    if let Some(out) = &spec.output {
        fields.push(("output", Json::str(out)));
    }
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn terminal_result_doc(id: u64, status: &str, error: Option<&str>) -> Json {
    let mut fields = vec![("id", Json::count(id)), ("status", Json::str(status))];
    if let Some(e) = error {
        fields.push(("error", Json::str(e)));
    }
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}
