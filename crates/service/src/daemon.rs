//! The reduction daemon: an event-loop TCP service running GBR jobs.
//!
//! One daemon owns a *state directory* holding everything it needs to
//! survive a crash:
//!
//! ```text
//! state/
//!   daemon.addr        the bound 127.0.0.1:port, written atomically
//!   oracle.cache       the persistent probe cache, shared by all jobs
//!   job-7.spec.json    what job 7 asked for
//!   job-7.ckpt         job 7's latest resumable GBR snapshot
//!   job-7.result.json  job 7's terminal outcome (done / failed / cancelled)
//! ```
//!
//! Every file is written via [`atomic_write`](crate::fsio::atomic_write).
//! On startup the daemon rescans the directory: specs with a result file
//! become terminal records, specs without one are re-enqueued — with a
//! checkpoint file, the job resumes mid-search instead of starting over,
//! and the cache (saved alongside checkpoints) answers the replayed
//! probes warm.
//!
//! # I/O architecture
//!
//! The connection plane is a single acceptor plus N event-loop *shards*
//! (see [`crate::shard`] and [`crate::reactor`]): every connection is
//! non-blocking and owned by one shard, so thousands of clients cost no
//! per-connection threads. Job execution stays on a separate worker pool
//! draining the bounded priority [`JobQueue`].
//!
//! The wire protocol carries one [`Json`] document per frame in either
//! framing of [`crate::frame`] — newline-delimited JSON or length-prefixed
//! binary, interleavable per frame on one connection. Responses that
//! cannot be answered immediately (`result` with `wait`, streamed
//! progress events) are *deferred*: the handler registers the connection
//! and the completing worker pushes the encoded frame back through the
//! owning shard's mailbox — no thread ever parks on a client's behalf.
//!
//! Admission control sheds load instead of stalling it: a full queue or
//! a client over its in-flight cap gets `{"ok":false,"shed":true,
//! "retry_after_ms":…}` immediately, with the retry hint derived from
//! queue depth and the observed mean job duration.

use crate::cache::{namespace_digest, PersistentOracleCache};
use crate::checkpoint::{load_checkpoint, save_checkpoint};
use crate::frame::{encode_doc, encode_event, Framing, WireFrame, OP_DOC};
use crate::fsio::{atomic_write, atomic_write_str};
use crate::job::{JobPhase, JobSpec};
use crate::json::Json;
use crate::queue::JobQueue;
use crate::shard::{run_shard, ShardHandle, ShardMsg};
use lbr_classfile::read_program;
use lbr_core::{GbrError, Input, InputOracle, ProbeDistributor};
use lbr_decompiler::{BugSet, DecompilerOracle};
use lbr_jreduce::{
    strategy_catalog, strategy_registry, PipelineError, ReductionReport, ReductionSession,
    RunOptions,
};
use lbr_stackvm::{Module as StackModule, StackBugSet, StackOracle};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Most entries one `batch` request may carry.
const MAX_BATCH: usize = 256;

/// How a daemon is configured.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Directory for the address file, oracle cache, and per-job state.
    pub state_dir: PathBuf,
    /// Worker threads running jobs concurrently.
    pub workers: usize,
    /// Bound of the pending-job queue; submits beyond it are shed with a
    /// `retry_after_ms` hint.
    pub queue_capacity: usize,
    /// Event-loop shards multiplexing connections.
    pub shards: usize,
    /// Connections idle longer than this are closed (connections parked
    /// on a deferred reply — `result --wait`, event streams — are exempt).
    pub idle_timeout: Duration,
    /// Largest accepted frame or line, in bytes; bigger input closes the
    /// connection after one error response.
    pub max_frame_bytes: usize,
    /// Most unfinished jobs one connection may have in flight; submits
    /// beyond it are shed with `retry_after_ms`.
    pub max_inflight_per_client: usize,
    /// Minimum spacing between checkpoint (and cache) saves of a running
    /// job. The first checkpoint of a job is always written immediately;
    /// after that, saving is throttled to this interval — a crash can
    /// lose at most this much progress, never correctness.
    pub checkpoint_interval: Duration,
    /// Replay finished jobs from the content-addressed result store:
    /// a submit whose (input bytes, oracle, strategy, cost, probe
    /// configuration) digest matches an earlier *done* job is answered
    /// with that job's stored result and reduced container instead of
    /// re-running the search. Determinism makes this sound — an identical
    /// job can only ever produce the identical result — and replayed
    /// results carry `"replayed": true`. Off by default so cache-metric
    /// semantics (probe hit counters) stay those of a real run.
    pub memoize_results: bool,
}

impl DaemonConfig {
    /// A config with `workers` threads over `state_dir` and defaults for
    /// everything else: 64 queued jobs, 2 shards, 300 s idle timeout,
    /// 1 MiB frames, 64 in-flight jobs per client, 100 ms checkpoints.
    pub fn new(state_dir: impl Into<PathBuf>, workers: usize) -> Self {
        DaemonConfig {
            state_dir: state_dir.into(),
            workers: workers.max(1),
            queue_capacity: 64,
            shards: 2,
            idle_timeout: Duration::from_secs(300),
            max_frame_bytes: 1 << 20,
            max_inflight_per_client: 64,
            checkpoint_interval: Duration::from_millis(100),
            memoize_results: false,
        }
    }
}

/// One connection endpoint a deferred reply or event stream goes back to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Peer {
    shard: usize,
    conn: u64,
    framing: Framing,
}

/// Connection-plane state shared between handlers, workers, and shards.
pub(crate) struct NetState {
    shards: Vec<Arc<ShardHandle>>,
    /// Job id → connections blocked in `result --wait`.
    waiters: Mutex<HashMap<u64, Vec<Peer>>>,
    /// Job id → connections streaming progress events.
    subscribers: Mutex<HashMap<u64, Vec<Peer>>>,
    /// (shard, conn) → unfinished jobs submitted over that connection.
    clients: Mutex<HashMap<(usize, u64), u64>>,
    shed_queue_full: AtomicU64,
    shed_client_cap: AtomicU64,
    events_sent: AtomicU64,
    queue_wait_nanos: AtomicU64,
    queue_wait_count: AtomicU64,
    queue_wait_max_nanos: AtomicU64,
    /// Total nanoseconds and count of finished jobs (retry-after input).
    job_nanos: AtomicU64,
    jobs_finished: AtomicU64,
}

/// What the daemon remembers about one job, in memory.
struct JobRecord {
    spec: JobSpec,
    phase: JobPhase,
    error: Option<String>,
    predicate_calls: u64,
    /// The job continued from a checkpoint (its own earlier life).
    resumed: bool,
    /// Cooperative cancel flag, polled between probes.
    cancel: Arc<AtomicBool>,
    /// The connection the job was submitted over, for the in-flight cap;
    /// taken (once) when the job reaches a terminal phase.
    client: Option<(usize, u64)>,
}

/// Shared daemon state: everything workers, handlers, and shards touch.
pub(crate) struct ServiceState {
    pub(crate) config: DaemonConfig,
    /// Shared with the cluster server (the coordinator-hosted cache tier
    /// workers query over the wire) when one is attached.
    cache: Arc<PersistentOracleCache>,
    /// Attached reduction cluster, if the daemon was started with
    /// [`Daemon::start_clustered`].
    cluster: Option<Arc<dyn ClusterDispatch>>,
    queue: JobQueue,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    /// Nanoseconds workers have spent inside jobs (utilization numerator).
    busy_nanos: AtomicU64,
    /// Jobs answered from the result store instead of a fresh search.
    memo_replays: AtomicU64,
    started: Instant,
    submitted: AtomicU64,
    /// The bound address, for the shutdown self-connect.
    addr: SocketAddr,
    net: NetState,
}

impl ServiceState {
    fn job_file(&self, id: u64, suffix: &str) -> PathBuf {
        self.config.state_dir.join(format!("job-{id}.{suffix}"))
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn shard(&self, id: usize) -> Arc<ShardHandle> {
        Arc::clone(&self.net.shards[id])
    }

    /// Pushes pre-encoded bytes back to a peer through its shard.
    fn deliver(&self, peer: &Peer, bytes: Vec<u8>, ends_wait: bool, droppable: bool) {
        self.net.shards[peer.shard].send(ShardMsg::Deliver {
            conn: peer.conn,
            bytes,
            ends_wait,
            droppable,
        });
    }

    /// How long a shed client should back off: roughly the time for the
    /// current backlog to drain at the observed mean job duration.
    fn retry_after_ms(&self) -> u64 {
        let finished = self.net.jobs_finished.load(Ordering::Relaxed);
        let avg_ms = (self.net.job_nanos.load(Ordering::Relaxed))
            .checked_div(finished)
            .map_or(500, |per_job| (per_job / 1_000_000).max(1));
        let depth = self.queue.depth() as u64;
        let workers = self.config.workers.max(1) as u64;
        ((depth / workers + 1) * avg_ms).clamp(25, 30_000)
    }
}

/// The daemon's hook into a reduction cluster: a coordinator-side
/// component (the `lbr-cluster` crate's server) that can hand a running
/// job a [`ProbeDistributor`] fanning its speculative probe frontier out
/// to connected worker nodes.
///
/// The daemon itself stays cluster-agnostic — it asks the dispatch for a
/// distributor per job and threads it into the
/// [`ReductionSession`](lbr_jreduce::ReductionSession); `None` (strategy
/// not distributable, or no cluster attached) falls back to the ordinary
/// single-host paths. Determinism is owned by the distributor: the GBR
/// driver demands verdicts in the exact sequential probe order, so the
/// reduction is bit-identical at any worker count.
pub trait ClusterDispatch: Send + Sync {
    /// A distributor for one job, or `None` if this job should run on the
    /// single-host path. `input` is the job's container bytes (already
    /// read); implementations use them to describe the job to workers.
    fn job_distributor(&self, spec: &JobSpec, input: &[u8]) -> Option<Box<dyn ProbeDistributor>>;
    /// A JSON document of cluster counters, merged into the daemon's
    /// `stats` response under `"cluster"`.
    fn stats(&self) -> Json;
}

/// Why [`execute_job`] did not produce a report.
enum JobStop {
    /// The cancel hook fired: user cancel, deadline, or daemon shutdown.
    Cancelled,
    /// A real failure — bad input, non-failing oracle, pipeline error.
    Failed(String),
}

/// A started (bound and recovered, but not yet serving) daemon.
pub struct Daemon {
    state: Arc<ServiceState>,
    listener: TcpListener,
    addr: SocketAddr,
}

impl Daemon {
    /// Creates the state directory, opens the cache, recovers persisted
    /// jobs, binds an ephemeral localhost port, and publishes it in
    /// `daemon.addr`. Call [`run`](Self::run) to serve.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        std::fs::create_dir_all(&config.state_dir)?;
        let cache = Arc::new(PersistentOracleCache::open(
            config.state_dir.join("oracle.cache"),
        )?);
        Daemon::start_inner(config, cache, None)
    }

    /// Like [`start`](Self::start), but with an externally opened oracle
    /// cache (shared with the cluster's coordinator-hosted cache tier)
    /// and a [`ClusterDispatch`] that offers each logical job a probe
    /// distributor over the connected worker nodes.
    pub fn start_clustered(
        config: DaemonConfig,
        cache: Arc<PersistentOracleCache>,
        cluster: Arc<dyn ClusterDispatch>,
    ) -> io::Result<Daemon> {
        std::fs::create_dir_all(&config.state_dir)?;
        Daemon::start_inner(config, cache, Some(cluster))
    }

    fn start_inner(
        config: DaemonConfig,
        cache: Arc<PersistentOracleCache>,
        cluster: Option<Arc<dyn ClusterDispatch>>,
    ) -> io::Result<Daemon> {
        let queue = JobQueue::new(config.queue_capacity);
        let mut jobs = HashMap::new();
        let mut max_id = 0u64;
        let mut recovered = Vec::new();
        for entry in std::fs::read_dir(&config.state_dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            let Some(id) = name
                .strip_prefix("job-")
                .and_then(|rest| rest.strip_suffix(".spec.json"))
                .and_then(|id| id.parse::<u64>().ok())
            else {
                continue;
            };
            max_id = max_id.max(id);
            let spec_path = config.state_dir.join(name.as_ref());
            let text = std::fs::read_to_string(&spec_path)?;
            let spec = Json::parse(&text)
                .and_then(|j| JobSpec::from_json(&j, id))
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: {e}", spec_path.display()),
                    )
                })?;
            let result_path = config.state_dir.join(format!("job-{id}.result.json"));
            let record = match std::fs::read_to_string(&result_path) {
                Ok(text) => {
                    // Terminal in a previous life; keep it inspectable.
                    let doc = Json::parse(&text).unwrap_or(Json::Null);
                    let phase = match doc.str_field("status") {
                        Some("failed") => JobPhase::Failed,
                        Some("cancelled") => JobPhase::Cancelled,
                        _ => JobPhase::Done,
                    };
                    JobRecord {
                        spec,
                        phase,
                        error: doc.str_field("error").map(str::to_owned),
                        predicate_calls: doc.u64_field("predicate_calls").unwrap_or(0),
                        resumed: doc.bool_field("resumed").unwrap_or(false),
                        cancel: Arc::new(AtomicBool::new(false)),
                        client: None,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // Unfinished: re-enqueue. A checkpoint file means the
                    // search resumes rather than restarts.
                    let resumed = config.state_dir.join(format!("job-{id}.ckpt")).exists();
                    recovered.push((id, spec.priority));
                    JobRecord {
                        spec,
                        phase: JobPhase::Queued,
                        error: None,
                        predicate_calls: 0,
                        resumed,
                        cancel: Arc::new(AtomicBool::new(false)),
                        client: None,
                    }
                }
                Err(e) => return Err(e),
            };
            jobs.insert(id, record);
        }
        recovered.sort_unstable(); // deterministic re-enqueue order
        for (id, priority) in recovered {
            if queue.push(id, priority).is_err() {
                let job = jobs.get_mut(&id).expect("recovered job");
                job.phase = JobPhase::Failed;
                job.error = Some("queue full during recovery".to_owned());
            }
        }
        let submitted = jobs.len() as u64;
        let shards = (0..config.shards.max(1))
            .map(|_| ShardHandle::new().map(Arc::new))
            .collect::<io::Result<Vec<_>>>()?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        atomic_write_str(&config.state_dir.join("daemon.addr"), &format!("{addr}\n"))?;
        Ok(Daemon {
            state: Arc::new(ServiceState {
                config,
                cache,
                cluster,
                queue,
                jobs: Mutex::new(jobs),
                next_id: AtomicU64::new(max_id + 1),
                shutdown: AtomicBool::new(false),
                busy_nanos: AtomicU64::new(0),
                memo_replays: AtomicU64::new(0),
                started: Instant::now(),
                submitted: AtomicU64::new(submitted),
                addr,
                net: NetState {
                    shards,
                    waiters: Mutex::new(HashMap::new()),
                    subscribers: Mutex::new(HashMap::new()),
                    clients: Mutex::new(HashMap::new()),
                    shed_queue_full: AtomicU64::new(0),
                    shed_client_cap: AtomicU64::new(0),
                    events_sent: AtomicU64::new(0),
                    queue_wait_nanos: AtomicU64::new(0),
                    queue_wait_count: AtomicU64::new(0),
                    queue_wait_max_nanos: AtomicU64::new(0),
                    job_nanos: AtomicU64::new(0),
                    jobs_finished: AtomicU64::new(0),
                },
            }),
            listener,
            addr,
        })
    }

    /// The bound localhost address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until a `shutdown` request: the acceptor hands connections
    /// to event-loop shards round-robin, workers drain the job queue.
    /// Running jobs are asked to cancel (they checkpoint first, so a
    /// restart resumes them), the cache is saved, and `daemon.addr` is
    /// removed.
    pub fn run(self) -> io::Result<()> {
        let state = &self.state;
        std::thread::scope(|scope| {
            for shard_id in 0..state.net.shards.len() {
                let state = Arc::clone(state);
                std::thread::Builder::new()
                    .name(format!("lbr-shard-{shard_id}"))
                    .spawn_scoped(scope, move || run_shard(&state, shard_id))
                    .expect("spawn shard");
            }
            for worker in 0..state.config.workers {
                let state = Arc::clone(state);
                std::thread::Builder::new()
                    .name(format!("lbr-worker-{worker}"))
                    .spawn_scoped(scope, move || {
                        while let Some((id, waited)) = state.queue.pop() {
                            let nanos = waited.as_nanos() as u64;
                            state
                                .net
                                .queue_wait_nanos
                                .fetch_add(nanos, Ordering::Relaxed);
                            state.net.queue_wait_count.fetch_add(1, Ordering::Relaxed);
                            state
                                .net
                                .queue_wait_max_nanos
                                .fetch_max(nanos, Ordering::Relaxed);
                            run_job(&state, id);
                        }
                    })
                    .expect("spawn worker");
            }
            let mut next_shard = 0usize;
            for stream in self.listener.incoming() {
                if state.shutting_down() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                state.net.shards[next_shard].send(ShardMsg::Conn(stream));
                next_shard = (next_shard + 1) % state.net.shards.len();
            }
            // Wake workers; running jobs observe the shutdown flag through
            // their cancel hook and checkpoint out.
            state.queue.close();
        });
        state.cache.save_if_dirty()?;
        let _ = std::fs::remove_file(state.config.state_dir.join("daemon.addr"));
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Request dispatch (runs on shard threads).
// ----------------------------------------------------------------------

/// What a request handler decided, before encoding.
struct Handled {
    /// The immediate response, if any; `None` means the reply is
    /// deferred and will arrive through the shard mailbox.
    response: Option<Json>,
    /// Deferred replies this request registered on the connection.
    defer: u32,
}

impl Handled {
    fn reply(doc: Json) -> Handled {
        Handled {
            response: Some(doc),
            defer: 0,
        }
    }

    fn deferred() -> Handled {
        Handled {
            response: None,
            defer: 1,
        }
    }
}

/// What the shard should do with one decoded frame.
pub(crate) struct Outcome {
    /// Encoded response bytes to queue on the connection, if any.
    pub reply: Option<Vec<u8>>,
    /// Deferred replies registered on the connection by this frame.
    pub defer: u32,
}

/// Handles one frame from connection `conn` of shard `shard`: decodes the
/// request, runs the handler, encodes the response in the frame's own
/// framing.
pub(crate) fn dispatch_frame(
    state: &ServiceState,
    shard: usize,
    conn: u64,
    frame: WireFrame,
) -> Outcome {
    let framing = frame.framing();
    let request = match frame {
        WireFrame::JsonLine(line) => match Json::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                return Outcome {
                    reply: Some(encode_doc(
                        framing,
                        &error_response(&format!("bad request: {e}")),
                    )),
                    defer: 0,
                }
            }
        },
        WireFrame::Binary { opcode, doc } if opcode == OP_DOC => doc,
        WireFrame::Binary { opcode, .. } => {
            return Outcome {
                reply: Some(encode_doc(
                    framing,
                    &error_response(&format!("bad request: unexpected opcode {opcode:#04x}")),
                )),
                defer: 0,
            }
        }
    };
    let ctx = ReqCtx {
        shard,
        conn,
        framing,
    };
    let handled = handle_request(state, &request, &ctx);
    Outcome {
        reply: handled.response.map(|doc| encode_doc(framing, &doc)),
        defer: handled.defer,
    }
}

/// Where a request came from, for deferred replies and fairness caps.
#[derive(Clone, Copy)]
struct ReqCtx {
    shard: usize,
    conn: u64,
    framing: Framing,
}

impl ReqCtx {
    fn peer(&self) -> Peer {
        Peer {
            shard: self.shard,
            conn: self.conn,
            framing: self.framing,
        }
    }
}

pub(crate) fn error_response(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::str(message))])
}

fn ok_response<const N: usize>(fields: [(&str, Json); N]) -> Json {
    let mut doc = vec![("ok".to_owned(), Json::Bool(true))];
    doc.extend(fields.into_iter().map(|(k, v)| (k.to_owned(), v)));
    Json::Obj(doc.into_iter().collect())
}

fn handle_request(state: &ServiceState, request: &Json, ctx: &ReqCtx) -> Handled {
    match request.str_field("op") {
        Some("ping") => Handled::reply(ok_response([])),
        Some("hello") => Handled::reply(handle_hello(state)),
        Some("submit") => handle_submit(state, request, ctx),
        Some("batch") => handle_batch(state, request, ctx),
        Some("status") => Handled::reply(handle_status(state, request)),
        Some("result") => handle_result(state, request, ctx),
        Some("cancel") => Handled::reply(handle_cancel(state, request)),
        Some("stats") => Handled::reply(handle_stats(state)),
        Some("shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            state.queue.close();
            drain_deferred_on_shutdown(state);
            // Unblock the accept loop so `run` can wind down.
            let _ = TcpStream::connect(state.addr);
            Handled::reply(ok_response([]))
        }
        Some(other) => Handled::reply(error_response(&format!("unknown op {other:?}"))),
        None => Handled::reply(error_response("request has no \"op\"")),
    }
}

/// Capability negotiation: what this daemon speaks beyond the v1
/// line-JSON protocol. Old daemons answer `hello` with an unknown-op
/// error, which clients treat as "v1, JSON only".
fn handle_hello(state: &ServiceState) -> Json {
    ok_response([
        ("proto", Json::str("lbr/2")),
        (
            "framings",
            Json::Arr(vec![Json::str("json"), Json::str("binary")]),
        ),
        ("batch", Json::Bool(true)),
        ("events", Json::Bool(true)),
        (
            "max_frame_bytes",
            Json::count(state.config.max_frame_bytes as u64),
        ),
        (
            "max_inflight_per_client",
            Json::count(state.config.max_inflight_per_client as u64),
        ),
    ])
}

/// A load-shed rejection: not a protocol error, an explicit "come back
/// in `retry_after_ms`".
fn shed_response(state: &ServiceState, message: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::str(message)),
        ("shed", Json::Bool(true)),
        ("retry_after_ms", Json::count(state.retry_after_ms())),
    ])
}

fn handle_submit(state: &ServiceState, request: &Json, ctx: &ReqCtx) -> Handled {
    if state.shutting_down() {
        return Handled::reply(error_response("daemon is shutting down"));
    }
    let key = (ctx.shard, ctx.conn);
    let over_cap = {
        let clients = state.net.clients.lock().expect("clients lock");
        clients.get(&key).copied().unwrap_or(0) >= state.config.max_inflight_per_client as u64
    };
    if over_cap {
        state.net.shed_client_cap.fetch_add(1, Ordering::Relaxed);
        return Handled::reply(shed_response(state, "client in-flight cap reached"));
    }
    let id = state.next_id.fetch_add(1, Ordering::SeqCst);
    let spec = match JobSpec::from_json(request, id) {
        Ok(mut spec) => {
            spec.id = id;
            spec
        }
        Err(e) => return Handled::reply(error_response(&e)),
    };
    if let Err(e) = atomic_write_str(&state.job_file(id, "spec.json"), &spec.to_json().render()) {
        return Handled::reply(error_response(&format!("cannot persist spec: {e}")));
    }
    let subscribe = request.bool_field("events").unwrap_or(false);
    let priority = spec.priority;
    state.jobs.lock().expect("jobs lock").insert(
        id,
        JobRecord {
            spec,
            phase: JobPhase::Queued,
            error: None,
            predicate_calls: 0,
            resumed: false,
            cancel: Arc::new(AtomicBool::new(false)),
            client: Some(key),
        },
    );
    if subscribe {
        state
            .net
            .subscribers
            .lock()
            .expect("subscribers lock")
            .entry(id)
            .or_default()
            .push(ctx.peer());
    }
    if state.queue.push(id, priority).is_err() {
        state.jobs.lock().expect("jobs lock").remove(&id);
        let _ = std::fs::remove_file(state.job_file(id, "spec.json"));
        if subscribe {
            state
                .net
                .subscribers
                .lock()
                .expect("subscribers lock")
                .remove(&id);
        }
        state.net.shed_queue_full.fetch_add(1, Ordering::Relaxed);
        return Handled::reply(shed_response(state, "queue full"));
    }
    *state
        .net
        .clients
        .lock()
        .expect("clients lock")
        .entry(key)
        .or_insert(0) += 1;
    state.submitted.fetch_add(1, Ordering::Relaxed);
    Handled {
        response: Some(ok_response([("id", Json::count(id))])),
        defer: u32::from(subscribe),
    }
}

/// Several requests in one frame, answered positionally in one response.
/// Identical `submit` entries coalesce to a single job — the duplicate
/// gets the same id back without a second run (the same idea as the
/// probe cache, lifted to whole jobs).
fn handle_batch(state: &ServiceState, request: &Json, ctx: &ReqCtx) -> Handled {
    let Some(Json::Arr(entries)) = request.get("requests") else {
        return Handled::reply(error_response("batch needs a \"requests\" array"));
    };
    if entries.len() > MAX_BATCH {
        return Handled::reply(error_response(&format!(
            "batch too large (max {MAX_BATCH} requests)"
        )));
    }
    let mut responses = Vec::with_capacity(entries.len());
    let mut defer = 0u32;
    let mut coalesced: HashMap<String, u64> = HashMap::new();
    for entry in entries {
        let response = match entry.str_field("op") {
            Some("submit") => {
                let spec_key = entry.render();
                if let Some(&id) = coalesced.get(&spec_key) {
                    ok_response([("id", Json::count(id)), ("coalesced", Json::Bool(true))])
                } else {
                    let handled = handle_submit(state, entry, ctx);
                    defer += handled.defer;
                    let response = handled
                        .response
                        .unwrap_or_else(|| error_response("submit produced no response"));
                    if response.bool_field("ok") == Some(true) {
                        if let Some(id) = response.u64_field("id") {
                            coalesced.insert(spec_key, id);
                        }
                    }
                    response
                }
            }
            Some("batch") => error_response("batch cannot nest"),
            Some("result") if entry.bool_field("wait").unwrap_or(false) => {
                error_response("result with \"wait\" is not allowed in a batch")
            }
            _ => {
                let handled = handle_request(state, entry, ctx);
                defer += handled.defer;
                handled
                    .response
                    .unwrap_or_else(|| error_response("request deferred inside a batch"))
            }
        };
        responses.push(response);
    }
    Handled {
        response: Some(ok_response([("responses", Json::Arr(responses))])),
        defer,
    }
}

fn handle_status(state: &ServiceState, request: &Json) -> Json {
    let Some(id) = request.u64_field("id") else {
        return error_response("status needs an \"id\"");
    };
    let jobs = state.jobs.lock().expect("jobs lock");
    match jobs.get(&id) {
        Some(job) => {
            let mut doc = vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("id".to_owned(), Json::count(id)),
                ("phase".to_owned(), Json::str(job.phase.name())),
                ("resumed".to_owned(), Json::Bool(job.resumed)),
            ];
            if let Some(e) = &job.error {
                doc.push(("error".to_owned(), Json::str(e)));
            }
            Json::Obj(doc.into_iter().collect())
        }
        None => error_response(&format!("no such job {id}")),
    }
}

/// The terminal result of `id` as a response document (file-backed, so
/// it survives restarts).
fn result_payload(state: &ServiceState, id: u64) -> Json {
    match std::fs::read_to_string(state.job_file(id, "result.json")) {
        Ok(text) => match Json::parse(&text) {
            Ok(doc) => ok_response([("result", doc)]),
            Err(e) => error_response(&format!("corrupt result file: {e}")),
        },
        Err(e) => error_response(&format!("cannot read result: {e}")),
    }
}

/// `result`: immediate if terminal; with `"wait": true` the connection is
/// parked as a *waiter* — no thread sleeps, the completing worker pushes
/// the encoded response through the owning shard's mailbox.
fn handle_result(state: &ServiceState, request: &Json, ctx: &ReqCtx) -> Handled {
    let Some(id) = request.u64_field("id") else {
        return Handled::reply(error_response("result needs an \"id\""));
    };
    let wait = request.bool_field("wait").unwrap_or(false);
    let phase = {
        let jobs = state.jobs.lock().expect("jobs lock");
        match jobs.get(&id) {
            Some(job) => job.phase,
            None => return Handled::reply(error_response(&format!("no such job {id}"))),
        }
    };
    if phase.is_terminal() {
        return Handled::reply(result_payload(state, id));
    }
    if !wait {
        return Handled::reply(error_response(&format!("job {id} is {}", phase.name())));
    }
    if state.shutting_down() {
        return Handled::reply(error_response("daemon is shutting down"));
    }
    let me = ctx.peer();
    state
        .net
        .waiters
        .lock()
        .expect("waiters lock")
        .entry(id)
        .or_default()
        .push(me);
    // Close the race with a completion that drained the waiter list
    // between our phase check and our registration: if the job is
    // terminal *now*, either the completion saw us (it owns the reply —
    // we just stay deferred) or it did not (our entry is still
    // registered — we remove it and reply ourselves).
    let phase = state
        .jobs
        .lock()
        .expect("jobs lock")
        .get(&id)
        .map(|job| job.phase);
    if phase.is_some_and(|p| p.is_terminal()) {
        let mut waiters = state.net.waiters.lock().expect("waiters lock");
        if let Some(list) = waiters.get_mut(&id) {
            if let Some(at) = list.iter().position(|p| *p == me) {
                list.remove(at);
                if list.is_empty() {
                    waiters.remove(&id);
                }
                drop(waiters);
                return Handled::reply(result_payload(state, id));
            }
        }
    }
    Handled::deferred()
}

fn handle_cancel(state: &ServiceState, request: &Json) -> Json {
    let Some(id) = request.u64_field("id") else {
        return error_response("cancel needs an \"id\"");
    };
    let queued_doc = {
        let mut jobs = state.jobs.lock().expect("jobs lock");
        match jobs.get_mut(&id) {
            Some(job) if job.phase.is_terminal() => {
                return error_response(&format!("job {id} already {}", job.phase.name()))
            }
            Some(job) if job.phase == JobPhase::Queued => {
                // Finalize below; a worker that pops the id concurrently
                // sees the cancel flag and finalizes identically (the
                // `client` take in `notify_terminal` keeps the in-flight
                // accounting single-shot either way).
                job.cancel.store(true, Ordering::SeqCst);
                Some(terminal_result_doc(
                    id,
                    "cancelled",
                    Some("cancelled while queued"),
                ))
            }
            Some(job) => {
                job.cancel.store(true, Ordering::SeqCst);
                None
            }
            None => return error_response(&format!("no such job {id}")),
        }
    };
    if let Some(doc) = queued_doc {
        let _ = atomic_write_str(&state.job_file(id, "result.json"), &doc.render());
        {
            let mut jobs = state.jobs.lock().expect("jobs lock");
            if let Some(job) = jobs.get_mut(&id) {
                if !job.phase.is_terminal() {
                    job.phase = JobPhase::Cancelled;
                    job.error = Some("cancelled while queued".to_owned());
                }
            }
        }
        notify_terminal(state, id, &doc);
    }
    ok_response([("id", Json::count(id))])
}

fn handle_stats(state: &ServiceState) -> Json {
    let uptime = state.started.elapsed().as_secs_f64();
    let busy = state.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
    let utilization = if uptime > 0.0 {
        (busy / (uptime * state.config.workers as f64)).min(1.0)
    } else {
        0.0
    };
    let cache = state.cache.stats();
    let jobs = state.jobs.lock().expect("jobs lock");
    let mut counts = [0u64; 5];
    let mut per_job: Vec<(u64, &JobRecord)> = Vec::with_capacity(jobs.len());
    for (&id, job) in jobs.iter() {
        counts[match job.phase {
            JobPhase::Queued => 0,
            JobPhase::Running => 1,
            JobPhase::Done => 2,
            JobPhase::Failed => 3,
            JobPhase::Cancelled => 4,
        }] += 1;
        per_job.push((id, job));
    }
    per_job.sort_unstable_by_key(|(id, _)| *id);
    let per_job = Json::Arr(
        per_job
            .into_iter()
            .map(|(id, job)| {
                Json::obj([
                    ("id", Json::count(id)),
                    ("phase", Json::str(job.phase.name())),
                    ("predicate_calls", Json::count(job.predicate_calls)),
                    ("resumed", Json::Bool(job.resumed)),
                ])
            })
            .collect(),
    );
    drop(jobs);
    let wait_count = state.net.queue_wait_count.load(Ordering::Relaxed);
    let avg_wait_ms = if wait_count == 0 {
        0.0
    } else {
        state.net.queue_wait_nanos.load(Ordering::Relaxed) as f64 / wait_count as f64 / 1e6
    };
    let max_wait_ms = state.net.queue_wait_max_nanos.load(Ordering::Relaxed) as f64 / 1e6;
    let shards = Json::Arr(
        state
            .net
            .shards
            .iter()
            .map(|s| {
                let shard_busy = s.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
                Json::obj([
                    (
                        "connections",
                        Json::count(s.open_conns.load(Ordering::Relaxed)),
                    ),
                    (
                        "utilization",
                        Json::Num(if uptime > 0.0 {
                            (shard_busy / uptime).min(1.0)
                        } else {
                            0.0
                        }),
                    ),
                ])
            })
            .collect(),
    );
    let sum = |f: fn(&ShardHandle) -> &AtomicU64| {
        state
            .net
            .shards
            .iter()
            .map(|s| f(s).load(Ordering::Relaxed))
            .sum::<u64>()
    };
    let mut response = ok_response([
        ("uptime_secs", Json::Num(uptime)),
        ("workers", Json::count(state.config.workers as u64)),
        ("queue_depth", Json::count(state.queue.depth() as u64)),
        ("worker_utilization", Json::Num(utilization)),
        (
            "jobs",
            Json::obj([
                (
                    "submitted",
                    Json::count(state.submitted.load(Ordering::Relaxed)),
                ),
                ("queued", Json::count(counts[0])),
                ("running", Json::count(counts[1])),
                ("done", Json::count(counts[2])),
                ("failed", Json::count(counts[3])),
                ("cancelled", Json::count(counts[4])),
                (
                    "replayed",
                    Json::count(state.memo_replays.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "queue",
            Json::obj([
                ("depth", Json::count(state.queue.depth() as u64)),
                ("capacity", Json::count(state.queue.capacity() as u64)),
                ("avg_wait_ms", Json::Num(avg_wait_ms)),
                ("max_wait_ms", Json::Num(max_wait_ms)),
                (
                    "shed_queue_full",
                    Json::count(state.net.shed_queue_full.load(Ordering::Relaxed)),
                ),
                (
                    "shed_client_cap",
                    Json::count(state.net.shed_client_cap.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "net",
            Json::obj([
                ("open_connections", Json::count(sum(|s| &s.open_conns))),
                ("frames_in", Json::count(sum(|s| &s.frames_in))),
                ("frames_out", Json::count(sum(|s| &s.frames_out))),
                (
                    "events_sent",
                    Json::count(state.net.events_sent.load(Ordering::Relaxed)),
                ),
                ("events_dropped", Json::count(sum(|s| &s.events_dropped))),
                ("closed_idle", Json::count(sum(|s| &s.closed_idle))),
                ("closed_protocol", Json::count(sum(|s| &s.closed_protocol))),
                ("shards", shards),
            ]),
        ),
        (
            "strategies",
            // Enumerated from the strategy registry — the same single
            // source of truth the pipeline dispatches on, so clients
            // never hardcode strategy strings.
            Json::Arr(
                strategy_catalog()
                    .into_iter()
                    .map(|(name, caps)| {
                        Json::obj([
                            ("name", Json::str(name)),
                            ("resumable", Json::Bool(caps.resumable)),
                            ("speculative", Json::Bool(caps.speculative)),
                            ("per_error", Json::Bool(caps.per_error)),
                            ("honors_engine", Json::Bool(caps.honors_engine)),
                            ("honors_order", Json::Bool(caps.honors_order)),
                            ("uses_model", Json::Bool(caps.uses_model)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "cache",
            // The counter names come from the one shared `CacheStats`
            // serialization, so the daemon can never drift from the CSV
            // and JSON frontends.
            Json::Obj(
                cache
                    .fields()
                    .iter()
                    .map(|&(k, v)| (k.to_owned(), Json::count(v)))
                    .chain([("hit_rate".to_owned(), Json::Num(cache.hit_rate()))])
                    .collect(),
            ),
        ),
        ("per_job", per_job),
    ]);
    if let Some(cluster) = &state.cluster {
        if let Json::Obj(fields) = &mut response {
            fields.insert("cluster".to_owned(), cluster.stats());
        }
    }
    response
}

// ----------------------------------------------------------------------
// Deferred-reply plumbing (runs on worker threads).
// ----------------------------------------------------------------------

/// Fans a job's terminal outcome out to every parked `result --wait`
/// and event subscriber, and releases the submitter's in-flight slot.
/// Must run *after* the result file is written and the in-memory phase is
/// terminal. Idempotent: a second call finds nothing left to drain.
fn notify_terminal(state: &ServiceState, id: u64, doc: &Json) {
    let waiters = state
        .net
        .waiters
        .lock()
        .expect("waiters lock")
        .remove(&id)
        .unwrap_or_default();
    for peer in waiters {
        let response = ok_response([("result", doc.clone())]);
        state.deliver(&peer, encode_doc(peer.framing, &response), true, false);
    }
    let subscribers = state
        .net
        .subscribers
        .lock()
        .expect("subscribers lock")
        .remove(&id)
        .unwrap_or_default();
    if !subscribers.is_empty() {
        let event = Json::obj([
            ("event", Json::str("terminal")),
            ("id", Json::count(id)),
            ("result", doc.clone()),
        ]);
        for peer in &subscribers {
            state.deliver(peer, encode_event(peer.framing, &event), true, false);
        }
        state
            .net
            .events_sent
            .fetch_add(subscribers.len() as u64, Ordering::Relaxed);
    }
    let client = state
        .jobs
        .lock()
        .expect("jobs lock")
        .get_mut(&id)
        .and_then(|job| job.client.take());
    if let Some(key) = client {
        let mut clients = state.net.clients.lock().expect("clients lock");
        if let Some(count) = clients.get_mut(&key) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                clients.remove(&key);
            }
        }
    }
}

/// Streams one non-terminal event to a job's subscribers (dropped, not
/// queued, for peers that are not keeping up).
fn publish_event(state: &ServiceState, id: u64, event: &Json) {
    let peers: Vec<Peer> = match state
        .net
        .subscribers
        .lock()
        .expect("subscribers lock")
        .get(&id)
    {
        Some(list) => list.clone(),
        None => return,
    };
    for peer in &peers {
        state.deliver(peer, encode_event(peer.framing, event), false, true);
    }
    state
        .net
        .events_sent
        .fetch_add(peers.len() as u64, Ordering::Relaxed);
}

fn publish_progress(state: &ServiceState, id: u64, ck: &lbr_core::GbrCheckpoint) {
    let event = Json::obj([
        ("event", Json::str("progress")),
        ("id", Json::count(id)),
        ("iterations", Json::count(ck.iterations as u64)),
        ("search_space", Json::count(ck.search_space.len() as u64)),
        (
            "best",
            ck.best
                .as_ref()
                .map_or(Json::Null, |b| Json::count(b.len() as u64)),
        ),
    ]);
    publish_event(state, id, &event);
}

/// On shutdown, every parked waiter gets an error response and every
/// subscriber an error event — nothing is left hanging on a connection
/// the shards are about to drop.
fn drain_deferred_on_shutdown(state: &ServiceState) {
    let waiters: Vec<Peer> = state
        .net
        .waiters
        .lock()
        .expect("waiters lock")
        .drain()
        .flat_map(|(_, peers)| peers)
        .collect();
    let doc = error_response("daemon is shutting down");
    for peer in waiters {
        state.deliver(&peer, encode_doc(peer.framing, &doc), true, false);
    }
    let subscribers: Vec<(u64, Vec<Peer>)> = state
        .net
        .subscribers
        .lock()
        .expect("subscribers lock")
        .drain()
        .collect();
    for (id, peers) in subscribers {
        let event = Json::obj([
            ("event", Json::str("error")),
            ("id", Json::count(id)),
            ("error", Json::str("daemon is shutting down")),
        ]);
        for peer in peers {
            state.deliver(&peer, encode_event(peer.framing, &event), true, false);
        }
    }
    for shard in &state.net.shards {
        shard.wake();
    }
}

// ----------------------------------------------------------------------
// Job execution (runs on worker threads).
// ----------------------------------------------------------------------

/// A worker picked job `id` off the queue: run it and persist the outcome.
fn run_job(state: &ServiceState, id: u64) {
    let (spec, cancel) = {
        let mut jobs = state.jobs.lock().expect("jobs lock");
        let Some(job) = jobs.get_mut(&id) else { return };
        if job.phase != JobPhase::Queued {
            return; // cancelled-while-queued jobs are finalized elsewhere
        }
        if job.cancel.load(Ordering::SeqCst) {
            let doc = terminal_result_doc(id, "cancelled", Some("cancelled while queued"));
            drop(jobs);
            let _ = atomic_write_str(&state.job_file(id, "result.json"), &doc.render());
            let mut jobs = state.jobs.lock().expect("jobs lock");
            if let Some(job) = jobs.get_mut(&id) {
                job.phase = JobPhase::Cancelled;
                job.error = Some("cancelled while queued".to_owned());
            }
            drop(jobs);
            notify_terminal(state, id, &doc);
            return;
        }
        job.phase = JobPhase::Running;
        (job.spec.clone(), Arc::clone(&job.cancel))
    };
    if state.shutting_down() {
        // Leave it Queued on disk; the next daemon re-enqueues it.
        let mut jobs = state.jobs.lock().expect("jobs lock");
        if let Some(job) = jobs.get_mut(&id) {
            job.phase = JobPhase::Queued;
        }
        return;
    }
    publish_event(
        state,
        id,
        &Json::obj([("event", Json::str("running")), ("id", Json::count(id))]),
    );
    let started = Instant::now();
    let memo = state
        .config
        .memoize_results
        .then(|| std::fs::read(&spec.input).ok())
        .flatten()
        .map(|bytes| job_memo_digest(&spec, &bytes));
    if let Some(digest) = memo {
        if let Some(doc) = try_replay(state, &spec, digest, started) {
            let elapsed = started.elapsed().as_nanos() as u64;
            state.busy_nanos.fetch_add(elapsed, Ordering::Relaxed);
            state.memo_replays.fetch_add(1, Ordering::Relaxed);
            state.net.job_nanos.fetch_add(elapsed, Ordering::Relaxed);
            state.net.jobs_finished.fetch_add(1, Ordering::Relaxed);
            let _ = atomic_write_str(&state.job_file(id, "result.json"), &doc.render());
            {
                let mut jobs = state.jobs.lock().expect("jobs lock");
                if let Some(job) = jobs.get_mut(&id) {
                    job.phase = JobPhase::Done;
                    job.predicate_calls = doc.u64_field("predicate_calls").unwrap_or(0);
                }
            }
            notify_terminal(state, id, &doc);
            return;
        }
    }
    let outcome = execute_job(state, &spec, &cancel, started);
    let elapsed = started.elapsed().as_nanos() as u64;
    state.busy_nanos.fetch_add(elapsed, Ordering::Relaxed);
    let _ = state.cache.save_if_dirty();
    match outcome {
        Ok((report, resumed)) => {
            state.net.job_nanos.fetch_add(elapsed, Ordering::Relaxed);
            state.net.jobs_finished.fetch_add(1, Ordering::Relaxed);
            let doc = success_result_doc(&spec, &report, resumed);
            if let Some(digest) = memo {
                store_memo(state, digest, &doc, &report);
            }
            let _ = atomic_write_str(&state.job_file(id, "result.json"), &doc.render());
            let _ = std::fs::remove_file(state.job_file(id, "ckpt"));
            {
                let mut jobs = state.jobs.lock().expect("jobs lock");
                if let Some(job) = jobs.get_mut(&id) {
                    job.phase = JobPhase::Done;
                    job.predicate_calls = report.predicate_calls;
                    job.resumed = resumed;
                }
            }
            notify_terminal(state, id, &doc);
        }
        Err(JobStop::Cancelled) if state.shutting_down() => {
            // Checkpointed out for shutdown: stays resumable, not terminal.
            let mut jobs = state.jobs.lock().expect("jobs lock");
            if let Some(job) = jobs.get_mut(&id) {
                job.phase = JobPhase::Queued;
            }
        }
        Err(stop) => {
            let (status, error) = match stop {
                JobStop::Cancelled => ("cancelled", "cancelled by request".to_owned()),
                JobStop::Failed(e) => ("failed", e),
                // shutdown case handled above
            };
            let doc = terminal_result_doc(id, status, Some(&error));
            let _ = atomic_write_str(&state.job_file(id, "result.json"), &doc.render());
            {
                let mut jobs = state.jobs.lock().expect("jobs lock");
                if let Some(job) = jobs.get_mut(&id) {
                    job.phase = if status == "cancelled" {
                        JobPhase::Cancelled
                    } else {
                        JobPhase::Failed
                    };
                    job.error = Some(error);
                }
            }
            notify_terminal(state, id, &doc);
        }
    }
}

/// Runs the reduction itself: parses the container per `spec.format`,
/// builds the matching oracle, and hands both to the format-generic
/// [`run_reduction`]. `Ok` carries the report (with the reduced input
/// already serialized back to container bytes) and whether the run
/// continued from a checkpoint.
fn execute_job(
    state: &ServiceState,
    spec: &JobSpec,
    cancel: &AtomicBool,
    started: Instant,
) -> Result<(ReductionReport<Vec<u8>>, bool), JobStop> {
    let bytes = std::fs::read(&spec.input)
        .map_err(|e| JobStop::Failed(format!("cannot read {}: {e}", spec.input)))?;
    match spec.format.as_str() {
        "stackvm" => {
            let module = <StackModule as Input>::from_bytes(&bytes)
                .map_err(|e| JobStop::Failed(format!("bad container: {e}")))?;
            let bugs = match spec.decompiler.as_str() {
                "a" => StackBugSet::lowering_a(),
                "b" => StackBugSet::lowering_b(),
                "c" => StackBugSet::lowering_c(),
                _ => StackBugSet::all(),
            };
            let oracle = StackOracle::new(&module, bugs);
            run_reduction(state, spec, cancel, started, &bytes, &module, &oracle)
        }
        _ => {
            let program =
                read_program(&bytes).map_err(|e| JobStop::Failed(format!("bad container: {e}")))?;
            let bugs = match spec.decompiler.as_str() {
                "a" => BugSet::decompiler_a(),
                "b" => BugSet::decompiler_b(),
                "c" => BugSet::decompiler_c(),
                _ => BugSet::all(),
            };
            let oracle = DecompilerOracle::new(&program, bugs);
            run_reduction(state, spec, cancel, started, &bytes, &program, &oracle)
        }
    }
}

/// The format-generic body of [`execute_job`]: identical caching,
/// checkpointing, cancellation, and cluster plumbing for every frontend
/// behind the [`Input`] trait.
fn run_reduction<I: Input, O: InputOracle<I>>(
    state: &ServiceState,
    spec: &JobSpec,
    cancel: &AtomicBool,
    started: Instant,
    bytes: &[u8],
    input: &I,
    oracle: &O,
) -> Result<(ReductionReport<Vec<u8>>, bool), JobStop> {
    if !oracle.is_failing() {
        return Err(JobStop::Failed(format!(
            "input does not trigger decompiler {}'s bugs — nothing to reduce",
            spec.decompiler
        )));
    }
    let options = RunOptions {
        probe_threads: spec.probe_threads,
        probe_latency_micros: spec.probe_latency_micros,
        ..RunOptions::default()
    };
    let deadline = (spec.deadline_secs > 0.0).then(|| Duration::from_secs_f64(spec.deadline_secs));
    // The registry's capability flags decide the service path: resumable
    // strategies get checkpoint/resume and the cluster distributor; every
    // job shares the persistent probe cache (strategies that have no use
    // for it — per their caps — simply ignore the hook; the trace-guided
    // mode uses it as its cross-run trace store).
    let resumable = strategy_registry::<I>()
        .get(&spec.strategy)
        .is_some_and(|s| s.caps().resumable);
    let namespace = namespace_digest(&spec.decompiler, bytes);
    let scoped = state.cache.namespaced(namespace);
    let cancel_hook = move || {
        cancel.load(Ordering::SeqCst)
            || state.shutting_down()
            || deadline.is_some_and(|d| started.elapsed() > d)
    };
    let report = if resumable {
        // The service path: persistent cache + checkpoint/resume + cancel.
        // With a cluster attached, the job's speculative frontier is
        // served by worker nodes; the session output stays bit-identical
        // (the distributor's contract), so checkpoints, caching, and
        // resume compose unchanged.
        let distributor = state
            .cluster
            .as_ref()
            .and_then(|cluster| cluster.job_distributor(spec, bytes));
        let ckpt_path = state.job_file(spec.id, "ckpt");
        // A checkpoint torn mid-write (truncated file, garbage bytes) is
        // discarded and the search restarts from scratch: determinism
        // guarantees the restarted run lands on the identical result, so
        // the only thing a corrupt checkpoint may ever cost is time.
        let resume = match load_checkpoint(&ckpt_path) {
            Ok(resume) => resume,
            Err(_) => {
                let _ = std::fs::remove_file(&ckpt_path);
                None
            }
        };
        let resumed = resume.is_some();
        // Checkpoint (with the cache alongside) on the first iteration,
        // then at most every `checkpoint_interval`: the fsync pair is the
        // dominant per-iteration cost of warm jobs, and throttling it
        // only widens the resume window — never the result. Progress
        // events stream on every iteration regardless.
        let interval = state.config.checkpoint_interval;
        let mut last_saved: Option<Instant> = None;
        let mut checkpoint_hook = |ck: &lbr_core::GbrCheckpoint| {
            publish_progress(state, spec.id, ck);
            if last_saved.is_none_or(|at| at.elapsed() >= interval) {
                let _ = save_checkpoint(&ckpt_path, ck);
                let _ = state.cache.save_if_dirty();
                last_saved = Some(Instant::now());
            }
        };
        let mut session = ReductionSession::new(input, oracle)
            .strategy(spec.strategy.clone())
            .cost_per_call(spec.cost)
            .options(options)
            .cache(&scoped)
            .cancel(&cancel_hook)
            .checkpoint(&mut checkpoint_hook);
        if let Some(ck) = resume {
            session = session.resume(ck);
        }
        if let Some(dist) = &distributor {
            session = session.distributor(&**dist);
        }
        let report = session.run().map_err(map_pipeline_error)?;
        (report, resumed)
    } else {
        // Non-resumable strategies run uncheckpointed, but still share
        // the persistent cache and honor cancellation where their caps
        // wire it through.
        let report = ReductionSession::new(input, oracle)
            .strategy(spec.strategy.clone())
            .cost_per_call(spec.cost)
            .options(options)
            .cache(&scoped)
            .cancel(&cancel_hook)
            .run()
            .map_err(map_pipeline_error)?;
        (report, false)
    };
    let (report, resumed) = report;
    let report = report.map_reduced(|reduced| reduced.to_bytes());
    if let Some(out) = &spec.output {
        atomic_write(Path::new(out), &report.reduced)
            .map_err(|e| JobStop::Failed(format!("cannot write {out}: {e}")))?;
    }
    Ok((report, resumed))
}

fn map_pipeline_error(e: PipelineError) -> JobStop {
    match e {
        PipelineError::Gbr(GbrError::Cancelled) => JobStop::Cancelled,
        other => JobStop::Failed(other.to_string()),
    }
}

/// The result document of a successful job. The `trace_digest` is the
/// hex-rendered [`ReductionTrace::digest`](lbr_core::ReductionTrace) —
/// comparing it against an in-process run proves the daemon produced a
/// bit-identical reduction (JSON numbers cannot carry a full u64 exactly,
/// hence the string).
/// The content address of a job for the result store: a digest of the
/// input bytes and every spec field that can influence the reduction
/// (oracle, strategy, cost model, probe configuration). Scheduling-only
/// fields — priority, deadline, output path — are deliberately excluded.
fn job_memo_digest(spec: &JobSpec, input: &[u8]) -> u64 {
    let meta = format!(
        "{}|{}|{}|{}|{}|{}",
        spec.format,
        spec.decompiler,
        spec.strategy,
        spec.cost.to_bits(),
        spec.probe_threads,
        spec.probe_latency_micros
    );
    namespace_digest(&meta, input)
}

fn memo_file(state: &ServiceState, digest: u64, suffix: &str) -> PathBuf {
    state
        .config
        .state_dir
        .join("memo")
        .join(format!("{digest:016x}.{suffix}"))
}

/// Answers a job from the result store, if an identical job already ran:
/// writes the requested output from the stored reduced container and
/// returns the stored result document with this job's identity patched
/// in. Any missing or unreadable store file simply means "run it".
fn try_replay(state: &ServiceState, spec: &JobSpec, digest: u64, started: Instant) -> Option<Json> {
    let text = std::fs::read_to_string(memo_file(state, digest, "json")).ok()?;
    let Json::Obj(mut fields) = Json::parse(&text).ok()? else {
        return None;
    };
    let reduced = std::fs::read(memo_file(state, digest, "lbrc")).ok()?;
    if let Some(out) = &spec.output {
        atomic_write(Path::new(out), &reduced).ok()?;
        fields.insert("output".to_owned(), Json::str(out));
    }
    fields.insert("id".to_owned(), Json::count(spec.id));
    fields.insert("resumed".to_owned(), Json::Bool(false));
    fields.insert("replayed".to_owned(), Json::Bool(true));
    fields.insert(
        "wall_secs".to_owned(),
        Json::Num(started.elapsed().as_secs_f64()),
    );
    Some(Json::Obj(fields))
}

/// Persists a finished job into the result store: the reduced container
/// first, then the result document (so a present document always finds
/// its bytes), both atomically. Per-run fields are stripped; they are
/// re-stamped at replay time.
fn store_memo(state: &ServiceState, digest: u64, doc: &Json, report: &ReductionReport<Vec<u8>>) {
    let Json::Obj(mut fields) = doc.clone() else {
        return;
    };
    for per_run in ["id", "output", "wall_secs", "resumed", "replayed"] {
        fields.remove(per_run);
    }
    let dir = state.config.state_dir.join("memo");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if atomic_write(&memo_file(state, digest, "lbrc"), &report.reduced).is_err() {
        return;
    }
    let _ = atomic_write_str(
        &memo_file(state, digest, "json"),
        &Json::Obj(fields).render(),
    );
}

fn success_result_doc(spec: &JobSpec, report: &ReductionReport<Vec<u8>>, resumed: bool) -> Json {
    let mut fields = vec![
        ("id", Json::count(spec.id)),
        ("status", Json::str("done")),
        ("format", Json::str(&spec.format)),
        ("strategy", Json::str(&report.strategy)),
        (
            "initial_classes",
            Json::count(report.initial.classes as u64),
        ),
        ("initial_bytes", Json::count(report.initial.bytes as u64)),
        (
            "final_classes",
            Json::count(report.final_metrics.classes as u64),
        ),
        (
            "final_bytes",
            Json::count(report.final_metrics.bytes as u64),
        ),
        ("predicate_calls", Json::count(report.predicate_calls)),
        ("cache_hits", Json::count(report.cache_hits())),
        ("cache_misses", Json::count(report.cache_misses())),
        (
            "trace_digest",
            Json::str(format!("{:016x}", report.trace.digest())),
        ),
        ("resumed", Json::Bool(resumed)),
        ("errors_preserved", Json::Bool(report.errors_preserved)),
        ("still_valid", Json::Bool(report.still_valid)),
        ("modeled_secs", Json::Num(report.modeled_secs)),
        ("wall_secs", Json::Num(report.wall_secs)),
    ];
    if let Some(out) = &spec.output {
        fields.push(("output", Json::str(out)));
    }
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn terminal_result_doc(id: u64, status: &str, error: Option<&str>) -> Json {
    let mut fields = vec![("id", Json::count(id)), ("status", Json::str(status))];
    if let Some(e) = error {
        fields.push(("error", Json::str(e)));
    }
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}
