//! Job specifications and lifecycle states.

use crate::json::Json;

/// What a submitted job asks for. Persisted as `job-<id>.spec.json` in the
//  state directory so a restarted daemon can re-enqueue unfinished jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Daemon-assigned id (monotonic across restarts).
    pub id: u64,
    /// Path to the `.lbrc` benchmark container to reduce.
    pub input: String,
    /// Input format of the container: `classfile` (default) or `stackvm`.
    pub format: String,
    /// Decompiler whose bugs the oracle preserves: `a`, `b`, `c`, `all`.
    pub decompiler: String,
    /// Reduction strategy: any name or alias in the pipeline's strategy
    /// registry (`logical`, the default, resolves to `logical/greedy`).
    /// Strategies whose capability flags mark them resumable get
    /// checkpoint/resume and the distributor; every job shares the
    /// persistent probe cache.
    pub strategy: String,
    /// Queue priority, 0–255; higher pops first.
    pub priority: u8,
    /// Modeled cost of one tool invocation in seconds (default 33, the
    /// paper's measured decompile+recompile time).
    pub cost: f64,
    /// Speculative probe threads inside the job's GBR search (1 = off).
    pub probe_threads: usize,
    /// Emulated tool latency per fresh probe, microseconds.
    pub probe_latency_micros: u64,
    /// Where to write the reduced container (optional).
    pub output: Option<String>,
    /// Wall-clock deadline in seconds from job start; 0 = none. A job
    /// over its deadline is cancelled cooperatively (between probes).
    pub deadline_secs: f64,
}

impl JobSpec {
    /// Parses a spec from a `submit` request (or a persisted spec file).
    /// `id` comes from the daemon, not the document, unless present.
    pub fn from_json(j: &Json, fallback_id: u64) -> Result<JobSpec, String> {
        let input = j
            .str_field("input")
            .ok_or("submit: missing \"input\"")?
            .to_owned();
        let format = j.str_field("format").unwrap_or("classfile").to_owned();
        match format.as_str() {
            "classfile" | "stackvm" => {}
            other => return Err(format!("submit: unknown format {other:?}")),
        }
        let decompiler = j.str_field("decompiler").unwrap_or("a").to_owned();
        match decompiler.as_str() {
            "a" | "b" | "c" | "all" => {}
            other => return Err(format!("submit: unknown decompiler {other:?}")),
        }
        let strategy = j.str_field("strategy").unwrap_or("logical").to_owned();
        if !lbr_jreduce::known_strategy(&strategy) {
            return Err(format!("submit: unknown strategy {strategy:?}"));
        }
        let priority = j.u64_field("priority").unwrap_or(0).min(255) as u8;
        // Same default as the `reduce` CLI: the paper's ≈33 s tool run.
        let cost = j.f64_field("cost").unwrap_or(33.0);
        let probe_threads = j.u64_field("probe_threads").unwrap_or(1).max(1) as usize;
        let probe_latency_micros = j.u64_field("probe_latency_micros").unwrap_or(0);
        let output = j.str_field("output").map(str::to_owned);
        let deadline_secs = j.f64_field("deadline_secs").unwrap_or(0.0);
        Ok(JobSpec {
            id: j.u64_field("id").unwrap_or(fallback_id),
            input,
            format,
            decompiler,
            strategy,
            priority,
            cost,
            probe_threads,
            probe_latency_micros,
            output,
            deadline_secs,
        })
    }

    /// Renders the spec for persistence.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id", Json::count(self.id)),
            ("input", Json::str(&self.input)),
            ("format", Json::str(&self.format)),
            ("decompiler", Json::str(&self.decompiler)),
            ("strategy", Json::str(&self.strategy)),
            ("priority", Json::count(self.priority as u64)),
            ("cost", Json::Num(self.cost)),
            ("probe_threads", Json::count(self.probe_threads as u64)),
            (
                "probe_latency_micros",
                Json::count(self.probe_latency_micros),
            ),
            ("deadline_secs", Json::Num(self.deadline_secs)),
        ];
        if let Some(out) = &self.output {
            fields.push(("output", Json::str(out)));
        }
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting in the queue.
    Queued,
    /// A worker is reducing it.
    Running,
    /// Finished; its result file exists.
    Done,
    /// Failed; the error string is in the job record.
    Failed,
    /// Cancelled by request (or by its deadline).
    Cancelled,
}

impl JobPhase {
    /// Protocol name of the phase.
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Cancelled => "cancelled",
        }
    }

    /// Whether the job will never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobPhase::Done | JobPhase::Failed | JobPhase::Cancelled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let spec = JobSpec {
            id: 7,
            input: "/tmp/bench.lbrc".into(),
            format: "stackvm".into(),
            decompiler: "b".into(),
            strategy: "logical".into(),
            priority: 9,
            cost: 33.0,
            probe_threads: 4,
            probe_latency_micros: 20_000,
            output: Some("/tmp/out.lbrc".into()),
            deadline_secs: 120.0,
        };
        let parsed = JobSpec::from_json(&spec.to_json(), 0).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn defaults_and_validation() {
        let j = Json::parse(r#"{"input":"x.lbrc"}"#).unwrap();
        let spec = JobSpec::from_json(&j, 3).unwrap();
        assert_eq!(spec.id, 3);
        assert_eq!(spec.format, "classfile");
        assert_eq!(spec.decompiler, "a");
        assert_eq!(spec.strategy, "logical");
        assert_eq!(spec.probe_threads, 1);
        assert!(JobSpec::from_json(
            &Json::parse(r#"{"input":"x","decompiler":"z"}"#).unwrap(),
            0
        )
        .is_err());
        assert!(
            JobSpec::from_json(&Json::parse(r#"{"input":"x","format":"wasm"}"#).unwrap(), 0)
                .is_err()
        );
        assert!(
            JobSpec::from_json(&Json::parse(r#"{"input":"x","strategy":"z"}"#).unwrap(), 0)
                .is_err()
        );
        // Registry names and historical aliases both validate.
        for name in [
            "hdd",
            "transform",
            "logical/trace-guided",
            "ddmin",
            "lossy2",
        ] {
            let doc = Json::parse(&format!(r#"{{"input":"x","strategy":"{name}"}}"#)).unwrap();
            assert_eq!(JobSpec::from_json(&doc, 0).unwrap().strategy, name);
        }
        assert!(JobSpec::from_json(&Json::parse("{}").unwrap(), 0).is_err());
    }
}
