//! Event-loop shards: the daemon's connection plane.
//!
//! A single acceptor hands each new connection to one of N shards
//! (round-robin). Each shard owns its connections outright — sockets,
//! read decoders, write buffers — and multiplexes them with one
//! [`Poller`](crate::reactor::Poller) on one thread, so thousands of
//! idle connections cost no threads and no stacks. Other threads talk
//! to a shard only through its mailbox ([`ShardHandle::send`]): new
//! connections from the acceptor, and pre-encoded response/event bytes
//! from workers completing jobs.
//!
//! Fairness and protection, per connection:
//! * reads are capped per tick (a chatty peer cannot starve the rest;
//!   level-triggered readiness re-reports the remainder next tick);
//! * frames and lines are capped at `max_frame_bytes` — an oversize
//!   frame is answered with an error and the connection closed;
//! * a connection idle past `idle_timeout` is closed, unless it is
//!   parked on a deferred reply (`result --wait`, progress streams);
//! * write backlogs past a hard cap close the connection (a peer that
//!   stops reading cannot pin buffer memory); progress events are
//!   dropped — counted, never blocking — once a softer cap is passed.

use crate::daemon::{dispatch_frame, ServiceState};
use crate::frame::FrameDecoder;
use crate::reactor::{Event, Poller, Waker, WAKER_TOKEN};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-tick read budget per connection (fairness bound).
const READ_BUDGET: usize = 64 * 1024;
/// Write backlog (bytes) past which progress events are dropped.
const EVENT_BACKLOG_CAP: usize = 1 << 20;
/// Write backlog (bytes) past which the connection is closed.
const HARD_BACKLOG_CAP: usize = 16 << 20;
/// Poll timeout: idle-sweep resolution and fallback-poller tick.
const TICK_MS: i32 = 50;

/// What other threads may ask of a shard.
pub(crate) enum ShardMsg {
    /// Adopt a freshly accepted connection.
    Conn(TcpStream),
    /// Write pre-encoded bytes to connection `conn` (dropped silently if
    /// it is gone).
    Deliver {
        /// Shard-local connection id.
        conn: u64,
        /// Fully encoded frame(s), ready for the socket.
        bytes: Vec<u8>,
        /// This delivery completes a deferred reply: the connection's
        /// idle-exemption count drops by one.
        ends_wait: bool,
        /// Drop instead of queueing when the peer is backlogged
        /// (non-terminal progress events only).
        droppable: bool,
    },
}

/// A shard's cross-thread face: mailbox, waker, and counters.
pub(crate) struct ShardHandle {
    mailbox: Mutex<Vec<ShardMsg>>,
    waker: Waker,
    /// Connections currently owned by this shard.
    pub open_conns: AtomicU64,
    /// Nanoseconds spent processing (vs parked in the poller).
    pub busy_nanos: AtomicU64,
    /// Complete frames decoded from peers.
    pub frames_in: AtomicU64,
    /// Frames written to peers (responses and events).
    pub frames_out: AtomicU64,
    /// Progress events dropped on backlogged connections.
    pub events_dropped: AtomicU64,
    /// Connections closed by the idle sweep.
    pub closed_idle: AtomicU64,
    /// Connections closed for protocol violations (oversize or
    /// unframeable input, write backlog overflow).
    pub closed_protocol: AtomicU64,
}

impl ShardHandle {
    pub fn new() -> io::Result<ShardHandle> {
        Ok(ShardHandle {
            mailbox: Mutex::new(Vec::new()),
            waker: Waker::new()?,
            open_conns: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            closed_idle: AtomicU64::new(0),
            closed_protocol: AtomicU64::new(0),
        })
    }

    /// Enqueues a message and nudges the shard awake.
    pub fn send(&self, msg: ShardMsg) {
        self.mailbox.lock().expect("shard mailbox").push(msg);
        self.waker.wake();
    }

    /// Wakes the shard without a message (shutdown broadcast).
    pub fn wake(&self) {
        self.waker.wake();
    }
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    last_activity: Instant,
    want_write: bool,
    /// Deferred replies parked on this connection (idle-close exempt
    /// while non-zero).
    deferred: u32,
    /// Flush what is queued, then close.
    close_after_flush: bool,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

enum FlushOutcome {
    Progress,
    Dead,
}

fn try_flush(conn: &mut Conn) -> FlushOutcome {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return FlushOutcome::Dead,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return FlushOutcome::Dead,
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    } else if conn.out_pos > READ_BUDGET {
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    FlushOutcome::Progress
}

/// The shard thread body: serves until the daemon shuts down.
pub(crate) fn run_shard(state: &ServiceState, shard_id: usize) {
    let handle = state.shard(shard_id);
    let poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("lbr-serviced: shard {shard_id}: cannot create poller: {e}");
            return;
        }
    };
    if let Err(e) = poller.register_waker(&handle.waker) {
        eprintln!("lbr-serviced: shard {shard_id}: cannot register waker: {e}");
        return;
    }

    let idle_timeout = state.config.idle_timeout;
    let max_frame = state.config.max_frame_bytes;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;
    let mut events: Vec<Event> = Vec::new();
    let mut dead: Vec<(u64, bool)> = Vec::new();

    loop {
        let _ = poller.wait(&mut events, TICK_MS);
        let tick_start = Instant::now();
        handle.waker.drain();

        // Adopt new connections and deliveries from the mailbox.
        let inbox = std::mem::take(&mut *handle.mailbox.lock().expect("shard mailbox"));
        for msg in inbox {
            match msg {
                ShardMsg::Conn(stream) => {
                    let id = next_id;
                    next_id += 1;
                    if poller.register(&stream, id, false).is_err() {
                        continue;
                    }
                    conns.insert(
                        id,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(max_frame),
                            out: Vec::new(),
                            out_pos: 0,
                            last_activity: Instant::now(),
                            want_write: false,
                            deferred: 0,
                            close_after_flush: false,
                        },
                    );
                    handle.open_conns.fetch_add(1, Ordering::Relaxed);
                }
                ShardMsg::Deliver {
                    conn,
                    bytes,
                    ends_wait,
                    droppable,
                } => {
                    let Some(c) = conns.get_mut(&conn) else {
                        continue; // peer already hung up
                    };
                    if ends_wait {
                        c.deferred = c.deferred.saturating_sub(1);
                    }
                    if droppable && c.backlog() > EVENT_BACKLOG_CAP {
                        handle.events_dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    c.out.extend_from_slice(&bytes);
                    handle.frames_out.fetch_add(1, Ordering::Relaxed);
                    // A delivery is activity: the peer is being served.
                    c.last_activity = Instant::now();
                    if matches!(try_flush(c), FlushOutcome::Dead) {
                        dead.push((conn, false));
                    } else {
                        sync_write_interest(&poller, conn, c);
                    }
                }
            }
        }

        // Socket readiness.
        for ev in &events {
            if ev.token == WAKER_TOKEN {
                continue;
            }
            let Some(c) = conns.get_mut(&ev.token) else {
                continue;
            };
            if ev.writable && c.backlog() > 0 {
                if matches!(try_flush(c), FlushOutcome::Dead) {
                    dead.push((ev.token, false));
                    continue;
                }
                sync_write_interest(&poller, ev.token, c);
            }
            if ev.readable {
                match service_reads(state, &handle, shard_id, ev.token, c) {
                    ConnFate::Alive => sync_write_interest(&poller, ev.token, c),
                    ConnFate::Close => dead.push((ev.token, false)),
                    ConnFate::Protocol => dead.push((ev.token, true)),
                }
            }
        }

        // Flush-then-close and backlog enforcement.
        for (&id, c) in conns.iter() {
            if c.close_after_flush && c.backlog() == 0 {
                dead.push((id, false));
            } else if c.backlog() > HARD_BACKLOG_CAP {
                dead.push((id, true));
            }
        }

        // Idle sweep: connections with deferred replies are exempt.
        let now = Instant::now();
        for (&id, c) in conns.iter() {
            if c.deferred == 0
                && !c.close_after_flush
                && now.duration_since(c.last_activity) > idle_timeout
            {
                handle.closed_idle.fetch_add(1, Ordering::Relaxed);
                dead.push((id, false));
            }
        }

        for (id, protocol) in dead.drain(..) {
            if let Some(c) = conns.remove(&id) {
                let _ = poller.deregister(&c.stream);
                handle.open_conns.fetch_sub(1, Ordering::Relaxed);
                if protocol {
                    handle.closed_protocol.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        handle
            .busy_nanos
            .fetch_add(tick_start.elapsed().as_nanos() as u64, Ordering::Relaxed);

        if state.shutting_down() {
            break;
        }
    }

    // Wind down: give queued responses (e.g. the `shutdown` ack) a
    // bounded chance to reach their peers.
    let deadline = Instant::now() + Duration::from_secs(1);
    while Instant::now() < deadline {
        let mut pending = false;
        for c in conns.values_mut() {
            if c.backlog() > 0 {
                match try_flush(c) {
                    FlushOutcome::Dead => {
                        c.out.clear();
                        c.out_pos = 0;
                    }
                    FlushOutcome::Progress => pending |= c.backlog() > 0,
                }
            }
        }
        if !pending {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    for (_, c) in conns.drain() {
        let _ = poller.deregister(&c.stream);
        handle.open_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

fn sync_write_interest(poller: &Poller, token: u64, conn: &mut Conn) {
    let want = conn.backlog() > 0;
    if want != conn.want_write {
        conn.want_write = want;
        let _ = poller.rearm(&conn.stream, token, want);
    }
}

enum ConnFate {
    Alive,
    /// Peer hung up or an I/O error; close quietly.
    Close,
    /// Protocol violation; close and count it.
    Protocol,
}

/// Drains up to the read budget, decodes frames, dispatches requests,
/// and queues replies on the connection.
fn service_reads(
    state: &ServiceState,
    handle: &ShardHandle,
    shard_id: usize,
    conn_id: u64,
    conn: &mut Conn,
) -> ConnFate {
    let mut read_total = 0usize;
    let mut saw_eof = false;
    let mut chunk = [0u8; 16 * 1024];
    while read_total < READ_BUDGET {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                conn.decoder.push(&chunk[..n]);
                read_total += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ConnFate::Close,
        }
    }

    loop {
        match conn.decoder.next_frame() {
            Ok(None) => break,
            Ok(Some(frame)) => {
                handle.frames_in.fetch_add(1, Ordering::Relaxed);
                let outcome = dispatch_frame(state, shard_id, conn_id, frame);
                conn.deferred += outcome.defer;
                if let Some(bytes) = outcome.reply {
                    conn.out.extend_from_slice(&bytes);
                    handle.frames_out.fetch_add(1, Ordering::Relaxed);
                }
                if state.shutting_down() {
                    break;
                }
            }
            Err(e) => {
                // The stream can no longer be framed: answer once (as a
                // JSON line — both framings' decoders accept it), then
                // flush and close.
                let doc = crate::daemon::error_response(&format!("bad frame: {e}"));
                conn.out.extend_from_slice(&crate::frame::encode_doc(
                    crate::frame::Framing::Json,
                    &doc,
                ));
                conn.close_after_flush = true;
                let _ = try_flush(conn);
                return ConnFate::Protocol;
            }
        }
    }

    if matches!(try_flush(conn), FlushOutcome::Dead) {
        return ConnFate::Close;
    }
    if saw_eof {
        // Let queued replies drain, then drop the connection.
        if conn.backlog() == 0 {
            return ConnFate::Close;
        }
        conn.close_after_flush = true;
    }
    ConnFate::Alive
}
