//! The reduction daemon binary.
//!
//! ```text
//! lbr-serviced --state-dir state/ [--workers N] [--queue-capacity N]
//!              [--shards N] [--idle-timeout-secs N] [--max-frame-kb N]
//!              [--max-inflight N] [--checkpoint-interval-ms N]
//! ```
//!
//! Binds an ephemeral localhost port, prints it to stdout (and persists it
//! in `state/daemon.addr`), recovers any unfinished jobs from the state
//! directory, and serves until a `shutdown` request. Kill it however you
//! like — every state file is written atomically, so a restart resumes
//! checkpointed jobs with a warm oracle cache.

use lbr_service::{Daemon, DaemonConfig};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut state_dir: Option<String> = None;
    let mut workers = 4usize;
    let mut queue_capacity = 64usize;
    let mut shards: Option<usize> = None;
    let mut idle_timeout_secs: Option<u64> = None;
    let mut max_frame_kb: Option<usize> = None;
    let mut max_inflight: Option<usize> = None;
    let mut checkpoint_interval_ms: Option<u64> = None;
    let mut memoize = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        let parse = |flag: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} takes a number");
                std::process::exit(2);
            })
        };
        match flag {
            "--state-dir" => state_dir = Some(value()),
            "--workers" => workers = parse(flag, value()) as usize,
            "--queue-capacity" => queue_capacity = parse(flag, value()) as usize,
            "--shards" => shards = Some(parse(flag, value()) as usize),
            "--idle-timeout-secs" => idle_timeout_secs = Some(parse(flag, value())),
            "--max-frame-kb" => max_frame_kb = Some(parse(flag, value()) as usize),
            "--max-inflight" => max_inflight = Some(parse(flag, value()) as usize),
            "--checkpoint-interval-ms" => checkpoint_interval_ms = Some(parse(flag, value())),
            "--memoize" => memoize = true,
            "--help" | "-h" => {
                println!(
                    "usage: lbr-serviced --state-dir DIR [--workers N] [--queue-capacity N]\n\
                     \x20                   [--shards N] [--idle-timeout-secs N] [--max-frame-kb N]\n\
                     \x20                   [--max-inflight N] [--checkpoint-interval-ms N] [--memoize]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(state_dir) = state_dir else {
        eprintln!("--state-dir is required (try --help)");
        std::process::exit(2);
    };
    let mut config = DaemonConfig::new(state_dir, workers);
    config.queue_capacity = queue_capacity.max(1);
    if let Some(n) = shards {
        config.shards = n.max(1);
    }
    if let Some(secs) = idle_timeout_secs {
        config.idle_timeout = Duration::from_secs(secs.max(1));
    }
    if let Some(kb) = max_frame_kb {
        config.max_frame_bytes = kb.max(1) * 1024;
    }
    if let Some(n) = max_inflight {
        config.max_inflight_per_client = n.max(1);
    }
    if let Some(ms) = checkpoint_interval_ms {
        config.checkpoint_interval = Duration::from_millis(ms);
    }
    config.memoize_results = memoize;
    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot start daemon: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", daemon.local_addr());
    if let Err(e) = daemon.run() {
        eprintln!("daemon error: {e}");
        std::process::exit(1);
    }
}
