//! The reduction daemon binary.
//!
//! ```text
//! lbr-serviced --state-dir state/ [--workers N] [--queue-capacity N]
//! ```
//!
//! Binds an ephemeral localhost port, prints it to stdout (and persists it
//! in `state/daemon.addr`), recovers any unfinished jobs from the state
//! directory, and serves until a `shutdown` request. Kill it however you
//! like — every state file is written atomically, so a restart resumes
//! checkpointed jobs with a warm oracle cache.

use lbr_service::{Daemon, DaemonConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut state_dir: Option<String> = None;
    let mut workers = 4usize;
    let mut queue_capacity = 64usize;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            let v = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            i += 1;
            v
        };
        match flag {
            "--state-dir" => state_dir = Some(value()),
            "--workers" => {
                workers = value().parse().unwrap_or_else(|_| {
                    eprintln!("--workers takes a number");
                    std::process::exit(2);
                })
            }
            "--queue-capacity" => {
                queue_capacity = value().parse().unwrap_or_else(|_| {
                    eprintln!("--queue-capacity takes a number");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("usage: lbr-serviced --state-dir DIR [--workers N] [--queue-capacity N]");
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(state_dir) = state_dir else {
        eprintln!("--state-dir is required (try --help)");
        std::process::exit(2);
    };
    let mut config = DaemonConfig::new(state_dir, workers);
    config.queue_capacity = queue_capacity.max(1);
    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot start daemon: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", daemon.local_addr());
    if let Err(e) = daemon.run() {
        eprintln!("daemon error: {e}");
        std::process::exit(1);
    }
}
