//! Serializing [`GbrCheckpoint`]s to JSON files.
//!
//! The checkpoint format (see DESIGN.md §Service architecture) is a small
//! JSON document; `VarSet`s are stored as `{ "universe": N, "members":
//! [indices…] }`, the only stable public view of a set. Checkpoints go
//! through [`atomic_write`](crate::fsio::atomic_write) like every other
//! state file, so a killed writer leaves either the previous checkpoint or
//! the new one — a resumed job merely restarts from one iteration earlier
//! in the worst case.

use crate::fsio::atomic_write_str;
use crate::json::Json;
use lbr_core::GbrCheckpoint;
use lbr_logic::{Var, VarSet};
use std::io;
use std::path::Path;

/// Current checkpoint format version.
const VERSION: f64 = 1.0;

/// Renders a `VarSet` as `{ "universe": N, "members": [..] }`.
pub fn varset_to_json(set: &VarSet) -> Json {
    Json::obj([
        ("universe", Json::num(set.universe() as f64)),
        (
            "members",
            Json::Arr(set.iter().map(|v| Json::num(v.index() as f64)).collect()),
        ),
    ])
}

/// Parses a `VarSet` rendered by [`varset_to_json`].
pub fn varset_from_json(j: &Json) -> Result<VarSet, String> {
    let universe = j.u64_field("universe").ok_or("varset: missing universe")? as usize;
    let members = j
        .get("members")
        .and_then(Json::as_arr)
        .ok_or("varset: missing members")?;
    let mut vars = Vec::with_capacity(members.len());
    for m in members {
        let idx = m.as_u64().ok_or("varset: bad member")?;
        if idx as usize >= universe {
            return Err(format!("varset: member {idx} outside universe {universe}"));
        }
        vars.push(Var::new(idx as u32));
    }
    Ok(VarSet::from_iter_with_universe(universe, vars))
}

/// Renders a checkpoint as its JSON document.
pub fn checkpoint_to_json(ck: &GbrCheckpoint) -> Json {
    let mut fields = vec![
        ("version", Json::Num(VERSION)),
        ("iterations", Json::num(ck.iterations as f64)),
        (
            "learned",
            Json::Arr(ck.learned.iter().map(varset_to_json).collect()),
        ),
        ("search_space", varset_to_json(&ck.search_space)),
    ];
    if let Some(best) = &ck.best {
        fields.push(("best", varset_to_json(best)));
    }
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Parses a checkpoint document.
pub fn checkpoint_from_json(j: &Json) -> Result<GbrCheckpoint, String> {
    match j.f64_field("version") {
        Some(v) if v == VERSION => {}
        v => return Err(format!("checkpoint: unsupported version {v:?}")),
    }
    let iterations = j
        .u64_field("iterations")
        .ok_or("checkpoint: missing iterations")? as usize;
    let learned = j
        .get("learned")
        .and_then(Json::as_arr)
        .ok_or("checkpoint: missing learned")?
        .iter()
        .map(varset_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let search_space = varset_from_json(
        j.get("search_space")
            .ok_or("checkpoint: missing search_space")?,
    )?;
    let best = j.get("best").map(varset_from_json).transpose()?;
    if learned.len() != iterations {
        return Err(format!(
            "checkpoint: {} learned sets but {iterations} iterations",
            learned.len()
        ));
    }
    Ok(GbrCheckpoint {
        iterations,
        learned,
        search_space,
        best,
    })
}

/// Atomically writes a checkpoint file.
pub fn save_checkpoint(path: &Path, ck: &GbrCheckpoint) -> io::Result<()> {
    atomic_write_str(path, &checkpoint_to_json(ck).render())
}

/// Loads a checkpoint file; `Ok(None)` when none exists, an error when one
/// exists but does not parse (atomic writes make that a real fault, not a
/// torn write).
pub fn load_checkpoint(path: &Path) -> io::Result<Option<GbrCheckpoint>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Json::parse(&text)
        .and_then(|j| checkpoint_from_json(&j))
        .map(Some)
        .map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(universe: usize, members: &[u32]) -> VarSet {
        VarSet::from_iter_with_universe(universe, members.iter().copied().map(Var::new))
    }

    #[test]
    fn round_trips_via_file() {
        let ck = GbrCheckpoint {
            iterations: 2,
            learned: vec![set(10, &[1, 4]), set(10, &[7])],
            search_space: set(10, &[1, 2, 4, 7, 9]),
            best: Some(set(10, &[1, 4, 7])),
        };
        let dir = std::env::temp_dir().join(format!("lbr-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job-1.ckpt");
        save_checkpoint(&path, &ck).unwrap();
        let loaded = load_checkpoint(&path).unwrap().expect("checkpoint exists");
        assert_eq!(loaded, ck);
        assert_eq!(load_checkpoint(&dir.join("nope")).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_best_round_trips() {
        let ck = GbrCheckpoint {
            iterations: 0,
            learned: vec![],
            search_space: set(4, &[0, 1, 2, 3]),
            best: None,
        };
        let j = checkpoint_to_json(&ck);
        assert_eq!(checkpoint_from_json(&j).unwrap(), ck);
    }

    #[test]
    fn rejects_inconsistent_documents() {
        let ck = GbrCheckpoint {
            iterations: 3, // != learned.len()
            learned: vec![set(4, &[1])],
            search_space: set(4, &[1, 2]),
            best: None,
        };
        assert!(checkpoint_from_json(&checkpoint_to_json(&ck)).is_err());
        assert!(
            varset_from_json(&Json::parse(r#"{"universe":2,"members":[5]}"#).unwrap()).is_err()
        );
    }
}
