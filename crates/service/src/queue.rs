//! The bounded priority work queue feeding the daemon's job workers.
//!
//! Higher priority pops first; within a priority, submission order (FIFO).
//! The queue is bounded — a full queue *rejects* the submit rather than
//! blocking the connection handler, so a flood of submissions cannot wedge
//! the protocol or grow memory without bound (the daemon turns the
//! rejection into an explicit shed-with-`retry_after_ms` response). `pop`
//! blocks on a condvar until work arrives or the queue is closed for
//! shutdown, and reports how long the popped job sat queued so the stats
//! endpoint can surface queue-wait time.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Returned by [`JobQueue::push`] when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct QueueItem {
    priority: u8,
    /// Tie-breaker: smaller sequence number (earlier submit) pops first.
    seq: u64,
    job_id: u64,
    queued_at: Instant,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for QueueItem {}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier seq.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct QueueInner {
    heap: BinaryHeap<QueueItem>,
    next_seq: u64,
    closed: bool,
}

/// A bounded priority queue of job ids. See the module docs.
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    available: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// Creates a queue holding at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job; fails with [`QueueFull`] at capacity and panics
    /// never. Pushing to a closed queue also reports [`QueueFull`].
    pub fn push(&self, job_id: u64, priority: u8) -> Result<(), QueueFull> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.heap.len() >= self.capacity {
            return Err(QueueFull);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(QueueItem {
            priority,
            seq,
            job_id,
            queued_at: Instant::now(),
        });
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job is available and pops the highest-priority one
    /// together with how long it waited; `None` once the queue is closed
    /// *and* drained (worker shutdown).
    pub fn pop(&self) -> Option<(u64, Duration)> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.heap.pop() {
                return Some((item.job_id, item.queued_at.elapsed()));
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue wait");
        }
    }

    /// Closes the queue: pending jobs still pop, new pushes fail, and
    /// blocked workers wake up to exit.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Jobs currently waiting (not including running ones).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").heap.len()
    }

    /// The configured bound on pending jobs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop_id(q: &JobQueue) -> Option<u64> {
        q.pop().map(|(id, _)| id)
    }

    #[test]
    fn priority_then_fifo() {
        let q = JobQueue::new(8);
        q.push(1, 0).unwrap();
        q.push(2, 5).unwrap();
        q.push(3, 5).unwrap();
        q.push(4, 9).unwrap();
        assert_eq!(q.depth(), 4);
        assert_eq!(pop_id(&q), Some(4));
        assert_eq!(pop_id(&q), Some(2));
        assert_eq!(pop_id(&q), Some(3));
        assert_eq!(pop_id(&q), Some(1));
    }

    #[test]
    fn bounded_and_closable() {
        let q = JobQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.push(1, 0).unwrap();
        q.push(2, 0).unwrap();
        assert_eq!(q.push(3, 9), Err(QueueFull));
        q.close();
        assert_eq!(q.push(4, 0), Err(QueueFull));
        assert_eq!(pop_id(&q), Some(1));
        assert_eq!(pop_id(&q), Some(2));
        assert_eq!(pop_id(&q), None);
    }

    #[test]
    fn pop_blocks_until_push_and_reports_wait() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(42, 1).unwrap();
        let (id, waited) = handle.join().unwrap().expect("queued item");
        assert_eq!(id, 42);
        assert!(waited <= Duration::from_secs(5), "wait is sane: {waited:?}");
    }
}
