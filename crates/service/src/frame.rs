//! Wire framing for the daemon protocol: newline-delimited JSON and a
//! compact length-prefixed binary option, decoded incrementally.
//!
//! A connection may interleave both framings frame-by-frame — the first
//! byte of every frame disambiguates. JSON documents start with `{` (or
//! whitespace); a binary frame starts with the magic byte `0xBF`, which
//! can never open a JSON document:
//!
//! ```text
//! offset  size  field
//! 0       1     magic, always 0xBF
//! 1       1     opcode: 0x01 = document (request or response),
//!               0x02 = server-pushed event
//! 2       4     payload length, u32 little-endian
//! 6       len   payload: one binary-encoded value (see below)
//! ```
//!
//! The payload encodes the same document model as [`Json`] — responses
//! are value-identical across framings, only the bytes differ. Value
//! encoding, one tag byte per value:
//!
//! ```text
//! tag    payload
//! 0x00   null
//! 0x01   false
//! 0x02   true
//! 0x03   number, f64 little-endian (8 bytes)
//! 0x04   non-negative integer, LEB128 varint (compact counters/ids)
//! 0x05   string: varint byte length + UTF-8 bytes
//! 0x06   array: varint element count + elements
//! 0x07   object: varint pair count + (string key, value) pairs,
//!        keys in ascending order (the canonical [`Json`] order)
//! ```
//!
//! [`FrameDecoder`] accumulates bytes from a non-blocking socket and
//! yields complete frames, enforcing a maximum frame/line size so a
//! malicious client cannot grow the buffer without bound.

use crate::json::Json;

/// First byte of every binary frame.
pub const MAGIC: u8 = 0xBF;
/// Binary opcode: an ordinary request/response document.
pub const OP_DOC: u8 = 0x01;
/// Binary opcode: a server-pushed event document.
pub const OP_EVENT: u8 = 0x02;
/// Binary opcode: a cluster coordinator/worker message. Cluster peers
/// speak binary frames exclusively (no JSON interleaving) on the
/// coordinator's dedicated listener; the distinct opcode keeps a worker
/// that mistakenly dials the client port from being misread as a client.
pub const OP_CLUSTER: u8 = 0x03;
/// Nesting ceiling for decoded values (stack-overflow guard).
const MAX_DEPTH: u32 = 64;

/// Which framing a peer used for a frame (and thus what it gets back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// One JSON document per `\n`-terminated line.
    Json,
    /// Length-prefixed binary frames (see the module docs).
    Binary,
}

/// One complete frame off the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// A newline-delimited JSON line (unparsed; bad JSON is answered
    /// with an error response rather than dropping the connection).
    JsonLine(String),
    /// A binary frame, already decoded.
    Binary {
        /// [`OP_DOC`] or [`OP_EVENT`].
        opcode: u8,
        /// The decoded payload document.
        doc: Json,
    },
}

impl WireFrame {
    /// The framing this frame arrived in.
    pub fn framing(&self) -> Framing {
        match self {
            WireFrame::JsonLine(_) => Framing::Json,
            WireFrame::Binary { .. } => Framing::Binary,
        }
    }
}

/// Why a connection's byte stream cannot be framed any further. All of
/// these are terminal for the connection (unlike a well-framed but
/// malformed JSON document, which only fails the one request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A frame or line exceeded the configured maximum size.
    TooLarge {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// A binary frame's payload did not decode, or a JSON line was not
    /// valid UTF-8.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooLarge { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

// ----------------------------------------------------------------------
// Value encoding.
// ----------------------------------------------------------------------

fn put_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut n = 0u64;
    for shift in (0..70).step_by(7) {
        let &byte = bytes
            .get(*pos)
            .ok_or_else(|| WireError::Malformed("truncated varint".into()))?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(WireError::Malformed("varint overflows u64".into()));
        }
        n |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(n);
        }
    }
    Err(WireError::Malformed("varint too long".into()))
}

/// Appends the binary encoding of `value` to `out`.
pub fn encode_value(value: &Json, out: &mut Vec<u8>) {
    match value {
        Json::Null => out.push(0x00),
        Json::Bool(false) => out.push(0x01),
        Json::Bool(true) => out.push(0x02),
        Json::Num(n) => {
            // Counters and ids dominate the protocol; pack them tight.
            if n.fract() == 0.0 && *n >= 0.0 && *n < 9e15 {
                out.push(0x04);
                put_varint(*n as u64, out);
            } else {
                out.push(0x03);
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        Json::Str(s) => {
            out.push(0x05);
            put_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Json::Arr(items) => {
            out.push(0x06);
            put_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Json::Obj(map) => {
            out.push(0x07);
            put_varint(map.len() as u64, out);
            for (k, v) in map {
                put_varint(k.len() as u64, out);
                out.extend_from_slice(k.as_bytes());
                encode_value(v, out);
            }
        }
    }
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let len = get_varint(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| WireError::Malformed("truncated string".into()))?;
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| WireError::Malformed("string is not UTF-8".into()))?
        .to_owned();
    *pos = end;
    Ok(s)
}

fn decode_at(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::Malformed("value nests too deep".into()));
    }
    let &tag = bytes
        .get(*pos)
        .ok_or_else(|| WireError::Malformed("truncated value".into()))?;
    *pos += 1;
    match tag {
        0x00 => Ok(Json::Null),
        0x01 => Ok(Json::Bool(false)),
        0x02 => Ok(Json::Bool(true)),
        0x03 => {
            let end = *pos + 8;
            let raw = bytes
                .get(*pos..end)
                .ok_or_else(|| WireError::Malformed("truncated f64".into()))?;
            *pos = end;
            Ok(Json::Num(f64::from_le_bytes(raw.try_into().unwrap())))
        }
        0x04 => Ok(Json::Num(get_varint(bytes, pos)? as f64)),
        0x05 => Ok(Json::Str(get_str(bytes, pos)?)),
        0x06 => {
            let count = get_varint(bytes, pos)? as usize;
            if count > bytes.len() - *pos {
                // Each element costs at least one byte; reject early so a
                // tiny frame cannot demand a huge allocation.
                return Err(WireError::Malformed("array count exceeds payload".into()));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_at(bytes, pos, depth + 1)?);
            }
            Ok(Json::Arr(items))
        }
        0x07 => {
            let count = get_varint(bytes, pos)? as usize;
            if count > bytes.len() - *pos {
                return Err(WireError::Malformed("object count exceeds payload".into()));
            }
            let mut map = std::collections::BTreeMap::new();
            for _ in 0..count {
                let key = get_str(bytes, pos)?;
                map.insert(key, decode_at(bytes, pos, depth + 1)?);
            }
            Ok(Json::Obj(map))
        }
        other => Err(WireError::Malformed(format!(
            "unknown value tag {other:#x}"
        ))),
    }
}

/// Decodes one value that must span the whole payload exactly.
pub fn decode_value(payload: &[u8]) -> Result<Json, WireError> {
    let mut pos = 0;
    let value = decode_at(payload, &mut pos, 0)?;
    if pos != payload.len() {
        return Err(WireError::Malformed(format!(
            "{} trailing payload bytes",
            payload.len() - pos
        )));
    }
    Ok(value)
}

// ----------------------------------------------------------------------
// Frame encoding.
// ----------------------------------------------------------------------

/// Encodes `doc` as one binary frame with the given opcode.
pub fn encode_binary_frame(opcode: u8, doc: &Json) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    encode_value(doc, &mut payload);
    let mut frame = Vec::with_capacity(payload.len() + 6);
    frame.push(MAGIC);
    frame.push(opcode);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Encodes a request/response document in the given framing.
pub fn encode_doc(framing: Framing, doc: &Json) -> Vec<u8> {
    match framing {
        Framing::Json => {
            let mut bytes = doc.render().into_bytes();
            bytes.push(b'\n');
            bytes
        }
        Framing::Binary => encode_binary_frame(OP_DOC, doc),
    }
}

/// Encodes a server-pushed event document in the given framing. In JSON
/// framing an event is an ordinary line; peers tell events from
/// responses by the `"event"` field (responses carry `"ok"` instead).
pub fn encode_event(framing: Framing, doc: &Json) -> Vec<u8> {
    match framing {
        Framing::Json => encode_doc(Framing::Json, doc),
        Framing::Binary => encode_binary_frame(OP_EVENT, doc),
    }
}

// ----------------------------------------------------------------------
// Incremental decoding.
// ----------------------------------------------------------------------

/// An incremental frame decoder over a byte stream carrying either
/// framing. Feed it reads with [`push`](Self::push), drain complete
/// frames with [`next_frame`](Self::next_frame).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
}

impl FrameDecoder {
    /// A decoder rejecting frames and lines larger than `max_frame`.
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_frame: max_frame.max(64),
        }
    }

    /// Appends raw bytes read off the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet framed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are
    /// needed. Errors are terminal: the stream can no longer be framed.
    pub fn next_frame(&mut self) -> Result<Option<WireFrame>, WireError> {
        // Skip blank separators between frames.
        while self
            .buf
            .get(self.start)
            .is_some_and(|b| matches!(b, b'\n' | b'\r' | b' ' | b'\t'))
        {
            self.start += 1;
        }
        let pending = &self.buf[self.start..];
        if pending.is_empty() {
            self.buf.clear();
            self.start = 0;
            return Ok(None);
        }
        if pending[0] == MAGIC {
            if pending.len() < 6 {
                return Ok(None);
            }
            let opcode = pending[1];
            let len = u32::from_le_bytes(pending[2..6].try_into().unwrap()) as usize;
            if len > self.max_frame {
                return Err(WireError::TooLarge {
                    limit: self.max_frame,
                });
            }
            if pending.len() < 6 + len {
                return Ok(None);
            }
            let doc = decode_value(&pending[6..6 + len])?;
            self.start += 6 + len;
            return Ok(Some(WireFrame::Binary { opcode, doc }));
        }
        match pending.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let line = std::str::from_utf8(&pending[..nl])
                    .map_err(|_| WireError::Malformed("line is not UTF-8".into()))?
                    .trim_end_matches('\r')
                    .to_owned();
                self.start += nl + 1;
                Ok(Some(WireFrame::JsonLine(line)))
            }
            None if pending.len() > self.max_frame => Err(WireError::TooLarge {
                limit: self.max_frame,
            }),
            None => Ok(None),
        }
    }
}

// ----------------------------------------------------------------------
// Blocking frame I/O (cluster wire).
// ----------------------------------------------------------------------

fn wire_to_io(e: WireError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// Writes one binary frame to a blocking stream.
pub fn write_binary_frame(
    writer: &mut dyn std::io::Write,
    opcode: u8,
    doc: &Json,
) -> std::io::Result<()> {
    writer.write_all(&encode_binary_frame(opcode, doc))?;
    writer.flush()
}

/// Reads one binary frame `(opcode, doc)` from a blocking stream.
///
/// The declared payload length is validated against `max_frame` straight
/// off the 6-byte header — **before** the payload buffer is allocated or
/// a single payload byte is read — so a hostile or corrupt length field
/// can never force a giant allocation. A stream that ends mid-header or
/// mid-payload fails with [`std::io::ErrorKind::UnexpectedEof`] (a torn
/// frame), a wrong magic byte with
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_binary_frame(
    reader: &mut dyn std::io::Read,
    max_frame: usize,
) -> std::io::Result<(u8, Json)> {
    let mut header = [0u8; 6];
    reader.read_exact(&mut header)?;
    if header[0] != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame magic {:#04x}", header[0]),
        ));
    }
    let opcode = header[1];
    let len = u32::from_le_bytes(header[2..6].try_into().unwrap()) as usize;
    if len > max_frame {
        return Err(wire_to_io(WireError::TooLarge { limit: max_frame }));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    let doc = decode_value(&payload).map_err(wire_to_io)?;
    Ok((opcode, doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Json {
        Json::parse(
            r#"{"op":"submit","input":"/tmp/αβ.lbrc","priority":7,"cost":33.5,
                "nested":{"a":[1,2,3,null,true,false],"b":-0.125},"big":9007199254740992}"#,
        )
        .unwrap()
    }

    #[test]
    fn binary_value_round_trips() {
        let doc = sample_doc();
        let mut payload = Vec::new();
        encode_value(&doc, &mut payload);
        assert_eq!(decode_value(&payload).unwrap(), doc);
    }

    #[test]
    fn binary_is_more_compact_than_json_for_protocol_docs() {
        let doc = sample_doc();
        let mut payload = Vec::new();
        encode_value(&doc, &mut payload);
        assert!(payload.len() < doc.render().len());
    }

    #[test]
    fn decoder_handles_interleaved_framings_and_partial_frames() {
        let doc = sample_doc();
        let mut stream = Vec::new();
        stream.extend_from_slice(b"{\"op\":\"ping\"}\n");
        stream.extend_from_slice(&encode_binary_frame(OP_DOC, &doc));
        stream.extend_from_slice(b"\n{\"op\":\"stats\"}\r\n");
        stream.extend_from_slice(&encode_binary_frame(OP_EVENT, &doc));

        // Feed it one byte at a time: every prefix either yields a frame
        // or politely asks for more.
        let mut dec = FrameDecoder::new(1 << 20);
        let mut frames = Vec::new();
        for &b in &stream {
            dec.push(&[b]);
            while let Some(frame) = dec.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0], WireFrame::JsonLine("{\"op\":\"ping\"}".into()));
        assert_eq!(
            frames[1],
            WireFrame::Binary {
                opcode: OP_DOC,
                doc: doc.clone()
            }
        );
        assert_eq!(frames[2], WireFrame::JsonLine("{\"op\":\"stats\"}".into()));
        assert_eq!(
            frames[3],
            WireFrame::Binary {
                opcode: OP_EVENT,
                doc
            }
        );
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn oversize_binary_frame_is_rejected_from_its_header() {
        let mut dec = FrameDecoder::new(1024);
        let mut header = vec![MAGIC, OP_DOC];
        header.extend_from_slice(&(10_000u32).to_le_bytes());
        dec.push(&header);
        assert_eq!(dec.next_frame(), Err(WireError::TooLarge { limit: 1024 }));
    }

    #[test]
    fn oversize_json_line_is_rejected_without_a_newline() {
        let mut dec = FrameDecoder::new(128);
        dec.push(&[b'{'; 200]);
        assert_eq!(dec.next_frame(), Err(WireError::TooLarge { limit: 128 }));
    }

    #[test]
    fn torn_payloads_are_malformed_not_panics() {
        // A frame whose declared length cuts a value in half.
        let doc = sample_doc();
        let mut payload = Vec::new();
        encode_value(&doc, &mut payload);
        let cut = payload.len() / 2;
        let mut frame = vec![MAGIC, OP_DOC];
        frame.extend_from_slice(&(cut as u32).to_le_bytes());
        frame.extend_from_slice(&payload[..cut]);
        let mut dec = FrameDecoder::new(1 << 20);
        dec.push(&frame);
        assert!(matches!(dec.next_frame(), Err(WireError::Malformed(_))));

        // Garbage tags and hostile counts fail cleanly too.
        for payload in [
            vec![0xffu8],
            vec![0x06, 0xff, 0xff, 0xff, 0xff, 0x0f],
            vec![0x05, 0x7f],
        ] {
            assert!(decode_value(&payload).is_err(), "payload {payload:?}");
        }
    }

    #[test]
    fn encode_doc_matches_framing() {
        let doc = Json::obj([("ok", Json::Bool(true))]);
        assert_eq!(encode_doc(Framing::Json, &doc), b"{\"ok\":true}\n");
        let bin = encode_doc(Framing::Binary, &doc);
        assert_eq!(bin[0], MAGIC);
        assert_eq!(bin[1], OP_DOC);
        let mut dec = FrameDecoder::new(1 << 10);
        dec.push(&bin);
        assert_eq!(
            dec.next_frame().unwrap(),
            Some(WireFrame::Binary {
                opcode: OP_DOC,
                doc
            })
        );
    }

    #[test]
    fn blocking_reader_round_trips_cluster_frames() {
        let doc = sample_doc();
        let mut stream = Vec::new();
        write_binary_frame(&mut stream, OP_CLUSTER, &doc).unwrap();
        write_binary_frame(&mut stream, OP_DOC, &Json::obj([("ok", Json::Bool(true))])).unwrap();
        let mut reader = &stream[..];
        assert_eq!(
            read_binary_frame(&mut reader, 1 << 20).unwrap(),
            (OP_CLUSTER, doc)
        );
        let (opcode, _) = read_binary_frame(&mut reader, 1 << 20).unwrap();
        assert_eq!(opcode, OP_DOC);
        assert!(reader.is_empty());
    }

    /// A reader that hands out the prefix and then fails the test if the
    /// caller asks for more — proof the oversize check happens before any
    /// payload read (and thus before the payload allocation).
    struct HeaderOnly<'a>(&'a [u8]);

    impl std::io::Read for HeaderOnly<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            assert!(
                !self.0.is_empty(),
                "payload bytes were requested for a frame whose header already \
                 declared an oversize length"
            );
            let n = self.0.len().min(buf.len());
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }

    #[test]
    fn blocking_reader_rejects_oversize_length_before_allocating() {
        // Header declares u32::MAX bytes; only the header is readable.
        let mut header = vec![MAGIC, OP_CLUSTER];
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_binary_frame(&mut HeaderOnly(&header), 1024).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("1024"), "got: {err}");
    }

    #[test]
    fn blocking_reader_reports_torn_frames_as_unexpected_eof() {
        let doc = sample_doc();
        let mut frame = Vec::new();
        write_binary_frame(&mut frame, OP_CLUSTER, &doc).unwrap();
        // Torn mid-payload: declared length survives, the stream does not.
        let torn = &frame[..frame.len() - 3];
        let err = read_binary_frame(&mut &torn[..], 1 << 20).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // Torn mid-header.
        let err = read_binary_frame(&mut &frame[..4], 1 << 20).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // Wrong magic byte is data corruption, not EOF.
        let mut bad = frame.clone();
        bad[0] = 0x7b;
        let err = read_binary_frame(&mut &bad[..], 1 << 20).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn varints_round_trip_at_the_edges() {
        for n in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut out = Vec::new();
            put_varint(n, &mut out);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), n);
            assert_eq!(pos, out.len());
        }
    }
}
