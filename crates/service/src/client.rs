//! Blocking clients for the reduction daemon's wire protocol.
//!
//! [`Client`] is the simple, stateless face: each request opens one TCP
//! connection, sends one JSON line, and reads one JSON line back — a
//! client never holds a daemon resource across calls (the exception is
//! [`Client::wait_result`], whose single request stays parked server-side
//! until the job is terminal).
//!
//! [`Connection`] is the high-throughput face: one persistent connection
//! carrying many requests, with capability negotiation (`hello`), the
//! compact binary framing of [`crate::frame`], request batching, and
//! server-pushed progress events. Old daemons that answer `hello` with an
//! unknown-op error degrade transparently to line-JSON.

use crate::frame::{encode_doc, FrameDecoder, Framing, WireFrame, OP_EVENT};
use crate::json::Json;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// The outcome of a submit attempt, distinguishing admission-control
/// load shedding (an explicit "come back later", with the daemon's
/// backoff hint) from hard errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// The job was admitted under this id.
    Accepted(u64),
    /// The daemon shed the submit instead of queueing it.
    Shed {
        /// How long the daemon suggests backing off before retrying.
        retry_after_ms: u64,
        /// The daemon's reason (queue full, per-client cap, …).
        message: String,
    },
}

/// Classifies a raw submit response: accepted, shed, or a hard error.
fn classify_submit(response: Json) -> io::Result<Submitted> {
    if response.bool_field("ok") == Some(true) {
        return response
            .u64_field("id")
            .map(Submitted::Accepted)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "submit response without id")
            });
    }
    let message = response
        .str_field("error")
        .unwrap_or("unknown daemon error")
        .to_owned();
    if response.bool_field("shed") == Some(true) {
        return Ok(Submitted::Shed {
            retry_after_ms: response.u64_field("retry_after_ms").unwrap_or(0),
            message,
        });
    }
    Err(io::Error::other(message))
}

/// Builds the submit request document from a job spec object.
fn submit_request(spec: &Json, events: bool) -> io::Result<Json> {
    let mut request = match spec {
        Json::Obj(fields) => fields.clone(),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "spec must be an object",
            ))
        }
    };
    request.insert("op".to_owned(), Json::str("submit"));
    if events {
        request.insert("events".to_owned(), Json::Bool(true));
    }
    Ok(Json::Obj(request))
}

/// A handle on a running daemon.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the daemon at `addr` (`host:port`).
    pub fn connect(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// A client for the daemon owning `state_dir`, via its `daemon.addr`
    /// file.
    pub fn from_state_dir(state_dir: &Path) -> io::Result<Client> {
        let addr = std::fs::read_to_string(state_dir.join("daemon.addr"))?;
        Ok(Client::connect(addr.trim()))
    }

    /// Sends one request document and returns the response document.
    pub fn request(&self, request: &Json) -> io::Result<Json> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.write_all(format!("{}\n", request.render()).as_bytes())?;
        stream.flush()?;
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line)?;
        if line.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection without responding",
            ));
        }
        Json::parse(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Like [`request`](Self::request), but a `{"ok": false}` response
    /// becomes an error carrying the daemon's message.
    pub fn expect_ok(&self, request: &Json) -> io::Result<Json> {
        let response = self.request(request)?;
        if response.bool_field("ok") == Some(true) {
            Ok(response)
        } else {
            let message = response
                .str_field("error")
                .unwrap_or("unknown daemon error");
            Err(io::Error::other(message.to_owned()))
        }
    }

    /// Submits a job described by `spec` (the fields of
    /// [`JobSpec`](crate::JobSpec), minus `id`) and returns the assigned
    /// job id. A shed submit comes back as an error mentioning the
    /// daemon's retry hint; use [`try_submit`](Self::try_submit) to
    /// handle shedding programmatically.
    pub fn submit(&self, spec: &Json) -> io::Result<u64> {
        match self.try_submit(spec)? {
            Submitted::Accepted(id) => Ok(id),
            Submitted::Shed {
                retry_after_ms,
                message,
            } => Err(io::Error::other(format!(
                "{message} (shed; retry after {retry_after_ms}ms)"
            ))),
        }
    }

    /// Submits a job, reporting load shedding as [`Submitted::Shed`]
    /// (with the daemon's `retry_after_ms` hint) instead of an error.
    pub fn try_submit(&self, spec: &Json) -> io::Result<Submitted> {
        classify_submit(self.request(&submit_request(spec, false)?)?)
    }

    /// The job's current status document.
    pub fn status(&self, id: u64) -> io::Result<Json> {
        self.expect_ok(&Json::obj([
            ("op", Json::str("status")),
            ("id", Json::count(id)),
        ]))
    }

    /// Blocks until the job is terminal and returns its result document.
    pub fn wait_result(&self, id: u64) -> io::Result<Json> {
        let response = self.expect_ok(&Json::obj([
            ("op", Json::str("result")),
            ("id", Json::count(id)),
            ("wait", Json::Bool(true)),
        ]))?;
        response
            .get("result")
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response without result"))
    }

    /// Requests cooperative cancellation of a job.
    pub fn cancel(&self, id: u64) -> io::Result<()> {
        self.expect_ok(&Json::obj([
            ("op", Json::str("cancel")),
            ("id", Json::count(id)),
        ]))
        .map(|_| ())
    }

    /// The daemon's stats document (queue depth, per-job probe counts,
    /// cache hit rates, worker utilization).
    pub fn stats(&self) -> io::Result<Json> {
        self.expect_ok(&Json::obj([("op", Json::str("stats"))]))
    }

    /// Asks the daemon to shut down cleanly.
    pub fn shutdown(&self) -> io::Result<()> {
        self.expect_ok(&Json::obj([("op", Json::str("shutdown"))]))
            .map(|_| ())
    }

    /// Whether a daemon answers at this address.
    pub fn ping(&self) -> bool {
        self.request(&Json::obj([("op", Json::str("ping"))]))
            .map(|r| r.bool_field("ok") == Some(true))
            .unwrap_or(false)
    }

    /// Polls [`ping`](Self::ping) until the daemon answers or the timeout
    /// elapses. Used right after spawning a daemon process.
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.ping() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// The address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

/// A persistent connection to the daemon: many requests over one socket,
/// optionally in binary framing, with batching and streamed events.
///
/// One request is in flight at a time ([`request`](Self::request) blocks
/// until its response arrives); events the server pushes in between are
/// buffered and drained with [`next_event`](Self::next_event).
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    framing: Framing,
    /// The daemon's `hello` capabilities; `None` on a v1 daemon.
    capabilities: Option<Json>,
    pending_events: VecDeque<Json>,
}

impl Connection {
    /// Opens a connection and negotiates capabilities: sends `hello` as a
    /// JSON line and, if `binary` is requested and the daemon offers it,
    /// switches all subsequent frames to binary framing. A daemon that
    /// answers `hello` with an error is treated as v1 (JSON only).
    pub fn negotiate(addr: &str, binary: bool) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut conn = Connection {
            stream,
            decoder: FrameDecoder::new(64 << 20),
            framing: Framing::Json,
            capabilities: None,
            pending_events: VecDeque::new(),
        };
        let hello = conn.request(&Json::obj([("op", Json::str("hello"))]))?;
        if hello.bool_field("ok") == Some(true) {
            let offers_binary = matches!(hello.get("framings"), Some(Json::Arr(fs))
                if fs.iter().any(|f| matches!(f, Json::Str(s) if s == "binary")));
            if binary && offers_binary {
                conn.framing = Framing::Binary;
            }
            conn.capabilities = Some(hello);
        }
        Ok(conn)
    }

    /// Like [`negotiate`](Self::negotiate), reading the address from the
    /// daemon's `daemon.addr` file.
    pub fn negotiate_state_dir(state_dir: &Path, binary: bool) -> io::Result<Connection> {
        let addr = std::fs::read_to_string(state_dir.join("daemon.addr"))?;
        Connection::negotiate(addr.trim(), binary)
    }

    /// The framing this connection settled on.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// The daemon's `hello` capability document, if it spoke `lbr/2`.
    pub fn capabilities(&self) -> Option<&Json> {
        self.capabilities.as_ref()
    }

    fn send_doc(&mut self, doc: &Json) -> io::Result<()> {
        self.stream.write_all(&encode_doc(self.framing, doc))
    }

    /// Reads the next frame, classifying it as an event or a response.
    fn read_frame(&mut self) -> io::Result<(bool, Json)> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(WireFrame::Binary { opcode, doc })) => {
                    return Ok((opcode == OP_EVENT, doc));
                }
                Ok(Some(WireFrame::JsonLine(line))) => {
                    let doc = Json::parse(&line).map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}"))
                    })?;
                    // JSON framing has no opcode: events carry an
                    // `"event"` field, responses carry `"ok"`.
                    let is_event = doc.get("event").is_some() && doc.get("ok").is_none();
                    return Ok((is_event, doc));
                }
                Ok(None) => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "daemon closed the connection",
                        ));
                    }
                    self.decoder.push(&chunk[..n]);
                }
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unframeable response: {e}"),
                    ))
                }
            }
        }
    }

    /// Sends one request and blocks for its response; events arriving in
    /// between are buffered for [`next_event`](Self::next_event).
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        self.send_doc(request)?;
        loop {
            let (is_event, doc) = self.read_frame()?;
            if is_event {
                self.pending_events.push_back(doc);
            } else {
                return Ok(doc);
            }
        }
    }

    /// Like [`request`](Self::request), but a `{"ok": false}` response
    /// becomes an error carrying the daemon's message.
    pub fn expect_ok(&mut self, request: &Json) -> io::Result<Json> {
        let response = self.request(request)?;
        if response.bool_field("ok") == Some(true) {
            Ok(response)
        } else {
            let message = response
                .str_field("error")
                .unwrap_or("unknown daemon error");
            Err(io::Error::other(message.to_owned()))
        }
    }

    /// The next server-pushed event — buffered ones first, then off the
    /// wire. Only meaningful after a submit with `"events": true`.
    pub fn next_event(&mut self) -> io::Result<Json> {
        if let Some(ev) = self.pending_events.pop_front() {
            return Ok(ev);
        }
        let (is_event, doc) = self.read_frame()?;
        if is_event {
            return Ok(doc);
        }
        // A response with no request outstanding is a protocol
        // violation; surface it rather than silently dropping it.
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected response while reading events: {}", doc.render()),
        ))
    }

    /// Like [`next_event`](Self::next_event), but waits at most `timeout`
    /// and returns `Ok(None)` if no complete event arrived in time. Only
    /// valid while no request is outstanding (between requests).
    pub fn poll_event(&mut self, timeout: Duration) -> io::Result<Option<Json>> {
        if let Some(ev) = self.pending_events.pop_front() {
            return Ok(Some(ev));
        }
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let outcome = self.poll_event_inner();
        let restore = self.stream.set_read_timeout(None);
        let outcome = outcome?;
        restore?;
        Ok(outcome)
    }

    fn poll_event_inner(&mut self) -> io::Result<Option<Json>> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(WireFrame::Binary { opcode, doc })) if opcode == OP_EVENT => {
                    return Ok(Some(doc));
                }
                Ok(Some(WireFrame::JsonLine(line))) => {
                    let doc = Json::parse(&line).map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("bad event: {e}"))
                    })?;
                    if doc.get("event").is_some() && doc.get("ok").is_none() {
                        return Ok(Some(doc));
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected response while polling events",
                    ));
                }
                Ok(Some(WireFrame::Binary { .. })) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected response while polling events",
                    ));
                }
                Ok(None) => {
                    let mut chunk = [0u8; 16 * 1024];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "daemon closed the connection",
                            ))
                        }
                        Ok(n) => self.decoder.push(&chunk[..n]),
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            return Ok(None)
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unframeable event: {e}"),
                    ))
                }
            }
        }
    }

    /// Submits a job spec (see [`Client::submit`]); with `events` the
    /// daemon streams `running` / `progress` / `terminal` events for it
    /// over this connection.
    pub fn submit(&mut self, spec: &Json, events: bool) -> io::Result<u64> {
        match self.try_submit(spec, events)? {
            Submitted::Accepted(id) => Ok(id),
            Submitted::Shed {
                retry_after_ms,
                message,
            } => Err(io::Error::other(format!(
                "{message} (shed; retry after {retry_after_ms}ms)"
            ))),
        }
    }

    /// Submits a job, reporting load shedding as [`Submitted::Shed`]
    /// (with the daemon's `retry_after_ms` hint) instead of an error.
    pub fn try_submit(&mut self, spec: &Json, events: bool) -> io::Result<Submitted> {
        classify_submit(self.request(&submit_request(spec, events)?)?)
    }

    /// Sends several requests in one `batch` frame and returns their
    /// responses positionally.
    pub fn batch(&mut self, requests: &[Json]) -> io::Result<Vec<Json>> {
        let response = self.expect_ok(&Json::obj([
            ("op", Json::str("batch")),
            ("requests", Json::Arr(requests.to_vec())),
        ]))?;
        match response.get("responses") {
            Some(Json::Arr(items)) => Ok(items.clone()),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "batch response without responses",
            )),
        }
    }

    /// Blocks until the job is terminal and returns its result document
    /// (the connection parks server-side; no polling).
    pub fn wait_result(&mut self, id: u64) -> io::Result<Json> {
        let response = self.expect_ok(&Json::obj([
            ("op", Json::str("result")),
            ("id", Json::count(id)),
            ("wait", Json::Bool(true)),
        ]))?;
        response
            .get("result")
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response without result"))
    }

    /// Requests cooperative cancellation of a job.
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        self.expect_ok(&Json::obj([
            ("op", Json::str("cancel")),
            ("id", Json::count(id)),
        ]))
        .map(|_| ())
    }

    /// The daemon's stats document.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.expect_ok(&Json::obj([("op", Json::str("stats"))]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_classification_separates_shed_from_errors() {
        let ok = Json::obj([("ok", Json::Bool(true)), ("id", Json::count(7))]);
        assert_eq!(classify_submit(ok).unwrap(), Submitted::Accepted(7));

        let shed = Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::str("queue full")),
            ("shed", Json::Bool(true)),
            ("retry_after_ms", Json::count(250)),
        ]);
        assert_eq!(
            classify_submit(shed).unwrap(),
            Submitted::Shed {
                retry_after_ms: 250,
                message: "queue full".to_owned(),
            }
        );

        let hard = Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::str("no such input")),
        ]);
        let err = classify_submit(hard).unwrap_err();
        assert!(err.to_string().contains("no such input"));

        let missing_id = Json::obj([("ok", Json::Bool(true))]);
        assert!(classify_submit(missing_id).is_err());
    }
}
