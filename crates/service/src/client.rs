//! A blocking client for the reduction daemon's line-JSON protocol.
//!
//! Each request opens one TCP connection, sends one JSON line, and reads
//! one JSON line back — stateless on the wire, so a client never holds a
//! daemon resource across calls (the exception is [`Client::wait_result`],
//! whose single request blocks server-side until the job is terminal).

use crate::json::Json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// A handle on a running daemon.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the daemon at `addr` (`host:port`).
    pub fn connect(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// A client for the daemon owning `state_dir`, via its `daemon.addr`
    /// file.
    pub fn from_state_dir(state_dir: &Path) -> io::Result<Client> {
        let addr = std::fs::read_to_string(state_dir.join("daemon.addr"))?;
        Ok(Client::connect(addr.trim()))
    }

    /// Sends one request document and returns the response document.
    pub fn request(&self, request: &Json) -> io::Result<Json> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.write_all(format!("{}\n", request.render()).as_bytes())?;
        stream.flush()?;
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line)?;
        if line.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection without responding",
            ));
        }
        Json::parse(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Like [`request`](Self::request), but a `{"ok": false}` response
    /// becomes an error carrying the daemon's message.
    pub fn expect_ok(&self, request: &Json) -> io::Result<Json> {
        let response = self.request(request)?;
        if response.bool_field("ok") == Some(true) {
            Ok(response)
        } else {
            let message = response
                .str_field("error")
                .unwrap_or("unknown daemon error");
            Err(io::Error::other(message.to_owned()))
        }
    }

    /// Submits a job described by `spec` (the fields of
    /// [`JobSpec`](crate::JobSpec), minus `id`) and returns the assigned
    /// job id.
    pub fn submit(&self, spec: &Json) -> io::Result<u64> {
        let mut request = match spec {
            Json::Obj(fields) => fields.clone(),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "spec must be an object",
                ))
            }
        };
        request.insert("op".to_owned(), Json::str("submit"));
        self.expect_ok(&Json::Obj(request))?
            .u64_field("id")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "submit response without id"))
    }

    /// The job's current status document.
    pub fn status(&self, id: u64) -> io::Result<Json> {
        self.expect_ok(&Json::obj([
            ("op", Json::str("status")),
            ("id", Json::count(id)),
        ]))
    }

    /// Blocks until the job is terminal and returns its result document.
    pub fn wait_result(&self, id: u64) -> io::Result<Json> {
        let response = self.expect_ok(&Json::obj([
            ("op", Json::str("result")),
            ("id", Json::count(id)),
            ("wait", Json::Bool(true)),
        ]))?;
        response
            .get("result")
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response without result"))
    }

    /// Requests cooperative cancellation of a job.
    pub fn cancel(&self, id: u64) -> io::Result<()> {
        self.expect_ok(&Json::obj([
            ("op", Json::str("cancel")),
            ("id", Json::count(id)),
        ]))
        .map(|_| ())
    }

    /// The daemon's stats document (queue depth, per-job probe counts,
    /// cache hit rates, worker utilization).
    pub fn stats(&self) -> io::Result<Json> {
        self.expect_ok(&Json::obj([("op", Json::str("stats"))]))
    }

    /// Asks the daemon to shut down cleanly.
    pub fn shutdown(&self) -> io::Result<()> {
        self.expect_ok(&Json::obj([("op", Json::str("shutdown"))]))
            .map(|_| ())
    }

    /// Whether a daemon answers at this address.
    pub fn ping(&self) -> bool {
        self.request(&Json::obj([("op", Json::str("ping"))]))
            .map(|r| r.bool_field("ok") == Some(true))
            .unwrap_or(false)
    }

    /// Polls [`ping`](Self::ping) until the daemon answers or the timeout
    /// elapses. Used right after spawning a daemon process.
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.ping() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// The address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}
