//! A minimal JSON value, parser, and writer — the service protocol's wire
//! format, hand-rolled because the workspace is dependency-free.
//!
//! Numbers are `f64` (integers round-trip exactly up to 2⁵³, far beyond
//! any counter the service ships); objects keep their keys sorted in a
//! `BTreeMap`, so rendering is canonical: parse → render is a fixpoint
//! and byte-equal payloads mean equal values.

use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// [`obj`](Self::obj) over a dynamically built pair list.
    pub fn obj_from(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value from any integer counter.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A numeric value from a `u64` counter (exact up to 2⁵³).
    pub fn count(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up a key of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `get(key)` then [`as_str`](Json::as_str).
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// `get(key)` then [`as_u64`](Json::as_u64).
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// `get(key)` then [`as_f64`](Json::as_f64).
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// `get(key)` then [`as_bool`](Json::as_bool).
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Json::as_bool)
    }

    /// Parses a JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Renders compactly on one line (the protocol is newline-delimited).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so any
                    // multi-byte sequence is well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let doc = r#"{"a":[1,2.5,-3],"b":"x\ny\"z","c":true,"d":null,"e":{}}"#;
        let v = Json::parse(doc).expect("parses");
        assert_eq!(Json::parse(&v.render()).expect("reparses"), v);
        assert_eq!(v.u64_field("c"), None);
        assert_eq!(v.bool_field("c"), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn counters_are_exact() {
        let n = 1u64 << 52;
        let v = Json::parse(&Json::count(n).render()).expect("parses");
        assert_eq!(v.as_u64(), Some(n));
    }
}
