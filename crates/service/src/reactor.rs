//! Readiness polling for the daemon's event-loop shards.
//!
//! The workspace is dependency-free, so the Linux fast path drives
//! `epoll` through raw syscalls (`epoll_create1` / `epoll_ctl` /
//! `epoll_pwait`, level-triggered); everywhere else a portable fallback
//! treats every registered descriptor as ready on a short tick — correct
//! (all I/O is non-blocking) at the cost of idle wakeups. The [`Waker`]
//! is a non-blocking `UnixStream` pair: any thread can nudge a parked
//! shard by writing one byte.

use std::io;
use std::net::TcpStream;

#[cfg(unix)]
use std::os::fd::{AsRawFd, RawFd};
#[cfg(not(unix))]
type RawFd = i32;

/// Token reserved for the shard's [`Waker`]; connections use ids > 0.
pub(crate) const WAKER_TOKEN: u64 = 0;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Reading will make progress (data, EOF, or error to collect).
    pub readable: bool,
    /// Writing will make progress.
    pub writable: bool,
}

// ----------------------------------------------------------------------
// Linux: epoll via raw syscalls.
// ----------------------------------------------------------------------

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::{Event, RawFd};
    use std::io;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const CLOSE: usize = 57;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EPOLL_CREATE1: usize = 20;
    }

    const EPOLL_CLOEXEC: usize = 0o2000000;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`. x86_64 packs it to 12 bytes;
    /// other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(n: usize, args: [usize; 6]) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") args[0],
            in("rsi") args[1],
            in("rdx") args[2],
            in("r10") args[3],
            in("r8") args[4],
            in("r9") args[5],
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(n: usize, args: [usize; 6]) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") args[0] => ret,
            in("x1") args[1],
            in("x2") args[2],
            in("x3") args[3],
            in("x4") args[4],
            in("x5") args[5],
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    fn interest(writable: bool) -> u32 {
        // Level-triggered; RDHUP so a peer half-close reads as readable.
        EPOLLIN | EPOLLRDHUP | if writable { EPOLLOUT } else { 0 }
    }

    /// An epoll instance.
    pub(crate) struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd =
                check(unsafe { syscall6(nr::EPOLL_CREATE1, [EPOLL_CLOEXEC, 0, 0, 0, 0, 0]) })?
                    as RawFd;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: usize, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            let event = EpollEvent {
                events: interest(writable),
                data: token,
            };
            let ptr = if op == EPOLL_CTL_DEL {
                std::ptr::null()
            } else {
                &event as *const EpollEvent
            };
            check(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    [self.epfd as usize, op, fd as usize, ptr as usize, 0, 0],
                )
            })
            .map(|_| ())
        }

        pub fn register(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, writable)
        }

        pub fn rearm(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, writable)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false)
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            const CAP: usize = 256;
            let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
            let n = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    [
                        self.epfd as usize,
                        raw.as_mut_ptr() as usize,
                        CAP,
                        timeout_ms as usize,
                        0, // no sigmask
                        8, // sigsetsize
                    ],
                )
            };
            if n == -(4isize) {
                return Ok(()); // EINTR: treat as an empty wakeup
            }
            let n = check(n)?;
            for ev in &raw[..n] {
                let ev = *ev; // copy out of the (possibly packed) array
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                let _ = syscall6(nr::CLOSE, [self.epfd as usize, 0, 0, 0, 0, 0]);
            }
        }
    }
}

// ----------------------------------------------------------------------
// Fallback: report every registered descriptor as ready on a short tick.
// ----------------------------------------------------------------------

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::{Event, RawFd};
    use std::collections::BTreeMap;
    use std::io;
    use std::sync::Mutex;
    use std::time::Duration;

    /// A degenerate poller: `wait` sleeps one tick and reports every
    /// registered descriptor ready. Non-blocking I/O keeps this correct;
    /// it only costs idle wakeups.
    pub(crate) struct Poller {
        registered: Mutex<BTreeMap<RawFd, (u64, bool)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(BTreeMap::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller lock")
                .insert(fd, (token, writable));
            Ok(())
        }

        pub fn rearm(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.register(fd, token, writable)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().expect("poller lock").remove(&fd);
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            std::thread::sleep(Duration::from_millis(timeout_ms.clamp(1, 10) as u64));
            for (&_fd, &(token, writable)) in self.registered.lock().expect("poller lock").iter() {
                events.push(Event {
                    token,
                    readable: true,
                    writable,
                });
            }
            Ok(())
        }
    }
}

/// Readiness multiplexer over non-blocking descriptors. See module docs.
pub(crate) struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// A fresh poller instance.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Starts watching `stream` under `token`; `writable` adds write
    /// interest on top of the always-on read interest.
    pub fn register(&self, stream: &TcpStream, token: u64, writable: bool) -> io::Result<()> {
        self.inner.register(raw_fd(stream), token, writable)
    }

    /// Updates the interest set of an already-registered stream.
    pub fn rearm(&self, stream: &TcpStream, token: u64, writable: bool) -> io::Result<()> {
        self.inner.rearm(raw_fd(stream), token, writable)
    }

    /// Stops watching `stream` (must precede closing it).
    pub fn deregister(&self, stream: &TcpStream) -> io::Result<()> {
        self.inner.deregister(raw_fd(stream))
    }

    /// Registers the read end of a [`Waker`].
    pub fn register_waker(&self, waker: &Waker) -> io::Result<()> {
        self.inner.register(waker.read_fd(), WAKER_TOKEN, false)
    }

    /// Blocks up to `timeout_ms` for readiness; fills `events`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        self.inner.wait(events, timeout_ms)
    }
}

#[cfg(unix)]
fn raw_fd(stream: &TcpStream) -> RawFd {
    stream.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd(_stream: &TcpStream) -> RawFd {
    0
}

// ----------------------------------------------------------------------
// Waker.
// ----------------------------------------------------------------------

#[cfg(unix)]
mod waker {
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;

    /// Wakes a parked shard from any thread: one byte down a
    /// non-blocking socket pair. Writes coalesce — a full pipe means a
    /// wakeup is already pending, which is all we need.
    pub(crate) struct Waker {
        read: UnixStream,
        write: UnixStream,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let (read, write) = UnixStream::pair()?;
            read.set_nonblocking(true)?;
            write.set_nonblocking(true)?;
            Ok(Waker { read, write })
        }

        /// Nudges the owning shard; never blocks.
        pub fn wake(&self) {
            let _ = (&self.write).write(&[1]);
        }

        /// Consumes pending wakeups (called by the shard on readiness).
        pub fn drain(&self) {
            let mut sink = [0u8; 64];
            while matches!((&self.read).read(&mut sink), Ok(n) if n > 0) {}
        }

        pub fn read_fd(&self) -> RawFd {
            self.read.as_raw_fd()
        }
    }
}

#[cfg(not(unix))]
mod waker {
    use std::io;

    /// Fallback waker: the scan poller ticks on a timeout anyway, so
    /// waking is a no-op with bounded extra latency.
    pub(crate) struct Waker;

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            Ok(Waker)
        }

        pub fn wake(&self) {}

        pub fn drain(&self) {}

        pub fn read_fd(&self) -> super::RawFd {
            -1
        }
    }
}

pub(crate) use waker::Waker;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_after_peer_write_and_on_eof() {
        let (a, mut b) = pair();
        a.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(&a, 7, false).unwrap();
        let mut events = Vec::new();

        b.write_all(b"x").unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            poller.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "no readable event arrived");
        }
        let mut buf = [0u8; 8];
        assert_eq!((&a).read(&mut buf).unwrap(), 1);

        drop(b); // EOF must also surface as readable
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            poller.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "no EOF event arrived");
        }
        assert_eq!((&a).read(&mut buf).unwrap(), 0);
        poller.deregister(&a).unwrap();
    }

    #[test]
    fn waker_unblocks_a_parked_wait() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register_waker(&waker).unwrap();
        waker.wake();
        let mut events = Vec::new();
        let start = Instant::now();
        poller.wait(&mut events, 5_000).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "wait did not wake promptly"
        );
        waker.drain();
        waker.wake();
        waker.wake(); // coalesces, never blocks
        waker.drain();
    }

    #[test]
    fn write_interest_is_reported_when_armed() {
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(&a, 3, false).unwrap();
        poller.rearm(&a, 3, true).unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            poller.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 3 && e.writable) {
                break;
            }
            assert!(Instant::now() < deadline, "no writable event arrived");
        }
    }
}
