//! A tiny, dependency-free, deterministic pseudo-random number generator.
//!
//! The workspace must build and test **offline**, so the workload generator
//! and randomized tests cannot pull in the `rand` crate. This crate provides
//! the small slice of the `rand` API surface they actually use — seeded
//! construction, `gen_range`, `gen_bool`, and slice choosing — backed by
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014's `java.util.SplittableRandom`
//! finalizer). SplitMix64 passes BigCrush, needs eight lines of code, and is
//! fully reproducible across platforms, which is all a seeded benchmark
//! generator needs.
//!
//! ```
//! use lbr_prng::{SliceChoose, SplitMix64};
//!
//! let mut rng = SplitMix64::seed_from_u64(42);
//! let d6 = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&d6));
//! let coin = rng.gen_bool(0.5);
//! let _ = coin;
//! let pick = [10, 20, 30].choose(&mut rng).copied();
//! assert!(pick.is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// A SplitMix64 generator: 64 bits of state, one add and three xor-shifts
/// per output. Identical seeds yield identical streams on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed (mirrors
    /// `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 raw bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `range` (`a..b` or `a..=b`). Panics on an empty
    /// range, like `rand`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform `u64` in `[0, bound)` via Lemire's multiply-shift with a
    /// rejection step, so every value is exactly equally likely.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone: the lowest `2^64 mod bound` raw values would make
        // some outputs one count more likely than others; redraw on them.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let raw = self.next_u64();
            let (hi, lo) = {
                let wide = raw as u128 * bound as u128;
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= zone {
                return hi;
            }
        }
    }
}

/// A range that [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform value.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.bounded(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Slice helpers mirroring `rand::seq::SliceRandom`.
pub trait SliceChoose {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<'a>(&'a self, rng: &mut SplitMix64) -> Option<&'a Self::Item>;

    /// Up to `amount` distinct elements, in selection order (partial
    /// Fisher–Yates over indices — each subset is equally likely).
    fn choose_multiple<'a>(&'a self, rng: &mut SplitMix64, amount: usize) -> Vec<&'a Self::Item>;

    /// Shuffles indices `0..len` and maps them back — used by tests that
    /// want a random permutation of the slice.
    fn shuffled<'a>(&'a self, rng: &mut SplitMix64) -> Vec<&'a Self::Item>;
}

impl<T> SliceChoose for [T] {
    type Item = T;

    fn choose<'a>(&'a self, rng: &mut SplitMix64) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<'a>(&'a self, rng: &mut SplitMix64, amount: usize) -> Vec<&'a T> {
        let amount = amount.min(self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..amount].iter().map(|&i| &self[i]).collect()
    }

    fn shuffled<'a>(&'a self, rng: &mut SplitMix64) -> Vec<&'a T> {
        self.choose_multiple(rng, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(9);
        let mut b = SplitMix64::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(0..=2u32);
            assert!(y <= 2);
            let z = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&z));
            let u = rng.gen_range(7..8usize);
            assert_eq!(u, 7);
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_edges_and_rate() {
        let mut rng = SplitMix64::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits: {hits}");
    }

    #[test]
    fn choose_and_choose_multiple() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let picked = items.choose_multiple(&mut rng, 3);
        assert_eq!(picked.len(), 3);
        let mut vals: Vec<i32> = picked.into_iter().copied().collect();
        vals.dedup();
        assert_eq!(vals.len(), 3, "choose_multiple must not repeat");
        // Over-asking caps at the slice length.
        assert_eq!(items.choose_multiple(&mut rng, 99).len(), items.len());
        // Every element is reachable in first position.
        let mut seen = [false; 5];
        for _ in 0..300 {
            seen[(*items.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffled_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(6);
        let items = [10, 20, 30, 40];
        let mut out: Vec<i32> = items.shuffled(&mut rng).into_iter().copied().collect();
        out.sort();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
