//! Total variable orders.
//!
//! The Generalized Binary Reduction algorithm is parameterized by a total
//! order `<` on the variables. The order drives both the `MSA_<` procedure
//! (which satisfies clauses with their `<`-smallest positive literal) and
//! the choice of the next progression seed. Theorem 4.5 of the paper shows
//! that picking the order well yields locally minimal solutions for graph
//! constraints.

use crate::{Var, VarSet};

/// A total order over the variables `0..n`.
///
/// Internally a permutation (`position k` holds the k-th smallest variable)
/// with its inverse (`rank`).
///
/// # Examples
///
/// ```
/// use lbr_logic::{Var, VarOrder};
/// let order = VarOrder::from_permutation(vec![Var::new(2), Var::new(0), Var::new(1)]);
/// assert!(order.lt(Var::new(2), Var::new(0)));
/// assert_eq!(order.min([Var::new(0), Var::new(1)]), Some(Var::new(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarOrder {
    perm: Vec<Var>,
    rank: Vec<u32>,
}

impl VarOrder {
    /// The natural index order over `0..n`.
    pub fn natural(n: usize) -> Self {
        VarOrder {
            perm: (0..n as u32).map(Var::new).collect(),
            rank: (0..n as u32).collect(),
        }
    }

    /// Builds an order from a permutation of `0..perm.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation.
    pub fn from_permutation(perm: Vec<Var>) -> Self {
        let n = perm.len();
        let mut rank = vec![u32::MAX; n];
        for (k, v) in perm.iter().enumerate() {
            assert!(v.index() < n, "variable {v} outside universe {n}");
            assert!(rank[v.index()] == u32::MAX, "duplicate variable {v}");
            rank[v.index()] = k as u32;
        }
        VarOrder { perm, rank }
    }

    /// Builds an order by sorting variables by a key.
    pub fn by_key<K: Ord, F: FnMut(Var) -> K>(n: usize, mut key: F) -> Self {
        let mut perm: Vec<Var> = (0..n as u32).map(Var::new).collect();
        perm.sort_by_key(|&v| key(v));
        Self::from_permutation(perm)
    }

    /// Number of variables ordered.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the order is over an empty universe.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The rank of `v` (0 = smallest).
    #[inline]
    pub fn rank(&self, v: Var) -> u32 {
        self.rank[v.index()]
    }

    /// Whether `a < b` in this order.
    #[inline]
    pub fn lt(&self, a: Var, b: Var) -> bool {
        self.rank(a) < self.rank(b)
    }

    /// The `<`-smallest variable of an iterator, if non-empty.
    pub fn min<I: IntoIterator<Item = Var>>(&self, vars: I) -> Option<Var> {
        vars.into_iter().min_by_key(|&v| self.rank(v))
    }

    /// The `<`-smallest member of `set \ excluded`, scanning in order.
    pub fn min_in_difference(&self, set: &VarSet, excluded: &VarSet) -> Option<Var> {
        self.perm
            .iter()
            .copied()
            .find(|&v| set.contains(v) && !excluded.contains(v))
    }

    /// Iterates all variables in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.perm.iter().copied()
    }

    /// Sorts a slice of variables into increasing order.
    pub fn sort(&self, vars: &mut [Var]) {
        vars.sort_by_key(|&v| self.rank(v));
    }

    /// The reverse of this order.
    pub fn reversed(&self) -> VarOrder {
        let mut perm = self.perm.clone();
        perm.reverse();
        Self::from_permutation(perm)
    }
}

/// VSIDS-style variable activity: bump-on-conflict with exponential decay.
///
/// The CDCL engine bumps every variable that participates in a conflict
/// and decays all activities after each conflict (implemented as the usual
/// inverse-increment trick: instead of multiplying every score by `d < 1`,
/// the increment is divided by `d`, and everything is rescaled when the
/// increment threatens to overflow). Scores are pure statistics here — the
/// reduction engine branches in the fixed order `<`, so activity never
/// influences a search result; it only informs *learned probe orders*
/// (see `lbr_core::orders`).
///
/// All operations are deterministic: the same conflict sequence produces
/// bit-identical scores and hence identical derived orders.
#[derive(Debug, Clone)]
pub struct VarActivity {
    score: Vec<f64>,
    inc: f64,
}

/// Decay factor applied after every conflict.
const ACTIVITY_DECAY: f64 = 0.95;
/// Rescale threshold (MiniSat's 1e100).
const ACTIVITY_LIMIT: f64 = 1e100;

impl VarActivity {
    /// Zeroed activity over `n` variables.
    pub fn new(n: usize) -> Self {
        VarActivity {
            score: vec![0.0; n],
            inc: 1.0,
        }
    }

    /// Number of variables tracked.
    pub fn len(&self) -> usize {
        self.score.len()
    }

    /// Whether the tracker is over an empty universe.
    pub fn is_empty(&self) -> bool {
        self.score.is_empty()
    }

    /// The current activity score of `v` (0.0 if out of range).
    pub fn score(&self, v: Var) -> f64 {
        self.score.get(v.index()).copied().unwrap_or(0.0)
    }

    /// Bumps the activity of `v` by the current increment.
    pub fn bump(&mut self, v: Var) {
        if let Some(s) = self.score.get_mut(v.index()) {
            *s += self.inc;
            if *s > ACTIVITY_LIMIT {
                self.rescale();
            }
        }
    }

    /// Decays all activities (called once per conflict).
    pub fn decay(&mut self) {
        self.inc /= ACTIVITY_DECAY;
        if self.inc > ACTIVITY_LIMIT {
            self.rescale();
        }
    }

    fn rescale(&mut self) {
        for s in &mut self.score {
            *s *= 1.0 / ACTIVITY_LIMIT;
        }
        self.inc *= 1.0 / ACTIVITY_LIMIT;
    }

    /// Ranks every variable by descending activity (rank 0 = most active),
    /// ties broken by ascending variable index. `f64::total_cmp` keeps the
    /// ranking deterministic.
    pub fn ranks_descending(&self) -> Vec<u32> {
        let mut by_activity: Vec<usize> = (0..self.score.len()).collect();
        by_activity.sort_by(|&a, &b| self.score[b].total_cmp(&self.score[a]).then(a.cmp(&b)));
        let mut rank = vec![0u32; self.score.len()];
        for (k, &i) in by_activity.iter().enumerate() {
            rank[i] = k as u32;
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn activity_bump_decay_and_ranks() {
        let mut act = VarActivity::new(4);
        act.bump(v(2));
        act.decay();
        act.bump(v(1)); // later bump is larger after decay
        assert!(act.score(v(1)) > act.score(v(2)));
        assert_eq!(act.score(v(3)), 0.0);
        let ranks = act.ranks_descending();
        assert_eq!(ranks[1], 0, "most active first");
        assert_eq!(ranks[2], 1);
        // Untouched variables tie and fall back to index order.
        assert!(ranks[0] < ranks[3]);
    }

    #[test]
    fn activity_rescale_preserves_ranking() {
        let mut act = VarActivity::new(2);
        for _ in 0..20_000 {
            act.bump(v(0));
            act.decay();
        }
        act.bump(v(1));
        assert!(act.score(v(0)).is_finite());
        assert!(act.score(v(1)).is_finite());
        let ranks = act.ranks_descending();
        assert_eq!(ranks.len(), 2);
    }

    #[test]
    fn natural_order() {
        let o = VarOrder::natural(3);
        assert!(o.lt(v(0), v(2)));
        assert_eq!(o.rank(v(1)), 1);
        assert_eq!(o.iter().collect::<Vec<_>>(), vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn permutation_order() {
        let o = VarOrder::from_permutation(vec![v(2), v(0), v(1)]);
        assert!(o.lt(v(2), v(0)));
        assert!(o.lt(v(0), v(1)));
        assert_eq!(o.min([v(1), v(0)]), Some(v(0)));
        let mut vars = vec![v(1), v(2), v(0)];
        o.sort(&mut vars);
        assert_eq!(vars, vec![v(2), v(0), v(1)]);
    }

    #[test]
    fn min_in_difference() {
        let o = VarOrder::from_permutation(vec![v(2), v(0), v(1)]);
        let set = VarSet::from_iter_with_universe(3, [v(0), v(1), v(2)]);
        let excl = VarSet::from_iter_with_universe(3, [v(2)]);
        assert_eq!(o.min_in_difference(&set, &excl), Some(v(0)));
        let all = VarSet::full(3);
        assert_eq!(o.min_in_difference(&set, &all), None);
    }

    #[test]
    fn by_key_and_reversed() {
        // Order descending by index.
        let o = VarOrder::by_key(4, |v| std::cmp::Reverse(v.index()));
        assert!(o.lt(v(3), v(0)));
        let r = o.reversed();
        assert!(r.lt(v(0), v(3)));
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn rejects_non_permutation() {
        VarOrder::from_permutation(vec![v(0), v(0)]);
    }
}
