//! Total variable orders.
//!
//! The Generalized Binary Reduction algorithm is parameterized by a total
//! order `<` on the variables. The order drives both the `MSA_<` procedure
//! (which satisfies clauses with their `<`-smallest positive literal) and
//! the choice of the next progression seed. Theorem 4.5 of the paper shows
//! that picking the order well yields locally minimal solutions for graph
//! constraints.

use crate::{Var, VarSet};

/// A total order over the variables `0..n`.
///
/// Internally a permutation (`position k` holds the k-th smallest variable)
/// with its inverse (`rank`).
///
/// # Examples
///
/// ```
/// use lbr_logic::{Var, VarOrder};
/// let order = VarOrder::from_permutation(vec![Var::new(2), Var::new(0), Var::new(1)]);
/// assert!(order.lt(Var::new(2), Var::new(0)));
/// assert_eq!(order.min([Var::new(0), Var::new(1)]), Some(Var::new(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarOrder {
    perm: Vec<Var>,
    rank: Vec<u32>,
}

impl VarOrder {
    /// The natural index order over `0..n`.
    pub fn natural(n: usize) -> Self {
        VarOrder {
            perm: (0..n as u32).map(Var::new).collect(),
            rank: (0..n as u32).collect(),
        }
    }

    /// Builds an order from a permutation of `0..perm.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation.
    pub fn from_permutation(perm: Vec<Var>) -> Self {
        let n = perm.len();
        let mut rank = vec![u32::MAX; n];
        for (k, v) in perm.iter().enumerate() {
            assert!(v.index() < n, "variable {v} outside universe {n}");
            assert!(rank[v.index()] == u32::MAX, "duplicate variable {v}");
            rank[v.index()] = k as u32;
        }
        VarOrder { perm, rank }
    }

    /// Builds an order by sorting variables by a key.
    pub fn by_key<K: Ord, F: FnMut(Var) -> K>(n: usize, mut key: F) -> Self {
        let mut perm: Vec<Var> = (0..n as u32).map(Var::new).collect();
        perm.sort_by_key(|&v| key(v));
        Self::from_permutation(perm)
    }

    /// Number of variables ordered.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the order is over an empty universe.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The rank of `v` (0 = smallest).
    #[inline]
    pub fn rank(&self, v: Var) -> u32 {
        self.rank[v.index()]
    }

    /// Whether `a < b` in this order.
    #[inline]
    pub fn lt(&self, a: Var, b: Var) -> bool {
        self.rank(a) < self.rank(b)
    }

    /// The `<`-smallest variable of an iterator, if non-empty.
    pub fn min<I: IntoIterator<Item = Var>>(&self, vars: I) -> Option<Var> {
        vars.into_iter().min_by_key(|&v| self.rank(v))
    }

    /// The `<`-smallest member of `set \ excluded`, scanning in order.
    pub fn min_in_difference(&self, set: &VarSet, excluded: &VarSet) -> Option<Var> {
        self.perm
            .iter()
            .copied()
            .find(|&v| set.contains(v) && !excluded.contains(v))
    }

    /// Iterates all variables in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.perm.iter().copied()
    }

    /// Sorts a slice of variables into increasing order.
    pub fn sort(&self, vars: &mut [Var]) {
        vars.sort_by_key(|&v| self.rank(v));
    }

    /// The reverse of this order.
    pub fn reversed(&self) -> VarOrder {
        let mut perm = self.perm.clone();
        perm.reverse();
        Self::from_permutation(perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn natural_order() {
        let o = VarOrder::natural(3);
        assert!(o.lt(v(0), v(2)));
        assert_eq!(o.rank(v(1)), 1);
        assert_eq!(o.iter().collect::<Vec<_>>(), vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn permutation_order() {
        let o = VarOrder::from_permutation(vec![v(2), v(0), v(1)]);
        assert!(o.lt(v(2), v(0)));
        assert!(o.lt(v(0), v(1)));
        assert_eq!(o.min([v(1), v(0)]), Some(v(0)));
        let mut vars = vec![v(1), v(2), v(0)];
        o.sort(&mut vars);
        assert_eq!(vars, vec![v(2), v(0), v(1)]);
    }

    #[test]
    fn min_in_difference() {
        let o = VarOrder::from_permutation(vec![v(2), v(0), v(1)]);
        let set = VarSet::from_iter_with_universe(3, [v(0), v(1), v(2)]);
        let excl = VarSet::from_iter_with_universe(3, [v(2)]);
        assert_eq!(o.min_in_difference(&set, &excl), Some(v(0)));
        let all = VarSet::full(3);
        assert_eq!(o.min_in_difference(&set, &all), None);
    }

    #[test]
    fn by_key_and_reversed() {
        // Order descending by index.
        let o = VarOrder::by_key(4, |v| std::cmp::Reverse(v.index()));
        assert!(o.lt(v(3), v(0)));
        let r = o.reversed();
        assert!(r.lt(v(0), v(3)));
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn rejects_non_permutation() {
        VarOrder::from_permutation(vec![v(0), v(0)]);
    }
}
