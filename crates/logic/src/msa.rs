//! Approximate minimal satisfying assignments (`MSA_<`).
//!
//! Finding a satisfying assignment with as few true variables as possible is
//! NP-complete (Ravi & Somenzi 2004), so — as the paper does — we settle for
//! an approximation guided by the total variable order `<`:
//!
//! 1. Unit-propagate the CNF; forced literals are kept.
//! 2. While some clause is violated under "everything not yet chosen is
//!    false", satisfy it by making its `<`-smallest eligible positive
//!    literal true and re-propagating.
//!
//! On graph constraints this *is* the transitive-closure computation of
//! J-Reduce; on positive clauses (the learned sets of GBR) it picks the
//! `<`-smallest member, which is precisely the property the termination
//! argument of Algorithm 1 relies on. A complete DPLL fallback handles the
//! rare clause mixes where the greedy choice dead-ends.

use crate::{dpll, Cnf, Lit, PartialAssignment, Var, VarOrder, VarSet};

/// Strategy for computing an approximate minimal satisfying assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MsaStrategy {
    /// The order-driven greedy closure described in the module docs. This is
    /// the default and the variant the paper's proofs are about.
    #[default]
    GreedyClosure,
    /// Greedy closure followed by a reverse-order local minimization pass
    /// that drops true variables whose removal keeps the formula satisfied.
    GreedyMinimize,
    /// A complete DPLL search with default-false polarity, followed by the
    /// same minimization pass. Slowest, but immune to greedy dead ends.
    DpllMinimize,
}

impl MsaStrategy {
    /// All strategies, for ablation sweeps.
    pub const ALL: [MsaStrategy; 3] = [
        MsaStrategy::GreedyClosure,
        MsaStrategy::GreedyMinimize,
        MsaStrategy::DpllMinimize,
    ];

    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MsaStrategy::GreedyClosure => "greedy",
            MsaStrategy::GreedyMinimize => "greedy+min",
            MsaStrategy::DpllMinimize => "dpll+min",
        }
    }
}

/// Computes an approximate minimal satisfying assignment of `cnf`, returned
/// as its set of true variables, or `None` if `cnf` is unsatisfiable.
///
/// Backed by the incremental watched-literal [`Engine`](crate::Engine);
/// [`msa_scan`] is the original rescan-based implementation, kept as the
/// differential-testing reference and the measurable baseline. Both return
/// identical sets.
///
/// # Examples
///
/// ```
/// use lbr_logic::{msa, Clause, Cnf, MsaStrategy, Var, VarOrder};
/// let a = Var::new(0);
/// let b = Var::new(1);
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause(Clause::unit(lbr_logic::Lit::pos(a)));
/// cnf.add_clause(Clause::edge(a, b)); // a ⇒ b
/// let m = msa(&cnf, &VarOrder::natural(2), MsaStrategy::GreedyClosure).expect("sat");
/// assert_eq!(m.len(), 2); // both a and b must be true
/// ```
pub fn msa(cnf: &Cnf, order: &VarOrder, strategy: MsaStrategy) -> Option<VarSet> {
    let universe = order.len().max(cnf.num_vars());
    let mut engine = crate::Engine::new(cnf, universe);
    let result = if engine.is_ok() {
        crate::engine::msa_from_state(&mut engine, order, strategy)
    } else {
        None // refuted by unit propagation alone
    };
    debug_assert!(
        result.as_ref().is_none_or(|s| cnf.eval(s)),
        "msa returned a non-model"
    );
    result
}

/// [`msa`] with complete searches delegated to a caller-owned
/// [`CdclEngine`](crate::CdclEngine) instead of the chronological DPLL.
///
/// `solver` must hold (at least) the clauses of `cnf`; it keeps its learned
/// clauses across calls, so repeated MSA probes over the same model get
/// cheaper. The result is identical to [`msa`] for every input — the CDCL
/// engine returns the same lexicographically-least model as the DPLL search
/// (see [`CdclEngine::solve`](crate::CdclEngine::solve)).
pub fn msa_with_solver(
    cnf: &Cnf,
    order: &VarOrder,
    strategy: MsaStrategy,
    solver: &mut crate::CdclEngine,
) -> Option<VarSet> {
    let universe = order.len().max(cnf.num_vars());
    let mut engine = crate::Engine::new(cnf, universe);
    let result = if engine.is_ok() {
        crate::engine::msa_from_state_with(
            &mut engine,
            order,
            strategy,
            &mut crate::engine::SearchBackend::Cdcl(solver),
        )
    } else {
        None
    };
    debug_assert!(
        result.as_ref().is_none_or(|s| cnf.eval(s)),
        "msa returned a non-model"
    );
    result
}

/// The original scan-based MSA: rescans the whole clause list to a
/// propagation fixpoint at every step.
///
/// Kept as the reference implementation [`msa`] is differentially tested
/// against, and as the measurable scan-BCP baseline (GBR's
/// `PropagationMode::LegacyScan` routes here).
pub fn msa_scan(cnf: &Cnf, order: &VarOrder, strategy: MsaStrategy) -> Option<VarSet> {
    let universe = order.len().max(cnf.num_vars());
    let result = match strategy {
        MsaStrategy::GreedyClosure => greedy_closure(cnf, order, universe),
        MsaStrategy::GreedyMinimize => {
            greedy_closure(cnf, order, universe).map(|s| minimize(cnf, order, s))
        }
        MsaStrategy::DpllMinimize => {
            dpll::solve(cnf, order).map(|s| minimize(cnf, order, widen(s, universe)))
        }
    };
    debug_assert!(
        result.as_ref().is_none_or(|s| cnf.eval(s)),
        "msa returned a non-model"
    );
    result
}

/// Re-universes a set to `universe` (the DPLL solver may use a smaller one).
fn widen(s: VarSet, universe: usize) -> VarSet {
    if s.universe() == universe {
        s
    } else {
        VarSet::from_iter_with_universe(universe, s.iter())
    }
}

fn greedy_closure(cnf: &Cnf, order: &VarOrder, universe: usize) -> Option<VarSet> {
    let mut pa = PartialAssignment::new(universe);
    // A BCP conflict from the empty assignment means unsatisfiable.
    propagate_or_conflict(cnf, &mut pa)?;
    loop {
        let mut fixed_any = false;
        let mut dead_end = false;
        'scan: for clause in cnf.clauses() {
            // Violated under "unassigned = false"?
            for &l in clause.lits() {
                let val = pa.eval_lit(l).unwrap_or(!l.is_positive());
                if val {
                    continue 'scan;
                }
            }
            // Satisfy with the <-smallest positive literal not forced false.
            let pick = order.min(clause.positives().filter(|&v| pa.value(v) != Some(false)));
            match pick {
                Some(v) => {
                    pa.assign(Lit::pos(v));
                    if propagate_or_conflict(cnf, &mut pa).is_none() {
                        dead_end = true;
                        break 'scan;
                    }
                    fixed_any = true;
                }
                None => {
                    dead_end = true;
                    break 'scan;
                }
            }
        }
        if dead_end {
            // The greedy choice painted us into a corner (or the formula is
            // unsatisfiable). Let the complete solver decide.
            return dpll::solve(cnf, order).map(|s| widen(s, universe));
        }
        if !fixed_any {
            let s = pa.true_set();
            debug_assert!(cnf.eval(&s));
            return Some(s);
        }
    }
}

fn propagate_or_conflict(cnf: &Cnf, pa: &mut PartialAssignment) -> Option<()> {
    (!crate::propagate(cnf, pa).is_conflict()).then_some(())
}

/// Reverse-`<`-order sweep dropping true variables whose removal keeps the
/// formula satisfied, repeated until a full sweep drops nothing. Produces a
/// set that is minimal with respect to single removals (not necessarily
/// subset-minimal). A single sweep is not enough: removing a variable can
/// satisfy a clause through a negative literal and thereby free an
/// earlier-considered variable, so we iterate to the fixpoint. Each repeat
/// removed at least one variable, bounding the loop by `|s|` sweeps.
fn minimize(cnf: &Cnf, order: &VarOrder, mut s: VarSet) -> VarSet {
    let members: Vec<Var> = {
        let mut m: Vec<Var> = s.iter().collect();
        order.sort(&mut m);
        m.reverse();
        m
    };
    loop {
        let mut dropped = false;
        for &v in &members {
            if !s.contains(v) {
                continue;
            }
            s.remove(v);
            if cnf.eval(&s) {
                dropped = true;
            } else {
                s.insert(v);
            }
        }
        if !dropped {
            return s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clause;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    fn edge_cnf(n: usize, edges: &[(u32, u32)], required: &[u32]) -> Cnf {
        let mut cnf = Cnf::new(n);
        for &(a, b) in edges {
            cnf.add_clause(Clause::edge(v(a), v(b)));
        }
        for &r in required {
            cnf.add_clause(Clause::unit(Lit::pos(v(r))));
        }
        cnf
    }

    #[test]
    fn closure_on_graph_constraints() {
        // 0 => 1 => 2, 3 isolated, require 0.
        let cnf = edge_cnf(4, &[(0, 1), (1, 2)], &[0]);
        for strat in MsaStrategy::ALL {
            let m = msa(&cnf, &VarOrder::natural(4), strat).expect("sat");
            assert_eq!(
                m.iter().collect::<Vec<_>>(),
                vec![v(0), v(1), v(2)],
                "{strat:?}"
            );
        }
    }

    #[test]
    fn positive_clause_picks_order_min() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([], [v(1), v(2)]));
        let natural = msa(&cnf, &VarOrder::natural(3), MsaStrategy::GreedyClosure).unwrap();
        assert_eq!(natural.iter().collect::<Vec<_>>(), vec![v(1)]);
        let rev = VarOrder::from_permutation(vec![v(2), v(1), v(0)]);
        let reversed = msa(&cnf, &rev, MsaStrategy::GreedyClosure).unwrap();
        assert_eq!(reversed.iter().collect::<Vec<_>>(), vec![v(2)]);
    }

    #[test]
    fn unsat_returns_none() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::unit(Lit::neg(v(0))));
        for strat in MsaStrategy::ALL {
            assert!(
                msa(&cnf, &VarOrder::natural(1), strat).is_none(),
                "{strat:?}"
            );
        }
    }

    #[test]
    fn greedy_dead_end_falls_back() {
        // (0 | 1) with 0 forbidden via a negative binary clause that only
        // bites after choosing 0: (!0 | !2) and 2 required.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::unit(Lit::pos(v(2))));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(0)), Lit::neg(v(2))]));
        cnf.add_clause(Clause::implication([], [v(0), v(1)]));
        for strat in MsaStrategy::ALL {
            let m = msa(&cnf, &VarOrder::natural(3), strat).expect("sat");
            assert!(cnf.eval(&m), "{strat:?}");
            assert!(m.contains(v(1)) && m.contains(v(2)) && !m.contains(v(0)));
        }
    }

    #[test]
    fn minimize_drops_unneeded() {
        // (0 | 1): DPLL default-false finds {1}; greedy finds {0}.
        // Seeding a deliberately fat model exercises the minimize pass.
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::implication([], [v(0), v(1)]));
        let fat = VarSet::from_iter_with_universe(2, [v(0), v(1)]);
        let slim = minimize(&cnf, &VarOrder::natural(2), fat);
        assert_eq!(slim.len(), 1);
    }

    #[test]
    fn general_clause_behaviour() {
        // (a ∧ b ⇒ c) ∧ (c ⇒ b) with nothing required: empty model works.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([v(0), v(1)], [v(2)]));
        cnf.add_clause(Clause::edge(v(2), v(1)));
        let m = msa(&cnf, &VarOrder::natural(3), MsaStrategy::GreedyClosure).unwrap();
        assert!(m.is_empty());
        // Now require b: {b} alone satisfies everything.
        cnf.add_clause(Clause::unit(Lit::pos(v(1))));
        let m = msa(&cnf, &VarOrder::natural(3), MsaStrategy::GreedyClosure).unwrap();
        assert!(cnf.eval(&m));
        assert!(m.contains(v(1)));
    }

    #[test]
    fn all_strategies_agree_on_satisfiability() {
        // Random-ish structured formulas: strategies must agree SAT/UNSAT.
        let mut cnf = Cnf::new(6);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::implication([v(1)], [v(2), v(3)]));
        cnf.add_clause(Clause::implication([v(2), v(3)], [v(4)]));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(5))]));
        let models: Vec<_> = MsaStrategy::ALL
            .iter()
            .map(|&s| msa(&cnf, &VarOrder::natural(6), s).expect("sat"))
            .collect();
        for m in &models {
            assert!(cnf.eval(m));
            assert!(!m.contains(v(5)));
        }
    }
}
