//! Clauses (disjunctions of literals) and their structural classification.

use crate::{Lit, Var, VarSet};
use std::fmt;

/// A disjunction of literals, kept sorted and duplicate-free.
///
/// The reduction literature cares about the *shape* of clauses: the paper
/// reports that 97.5% of the clauses in its models are *graph constraints* —
/// clauses representable as a dependency-graph edge because they contain
/// exactly one negative and one positive literal (`x ⇒ y`), or a single
/// positive literal (a required item). [`Clause::shape`] exposes that
/// classification.
///
/// # Examples
///
/// ```
/// use lbr_logic::{Clause, ClauseShape, Lit, Var};
/// let x = Var::new(0);
/// let y = Var::new(1);
/// let edge = Clause::new(vec![Lit::neg(x), Lit::pos(y)]);
/// assert_eq!(edge.shape(), ClauseShape::Edge { from: x, to: y });
/// assert!(edge.is_graph_constraint());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Clause {
    lits: Vec<Lit>,
}

/// The structural classification of a [`Clause`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClauseShape {
    /// The empty clause — unsatisfiable.
    Empty,
    /// A single positive literal: the item is required.
    UnitPositive(Var),
    /// A single negative literal: the item is forbidden.
    UnitNegative(Var),
    /// Exactly one negative and one positive literal: the dependency edge
    /// `from ⇒ to`.
    Edge {
        /// Antecedent of the implication.
        from: Var,
        /// Consequent of the implication.
        to: Var,
    },
    /// Two or more positive literals and no negative ones: at least one of
    /// the items must be kept (as produced by `mAny`).
    PositiveDisjunction,
    /// Two or more negative literals and no positive ones: the items cannot
    /// all be kept together.
    NegativeDisjunction,
    /// The general form `(a₁ ∧ … ∧ aₙ) ⇒ (b₁ ∨ … ∨ bₘ)` with `n ≥ 1`,
    /// `m ≥ 1`, and `n + m ≥ 3`.
    General,
}

impl Clause {
    /// Builds a clause from literals, sorting and deduplicating.
    ///
    /// Tautological inputs (containing both `x` and `¬x`) are allowed here;
    /// they are detected by [`Clause::is_tautology`] and dropped by
    /// [`Cnf::add_clause`](crate::Cnf::add_clause).
    pub fn new(mut lits: Vec<Lit>) -> Self {
        lits.sort();
        lits.dedup();
        Clause { lits }
    }

    /// The empty (unsatisfiable) clause.
    pub fn empty() -> Self {
        Clause { lits: Vec::new() }
    }

    /// A unit clause containing only `lit`.
    pub fn unit(lit: Lit) -> Self {
        Clause { lits: vec![lit] }
    }

    /// The implication `from ⇒ to`, i.e. `¬from ∨ to`.
    pub fn edge(from: Var, to: Var) -> Self {
        Clause::new(vec![Lit::neg(from), Lit::pos(to)])
    }

    /// The clause `(∧ body) ⇒ (∨ head)`.
    pub fn implication<B, H>(body: B, head: H) -> Self
    where
        B: IntoIterator<Item = Var>,
        H: IntoIterator<Item = Var>,
    {
        let lits = body
            .into_iter()
            .map(Lit::neg)
            .chain(head.into_iter().map(Lit::pos))
            .collect();
        Clause::new(lits)
    }

    /// The literals, sorted by variable then polarity.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause is empty (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Whether the clause contains both polarities of some variable.
    pub fn is_tautology(&self) -> bool {
        self.lits
            .windows(2)
            .any(|w| w[0].var() == w[1].var() && w[0] != w[1])
    }

    /// Iterates the positive literals' variables.
    pub fn positives(&self) -> impl Iterator<Item = Var> + '_ {
        self.lits
            .iter()
            .filter(|l| l.is_positive())
            .map(|l| l.var())
    }

    /// Iterates the negative literals' variables (the implication body).
    pub fn negatives(&self) -> impl Iterator<Item = Var> + '_ {
        self.lits
            .iter()
            .filter(|l| !l.is_positive())
            .map(|l| l.var())
    }

    /// Classifies the clause; see [`ClauseShape`].
    pub fn shape(&self) -> ClauseShape {
        let npos = self.positives().count();
        let nneg = self.lits.len() - npos;
        match (nneg, npos) {
            (0, 0) => ClauseShape::Empty,
            (0, 1) => ClauseShape::UnitPositive(self.lits[0].var()),
            (1, 0) => ClauseShape::UnitNegative(self.lits[0].var()),
            (1, 1) => ClauseShape::Edge {
                from: self.negatives().next().expect("one negative literal"),
                to: self.positives().next().expect("one positive literal"),
            },
            (0, _) => ClauseShape::PositiveDisjunction,
            (_, 0) => ClauseShape::NegativeDisjunction,
            _ => ClauseShape::General,
        }
    }

    /// Whether the clause is a *graph constraint*: an edge `x ⇒ y` or a
    /// required item (positive unit). These are the clauses the dependency
    /// graph of J-Reduce can express.
    pub fn is_graph_constraint(&self) -> bool {
        matches!(
            self.shape(),
            ClauseShape::Edge { .. } | ClauseShape::UnitPositive(_)
        )
    }

    /// Evaluates the clause under the complete assignment "true iff in
    /// `true_set`".
    pub fn eval(&self, true_set: &VarSet) -> bool {
        self.lits.iter().any(|l| l.eval(true_set.contains(l.var())))
    }

    /// The largest variable index mentioned, plus one (`0` if empty).
    pub fn var_bound(&self) -> usize {
        self.lits
            .iter()
            .map(|l| l.var().index() + 1)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<T: IntoIterator<Item = Lit>>(iter: T) -> Self {
        Clause::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn canonicalizes() {
        let c = Clause::new(vec![Lit::pos(v(2)), Lit::pos(v(1)), Lit::pos(v(2))]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lits(), &[Lit::pos(v(1)), Lit::pos(v(2))]);
    }

    #[test]
    fn shapes() {
        assert_eq!(Clause::empty().shape(), ClauseShape::Empty);
        assert_eq!(
            Clause::unit(Lit::pos(v(3))).shape(),
            ClauseShape::UnitPositive(v(3))
        );
        assert_eq!(
            Clause::unit(Lit::neg(v(3))).shape(),
            ClauseShape::UnitNegative(v(3))
        );
        assert_eq!(
            Clause::edge(v(0), v(1)).shape(),
            ClauseShape::Edge {
                from: v(0),
                to: v(1)
            }
        );
        assert_eq!(
            Clause::implication([], [v(0), v(1)]).shape(),
            ClauseShape::PositiveDisjunction
        );
        assert_eq!(
            Clause::implication([v(0), v(1)], []).shape(),
            ClauseShape::NegativeDisjunction
        );
        assert_eq!(
            Clause::implication([v(0), v(1)], [v(2)]).shape(),
            ClauseShape::General
        );
    }

    #[test]
    fn graph_constraints() {
        assert!(Clause::edge(v(0), v(1)).is_graph_constraint());
        assert!(Clause::unit(Lit::pos(v(0))).is_graph_constraint());
        assert!(!Clause::unit(Lit::neg(v(0))).is_graph_constraint());
        assert!(!Clause::implication([v(0), v(1)], [v(2)]).is_graph_constraint());
    }

    #[test]
    fn tautology_detection() {
        let t = Clause::new(vec![Lit::pos(v(0)), Lit::neg(v(0))]);
        assert!(t.is_tautology());
        assert!(!Clause::edge(v(0), v(1)).is_tautology());
    }

    #[test]
    fn eval_true_set() {
        let c = Clause::implication([v(0)], [v(1)]); // !0 | 1
        let mut s = VarSet::empty(2);
        assert!(c.eval(&s)); // 0 false -> satisfied
        s.insert(v(0));
        assert!(!c.eval(&s)); // 0 true, 1 false
        s.insert(v(1));
        assert!(c.eval(&s));
        assert!(!Clause::empty().eval(&s));
    }

    #[test]
    fn implication_builder_matches_edge() {
        assert_eq!(
            Clause::implication([v(4)], [v(9)]),
            Clause::edge(v(4), v(9))
        );
    }

    #[test]
    fn var_bound() {
        assert_eq!(Clause::empty().var_bound(), 0);
        assert_eq!(Clause::edge(v(3), v(7)).var_bound(), 8);
    }
}
