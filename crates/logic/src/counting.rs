//! Exact model counting (#SAT), in the style of sharpSAT.
//!
//! The paper uses sharpSAT to count the valid sub-inputs of the Section 2
//! example (6,766 of the 2²⁰ = 1,048,576 subsets). This module implements
//! the same three ingredients sharpSAT popularized, sized for dependency
//! models rather than industrial instances:
//!
//! * implicit BCP — unit propagation before every branch,
//! * connected-component decomposition — disjoint sub-formulas multiply,
//! * component caching — isomorphic sub-formulas are counted once.

use crate::{Clause, Cnf, Lit, Var};
use std::collections::HashMap;

/// Counts the satisfying assignments of `cnf` over all `cnf.num_vars()`
/// variables (variables mentioned in no clause are free and double the
/// count).
///
/// # Panics
///
/// Panics if the count overflows `u128` (more than ~2¹²⁷ models).
///
/// # Examples
///
/// ```
/// use lbr_logic::{count_models, Clause, Cnf, Var};
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause(Clause::implication([], [Var::new(0), Var::new(1)]));
/// assert_eq!(count_models(&cnf), 3); // all but {¬0, ¬1}
/// ```
pub fn count_models(cnf: &Cnf) -> u128 {
    let mut counter = Counter::default();
    let clauses: Vec<Clause> = cnf.clauses().to_vec();
    if clauses.iter().any(|c| c.is_empty()) {
        return 0;
    }
    let mut vars: Vec<Var> = cnf.occurring_vars().iter().collect();
    vars.sort();
    let free = cnf.num_vars() - vars.len();
    let core = counter.count(clauses, vars);
    core.checked_mul(pow2(free)).expect("model count overflow")
}

/// Counts the satisfying assignments among *subsets of a restricted
/// universe*: variables outside `keep` are fixed to false first.
pub fn count_models_restricted(cnf: &Cnf, keep: &crate::VarSet) -> u128 {
    let empty = crate::VarSet::empty(cnf.num_vars());
    let restricted = cnf.restrict(keep, &empty);
    // The restricted formula still ranges over num_vars; only `keep` vars
    // are meaningful, the rest are fixed.
    let mut counter = Counter::default();
    let clauses: Vec<Clause> = restricted.clauses().to_vec();
    if clauses.iter().any(|c| c.is_empty()) {
        return 0;
    }
    let mut vars: Vec<Var> = restricted.occurring_vars().iter().collect();
    vars.sort();
    let mentioned = vars.len();
    let free = keep.len().saturating_sub(mentioned);
    let core = counter.count(clauses, vars);
    core.checked_mul(pow2(free)).expect("model count overflow")
}

/// [`count_models`] with the top-level connected components counted in
/// parallel on up to `threads` scoped worker threads.
///
/// Dependency models decompose well (disjoint classes share no clauses),
/// and disjoint sub-formulas multiply independently, so each top-level
/// component is counted by its own worker with a fresh component cache.
/// The result is always identical to [`count_models`]: the decomposition
/// is deterministic and multiplication is order-independent (slots are
/// combined in component order either way). `threads <= 1`, or a formula
/// with a single component, falls back to the sequential counter.
pub fn count_models_parallel(cnf: &Cnf, threads: usize) -> u128 {
    let clauses: Vec<Clause> = cnf.clauses().to_vec();
    if clauses.iter().any(|c| c.is_empty()) {
        return 0;
    }
    let mut vars: Vec<Var> = cnf.occurring_vars().iter().collect();
    vars.sort();
    let outer_free = cnf.num_vars() - vars.len();
    // Replicate the top level of `Counter::count` so the components are in
    // hand: BCP, then the free-variable multiplier, then decomposition.
    let Some((clauses, forced)) = bcp(clauses) else {
        return 0;
    };
    let mut mentioned: Vec<Var> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for c in &clauses {
            for l in c.lits() {
                if seen.insert(l.var()) {
                    mentioned.push(l.var());
                }
            }
        }
    }
    mentioned.sort();
    let free = vars.len() - mentioned.len() - forced.len();
    let mut total = pow2(outer_free)
        .checked_mul(pow2(free))
        .expect("model count overflow");
    if clauses.is_empty() {
        return total;
    }
    let jobs = components(&clauses, &mentioned);
    let workers = threads.max(1).min(jobs.len());
    let subtotals: Vec<u128> = if workers <= 1 {
        jobs.into_iter()
            .map(|(cc, cv)| Counter::default().count(cc, cv))
            .collect()
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        // Per-slot results (no shared result lock): workers claim component
        // indices atomically and each writes its own slot.
        let slots: Vec<Mutex<Option<u128>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((cc, cv)) = jobs.get(i) else {
                        break;
                    };
                    let sub = Counter::default().count(cc.clone(), cv.clone());
                    *slots[i].lock().expect("component slot") = Some(sub);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("component slot")
                    .expect("worker wrote slot")
            })
            .collect()
    };
    for sub in subtotals {
        if sub == 0 {
            return 0;
        }
        total = total.checked_mul(sub).expect("model count overflow");
    }
    total
}

fn pow2(n: usize) -> u128 {
    assert!(n < 128, "model count overflow: 2^{n}");
    1u128 << n
}

/// Statistics from a counting run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingStats {
    /// Cache hits on previously counted components.
    pub cache_hits: u64,
    /// Components entered (cache misses).
    pub components: u64,
    /// Branching decisions.
    pub branches: u64,
}

/// Counts models and also reports search statistics.
pub fn count_models_with_stats(cnf: &Cnf) -> (u128, CountingStats) {
    let mut counter = Counter::default();
    let clauses: Vec<Clause> = cnf.clauses().to_vec();
    if clauses.iter().any(|c| c.is_empty()) {
        return (0, counter.stats);
    }
    let mut vars: Vec<Var> = cnf.occurring_vars().iter().collect();
    vars.sort();
    let free = cnf.num_vars() - vars.len();
    let core = counter.count(clauses, vars);
    (
        core.checked_mul(pow2(free)).expect("model count overflow"),
        counter.stats,
    )
}

#[derive(Default)]
struct Counter {
    cache: HashMap<Vec<u64>, u128>,
    stats: CountingStats,
}

impl Counter {
    /// Counts assignments to `vars` satisfying `clauses`. Every variable in
    /// `clauses` is in `vars`; `vars` may contain extra (free) variables.
    fn count(&mut self, clauses: Vec<Clause>, vars: Vec<Var>) -> u128 {
        // Implicit BCP. Forced variables are fixed: factor 1 each.
        let Some((clauses, forced)) = bcp(clauses) else {
            return 0;
        };
        // Free variables: in `vars`, not forced, and no longer mentioned.
        let mut mentioned: Vec<Var> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for c in &clauses {
                for l in c.lits() {
                    if seen.insert(l.var()) {
                        mentioned.push(l.var());
                    }
                }
            }
        }
        mentioned.sort();
        let free = vars.len() - mentioned.len() - forced.len();
        let mult = pow2(free);
        if clauses.is_empty() {
            return mult;
        }

        // Component decomposition.
        let comps = components(&clauses, &mentioned);
        let mut total = mult;
        for (comp_clauses, comp_vars) in comps {
            let sub = self.count_component(comp_clauses, comp_vars);
            if sub == 0 {
                return 0;
            }
            total = total.checked_mul(sub).expect("model count overflow");
        }
        total
    }

    fn count_component(&mut self, clauses: Vec<Clause>, vars: Vec<Var>) -> u128 {
        let key = canonical_key(&clauses, &vars);
        if let Some(&c) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return c;
        }
        self.stats.components += 1;
        // Branch on the most frequent variable.
        let mut freq: HashMap<Var, usize> = HashMap::new();
        for c in &clauses {
            for l in c.lits() {
                *freq.entry(l.var()).or_insert(0) += 1;
            }
        }
        let &branch = freq
            .iter()
            .max_by_key(|&(v, n)| (*n, std::cmp::Reverse(v.index())))
            .map(|(v, _)| v)
            .expect("component has variables");
        self.stats.branches += 1;
        let mut total = 0u128;
        for polarity in [true, false] {
            let lit = Lit::with_polarity(branch, polarity);
            if let Some(cond) = condition_clauses(&clauses, lit) {
                let sub_vars: Vec<Var> = vars.iter().copied().filter(|&v| v != branch).collect();
                total = total
                    .checked_add(self.count(cond, sub_vars))
                    .expect("model count overflow");
            }
        }
        self.cache.insert(key, total);
        total
    }
}

/// Repeated unit propagation on a clause list. Returns the conditioned
/// clauses and the forced literals, or `None` on conflict.
///
/// All units of a pass are collected and conditioned on together, so the
/// clause list is rewritten once per propagation *round* rather than once
/// per unit (the old behavior was `O(units · clauses)` per call, a real
/// cost under the counter's exponential branching). Unit propagation is
/// confluent, so the batched fixpoint is identical.
fn bcp(mut clauses: Vec<Clause>) -> Option<(Vec<Clause>, Vec<Lit>)> {
    let mut forced: Vec<Lit> = Vec::new();
    loop {
        let mut units: Vec<Lit> = Vec::new();
        for c in &clauses {
            if c.len() == 1 {
                let lit = c.lits()[0];
                if units.contains(&lit.negated()) {
                    return None; // contradictory units in one round
                }
                if !units.contains(&lit) {
                    units.push(lit);
                }
            }
        }
        if units.is_empty() {
            return Some((clauses, forced));
        }
        clauses = condition_on_all(&clauses, &units)?;
        forced.extend(units);
    }
}

/// Conditions a clause list on all of `lits` being true in one pass.
/// `None` on conflict (empty clause produced).
fn condition_on_all(clauses: &[Clause], lits: &[Lit]) -> Option<Vec<Clause>> {
    let mut out = Vec::with_capacity(clauses.len());
    'clauses: for c in clauses {
        let mut kept: Vec<Lit> = Vec::with_capacity(c.len());
        for &l in c.lits() {
            if lits.contains(&l) {
                continue 'clauses; // satisfied
            }
            if !lits.contains(&l.negated()) {
                kept.push(l);
            }
        }
        if kept.is_empty() {
            return None;
        }
        out.push(if kept.len() == c.len() {
            c.clone()
        } else {
            Clause::new(kept)
        });
    }
    Some(out)
}

/// Conditions a clause list on `lit` being true. `None` on conflict (empty
/// clause produced).
fn condition_clauses(clauses: &[Clause], lit: Lit) -> Option<Vec<Clause>> {
    let mut out = Vec::with_capacity(clauses.len());
    for c in clauses {
        if c.lits().contains(&lit) {
            continue; // satisfied
        }
        if c.lits().contains(&lit.negated()) {
            let kept: Vec<Lit> = c
                .lits()
                .iter()
                .copied()
                .filter(|&l| l != lit.negated())
                .collect();
            if kept.is_empty() {
                return None;
            }
            out.push(Clause::new(kept));
        } else {
            out.push(c.clone());
        }
    }
    Some(out)
}

/// Splits clauses into connected components over shared variables.
fn components(clauses: &[Clause], vars: &[Var]) -> Vec<(Vec<Clause>, Vec<Var>)> {
    // Union-find over variable indices.
    let index: HashMap<Var, usize> = vars
        .iter()
        .copied()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    let mut parent: Vec<usize> = (0..vars.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for c in clauses {
        let mut lits = c.lits().iter();
        if let Some(first) = lits.next() {
            let a = index[&first.var()];
            for l in lits {
                let b = index[&l.var()];
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[ra] = rb;
                }
            }
        }
    }
    let mut comp_clauses: HashMap<usize, Vec<Clause>> = HashMap::new();
    let mut comp_vars: HashMap<usize, Vec<Var>> = HashMap::new();
    for &v in vars {
        let root = find(&mut parent, index[&v]);
        comp_vars.entry(root).or_default().push(v);
    }
    for c in clauses {
        let root = find(&mut parent, index[&c.lits()[0].var()]);
        comp_clauses.entry(root).or_default().push(c.clone());
    }
    let mut roots: Vec<usize> = comp_vars.keys().copied().collect();
    roots.sort();
    roots
        .into_iter()
        .map(|r| {
            (
                comp_clauses.remove(&r).unwrap_or_default(),
                comp_vars.remove(&r).unwrap_or_default(),
            )
        })
        .collect()
}

/// A canonical, renaming-invariant key for a component: variables are
/// renumbered by first occurrence in the sorted clause list.
fn canonical_key(clauses: &[Clause], vars: &[Var]) -> Vec<u64> {
    canonical_key_and_order(clauses, vars).0
}

/// [`canonical_key`] plus the concrete variables in canonical order, so
/// callers can translate between this occurrence of the component and its
/// canonical renaming (position `i` of the returned vec = the concrete
/// variable with canonical id `i`). Free variables of the component do not
/// occur in any clause and get no canonical id.
fn canonical_key_and_order(clauses: &[Clause], vars: &[Var]) -> (Vec<u64>, Vec<Var>) {
    let mut sorted: Vec<&Clause> = clauses.iter().collect();
    sorted.sort();
    let mut rename: HashMap<Var, u32> = HashMap::new();
    let mut canon: Vec<Var> = Vec::new();
    let mut key = Vec::with_capacity(clauses.len() * 4 + 1);
    for c in &sorted {
        for l in c.lits() {
            let id = *rename.entry(l.var()).or_insert_with(|| {
                let id = canon.len() as u32;
                canon.push(l.var());
                id
            });
            key.push(((id as u64) << 1) | (l.is_positive() as u64));
        }
        key.push(u64::MAX); // clause separator
    }
    // Free-variable count must be part of the identity.
    key.push(vars.len() as u64);
    (key, canon)
}

/// An exact (not renaming-invariant) identity of a clause set, used to
/// memoize whole-probe decompositions across a [`CountSession`].
fn exact_key(clauses: &[Clause], extra: u64) -> Vec<u64> {
    let mut sorted: Vec<&Clause> = clauses.iter().collect();
    sorted.sort();
    let mut key = Vec::with_capacity(clauses.len() * 4 + 1);
    for c in &sorted {
        for l in c.lits() {
            key.push(l.code() as u64);
        }
        key.push(u64::MAX);
    }
    key.push(extra);
    key
}

/// A persistent model-counting session for repeated probes over the same
/// underlying model.
///
/// GBR-style reduction counts restrictions of one fixed dependency CNF
/// over and over; the standalone [`count_models_restricted`] rebuilds the
/// component cache and re-runs the full top-level simplification (BCP +
/// decomposition) on every call, even when the restricted clause set is
/// byte-identical to a previous probe. A session keeps three layers of
/// state across probes:
///
/// 1. the renaming-invariant **component-count cache** (as in
///    [`count_models`], but surviving between calls),
/// 2. a **whole-probe memo** keyed by the exact clause set, skipping BCP
///    and decomposition entirely for repeated restrictions,
/// 3. optionally, a component-keyed [`SharedClauseStore`]
///    (crate::learned::SharedClauseStore): on a component-cache miss, a
///    [`CdclEngine`](crate::CdclEngine) warm-started with clauses learned
///    on isomorphic components decides satisfiability first — an UNSAT
///    verdict short-circuits the exponential branching with a 0 count —
///    and the clauses it learns are recorded for later components and
///    probes.
///
/// Results are bit-identical to [`count_models_restricted`] for every
/// probe: all three layers are caches of deterministic sub-computations.
pub struct CountSession {
    counter: Counter,
    tops: HashMap<Vec<u64>, u128>,
    top_hits: u64,
    store: crate::learned::SharedClauseStore,
    cdcl_probes: bool,
}

impl Default for CountSession {
    fn default() -> Self {
        Self::new()
    }
}

impl CountSession {
    /// A fresh session with empty caches and CDCL probes disabled.
    pub fn new() -> Self {
        CountSession {
            counter: Counter::default(),
            tops: HashMap::new(),
            top_hits: 0,
            store: crate::learned::SharedClauseStore::new(),
            cdcl_probes: false,
        }
    }

    /// Enables (or disables) the CDCL satisfiability pre-probe with the
    /// shared learned-clause store.
    pub fn with_cdcl_probes(mut self, on: bool) -> Self {
        self.cdcl_probes = on;
        self
    }

    /// Seeds the session with an existing store (e.g. one populated by the
    /// MSA solver of the same run), so component probes start warm.
    pub fn with_store(mut self, store: crate::learned::SharedClauseStore) -> Self {
        self.store = store;
        self
    }

    /// Takes the store out of the session (leaving an empty one), so it
    /// can be handed to the next consumer of the run.
    pub fn take_store(&mut self) -> crate::learned::SharedClauseStore {
        std::mem::take(&mut self.store)
    }

    /// Counting statistics accumulated over the whole session.
    pub fn stats(&self) -> CountingStats {
        self.counter.stats
    }

    /// Whole-probe memo hits so far.
    pub fn top_hits(&self) -> u64 {
        self.top_hits
    }

    /// The shared learned-clause store (empty unless CDCL probes are on).
    pub fn store(&self) -> &crate::learned::SharedClauseStore {
        &self.store
    }

    /// [`count_models`] against the session caches.
    pub fn count(&mut self, cnf: &Cnf) -> u128 {
        let clauses: Vec<Clause> = cnf.clauses().to_vec();
        if clauses.iter().any(|c| c.is_empty()) {
            return 0;
        }
        let mut vars: Vec<Var> = cnf.occurring_vars().iter().collect();
        vars.sort();
        let free = cnf.num_vars() - vars.len();
        let core = self.count_top(clauses, vars);
        core.checked_mul(pow2(free)).expect("model count overflow")
    }

    /// [`count_models_restricted`] against the session caches.
    pub fn count_restricted(&mut self, cnf: &Cnf, keep: &crate::VarSet) -> u128 {
        let empty = crate::VarSet::empty(cnf.num_vars());
        let restricted = cnf.restrict(keep, &empty);
        let clauses: Vec<Clause> = restricted.clauses().to_vec();
        if clauses.iter().any(|c| c.is_empty()) {
            return 0;
        }
        let mut vars: Vec<Var> = restricted.occurring_vars().iter().collect();
        vars.sort();
        let free = keep.len().saturating_sub(vars.len());
        let core = self.count_top(clauses, vars);
        core.checked_mul(pow2(free)).expect("model count overflow")
    }

    /// The memoized equivalent of `Counter::count` at the probe top level.
    fn count_top(&mut self, clauses: Vec<Clause>, vars: Vec<Var>) -> u128 {
        let top = exact_key(&clauses, vars.len() as u64);
        if let Some(&c) = self.tops.get(&top) {
            self.top_hits += 1;
            return c;
        }
        let result = (|| {
            let Some((clauses, forced)) = bcp(clauses) else {
                return 0;
            };
            let mut mentioned: Vec<Var> = Vec::new();
            {
                let mut seen = std::collections::HashSet::new();
                for c in &clauses {
                    for l in c.lits() {
                        if seen.insert(l.var()) {
                            mentioned.push(l.var());
                        }
                    }
                }
            }
            mentioned.sort();
            let free = vars.len() - mentioned.len() - forced.len();
            let mult = pow2(free);
            if clauses.is_empty() {
                return mult;
            }
            let mut total = mult;
            for (comp_clauses, comp_vars) in components(&clauses, &mentioned) {
                let sub = self.count_component(comp_clauses, comp_vars);
                if sub == 0 {
                    return 0;
                }
                total = total.checked_mul(sub).expect("model count overflow");
            }
            total
        })();
        self.tops.insert(top, result);
        result
    }

    /// `Counter::count_component` with the optional CDCL pre-probe.
    fn count_component(&mut self, clauses: Vec<Clause>, vars: Vec<Var>) -> u128 {
        if !self.cdcl_probes {
            return self.counter.count_component(clauses, vars);
        }
        let (key, canon) = canonical_key_and_order(&clauses, &vars);
        if let Some(&c) = self.counter.cache.get(&key) {
            self.counter.stats.cache_hits += 1;
            return c;
        }
        // Unknown component: decide satisfiability first, warm-started
        // with clauses learned on isomorphic components. An UNSAT verdict
        // makes the count 0 without any branching.
        let universe = canon.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut sub = Cnf::new(universe);
        for c in &clauses {
            sub.add_clause(c.clone());
        }
        let mut cdcl = crate::CdclEngine::new(&sub, universe);
        cdcl.import_clauses(&self.store.lookup(&key, &canon));
        let order = crate::VarOrder::natural(universe);
        let verdict = cdcl.solve(&order, &[]);
        self.store.record(&key, &canon, &cdcl.export_learned());
        if verdict.is_none() {
            self.counter.cache.insert(key, 0);
            return 0;
        }
        self.counter.count_component(clauses, vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lit, VarOrder};

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    /// Brute-force reference counter.
    fn brute(cnf: &Cnf) -> u128 {
        let n = cnf.num_vars();
        assert!(n <= 20);
        let mut count = 0u128;
        for bits in 0..(1u64 << n) {
            let mut s = crate::VarSet::empty(n);
            for i in 0..n {
                if bits >> i & 1 == 1 {
                    s.insert(v(i as u32));
                }
            }
            if cnf.eval(&s) {
                count += 1;
            }
        }
        count
    }

    #[test]
    fn empty_cnf_counts_all() {
        assert_eq!(count_models(&Cnf::new(3)), 8);
    }

    #[test]
    fn unit_halves() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        assert_eq!(count_models(&cnf), 4);
    }

    #[test]
    fn implication_chain() {
        // 0=>1=>2 over 3 vars: models are downward-closed suffix sets:
        // {}, {2}, {1,2}, {0,1,2} => 4
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        assert_eq!(count_models(&cnf), 4);
        assert_eq!(count_models(&cnf), brute(&cnf));
    }

    #[test]
    fn disjoint_components_multiply() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::implication([], [v(0), v(1)])); // 3 models
        cnf.add_clause(Clause::implication([], [v(2), v(3)])); // 3 models
        let (count, stats) = count_models_with_stats(&cnf);
        assert_eq!(count, 9);
        assert!(stats.components >= 1);
    }

    #[test]
    fn unsat_counts_zero() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::unit(Lit::neg(v(0))));
        assert_eq!(count_models(&cnf), 0);
    }

    #[test]
    fn matches_brute_force_on_structured_formulas() {
        let cases: Vec<Cnf> = vec![
            {
                let mut c = Cnf::new(5);
                c.add_clause(Clause::implication([v(0), v(1)], [v(2)]));
                c.add_clause(Clause::edge(v(2), v(3)));
                c.add_clause(Clause::implication([], [v(3), v(4)]));
                c
            },
            {
                let mut c = Cnf::new(6);
                c.add_clause(Clause::implication([v(0)], [v(1), v(2)]));
                c.add_clause(Clause::implication([v(1)], [v(3)]));
                c.add_clause(Clause::implication([v(2)], [v(3)]));
                c.add_clause(Clause::new(vec![Lit::neg(v(4)), Lit::neg(v(5))]));
                c
            },
            {
                let mut c = Cnf::new(4);
                c.add_clause(Clause::new(vec![Lit::neg(v(0)), Lit::neg(v(1))]));
                c.add_clause(Clause::new(vec![Lit::neg(v(1)), Lit::neg(v(2))]));
                c.add_clause(Clause::implication([], [v(0), v(1), v(2), v(3)]));
                c
            },
        ];
        for cnf in &cases {
            assert_eq!(count_models(cnf), brute(cnf), "formula {cnf:?}");
        }
    }

    #[test]
    fn restricted_counting() {
        // 0=>1 over 3 vars; restrict universe to {0,1}: models {}, {1}, {0,1} = 3.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        let keep = crate::VarSet::from_iter_with_universe(3, [v(0), v(1)]);
        assert_eq!(count_models_restricted(&cnf, &keep), 3);
        // Full universe: 3 * 2 = 6.
        assert_eq!(count_models(&cnf), 6);
    }

    #[test]
    fn cache_hits_on_isomorphic_components() {
        // Two isomorphic chains; the second should hit the cache.
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(2), v(3)));
        let (count, stats) = count_models_with_stats(&cnf);
        assert_eq!(count, 9);
        assert!(stats.cache_hits >= 1, "expected cache reuse, got {stats:?}");
    }

    #[test]
    fn parallel_count_matches_sequential() {
        // Several disjoint components plus free variables and forced units.
        let mut cnf = Cnf::new(14);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(1), v(2)));
        cnf.add_clause(Clause::implication([], [v(3), v(4)]));
        cnf.add_clause(Clause::implication([v(5), v(6)], [v(7)]));
        cnf.add_clause(Clause::unit(Lit::pos(v(8))));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(9)), Lit::neg(v(10))]));
        let expected = count_models(&cnf);
        assert_eq!(expected, brute(&cnf));
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                count_models_parallel(&cnf, threads),
                expected,
                "threads={threads}"
            );
        }
        // Degenerate cases.
        assert_eq!(count_models_parallel(&Cnf::new(3), 4), 8);
        let mut unsat = Cnf::new(2);
        unsat.add_clause(Clause::unit(Lit::pos(v(0))));
        unsat.add_clause(Clause::unit(Lit::neg(v(0))));
        assert_eq!(count_models_parallel(&unsat, 4), 0);
    }

    #[test]
    fn session_matches_one_shot_counts() {
        let mut cnf = Cnf::new(6);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::implication([], [v(2), v(3)]));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(4)), Lit::neg(v(5))]));
        for probes in [false, true] {
            let mut session = CountSession::new().with_cdcl_probes(probes);
            assert_eq!(session.count(&cnf), count_models(&cnf), "probes={probes}");
            assert_eq!(session.count(&cnf), brute(&cnf));
            let keep = crate::VarSet::from_iter_with_universe(6, [v(0), v(1), v(4)]);
            assert_eq!(
                session.count_restricted(&cnf, &keep),
                count_models_restricted(&cnf, &keep),
                "probes={probes}"
            );
        }
    }

    #[test]
    fn session_memoizes_repeated_probes() {
        let mut cnf = Cnf::new(5);
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::edge(v(2), v(3)));
        let mut session = CountSession::new();
        let keep = crate::VarSet::from_iter_with_universe(5, (0..4).map(v));
        let first = session.count_restricted(&cnf, &keep);
        assert_eq!(session.top_hits(), 0);
        // The identical probe skips BCP and decomposition entirely.
        assert_eq!(session.count_restricted(&cnf, &keep), first);
        assert_eq!(session.top_hits(), 1);
        // A different restriction is a fresh top but shares the component
        // cache (the chain over {2,3} is isomorphic to the one over {0,1}).
        let keep2 = crate::VarSet::from_iter_with_universe(5, [v(0), v(1)]);
        let other = session.count_restricted(&cnf, &keep2);
        assert_eq!(other, count_models_restricted(&cnf, &keep2));
        assert_eq!(session.top_hits(), 1);
    }

    #[test]
    fn session_cdcl_probe_short_circuits_unsat_components() {
        // An unsatisfiable component embedded next to a satisfiable one.
        let mut cnf = Cnf::new(4);
        cnf.add_clause(Clause::unit(Lit::pos(v(0))));
        cnf.add_clause(Clause::edge(v(0), v(1)));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(1))]));
        cnf.add_clause(Clause::implication([], [v(2), v(3)]));
        let mut session = CountSession::new().with_cdcl_probes(true);
        assert_eq!(session.count(&cnf), 0);
        assert_eq!(session.count(&cnf), 0);
    }

    #[test]
    fn session_store_shares_across_isomorphic_components() {
        // Two isomorphic positive-clause components: the second component's
        // probe must hit the store populated by the first.
        let mut cnf = Cnf::new(6);
        cnf.add_clause(Clause::implication([], [v(0), v(1), v(2)]));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(0)), Lit::neg(v(1))]));
        cnf.add_clause(Clause::implication([], [v(3), v(4), v(5)]));
        cnf.add_clause(Clause::new(vec![Lit::neg(v(3)), Lit::neg(v(4))]));
        let mut session = CountSession::new().with_cdcl_probes(true);
        let got = session.count(&cnf);
        assert_eq!(got, brute(&cnf));
        assert_eq!(got, count_models(&cnf));
    }

    #[test]
    fn count_agrees_with_sat() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::implication([v(0)], [v(1)]));
        cnf.add_clause(Clause::implication([v(1)], [v(0)]));
        let count = count_models(&cnf);
        assert!(count > 0);
        assert!(crate::dpll::solve(&cnf, &VarOrder::natural(3)).is_some());
        assert_eq!(count, brute(&cnf));
    }
}
