//! Dense bit-sets of variables.
//!
//! Solutions in the paper are written as "the set of true variables"; every
//! variable outside the set is false. [`VarSet`] is that representation: a
//! fixed-universe bitset with the set operations the reduction algorithms
//! need (union, difference, subset tests, ordered iteration).

use crate::Var;
use std::fmt;

/// A set of [`Var`]s over a fixed universe `0..universe`.
///
/// # Examples
///
/// ```
/// use lbr_logic::{Var, VarSet};
/// let mut s = VarSet::empty(10);
/// s.insert(Var::new(3));
/// s.insert(Var::new(7));
/// assert!(s.contains(Var::new(3)));
/// assert!(!s.contains(Var::new(4)));
/// assert_eq!(s.len(), 2);
/// let vars: Vec<usize> = s.iter().map(|v| v.index()).collect();
/// assert_eq!(vars, vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VarSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl VarSet {
    /// Creates an empty set over `0..universe`.
    pub fn empty(universe: usize) -> Self {
        VarSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
            len: 0,
        }
    }

    /// Creates the full set `{0, .., universe-1}`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::empty(universe);
        for i in 0..universe {
            s.insert(Var::new(i as u32));
        }
        s
    }

    /// Builds a set from an iterator of variables.
    pub fn from_iter_with_universe<I: IntoIterator<Item = Var>>(universe: usize, it: I) -> Self {
        let mut s = Self::empty(universe);
        for v in it {
            s.insert(v);
        }
        s
    }

    /// The size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests membership. Variables outside the universe are never members.
    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        let i = v.index();
        i < self.universe && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Inserts `v`, returning `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    #[inline]
    pub fn insert(&mut self, v: Var) -> bool {
        let i = v.index();
        assert!(
            i < self.universe,
            "variable {v} outside universe {}",
            self.universe
        );
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `v`, returning `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: Var) -> bool {
        let i = v.index();
        if i >= self.universe {
            return false;
        }
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask != 0 {
            *w &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &VarSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        self.recount();
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &VarSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        self.recount();
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &VarSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
        self.recount();
    }

    /// Returns `self ∪ other` as a new set.
    pub fn union(&self, other: &VarSet) -> VarSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersection(&self, other: &VarSet) -> VarSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other` as a new set.
    pub fn difference(&self, other: &VarSet) -> VarSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Whether the two sets share no members.
    pub fn is_disjoint(&self, other: &VarSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every member of `self` is in `other`.
    pub fn is_subset(&self, other: &VarSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// A 64-bit fingerprint of the set's contents (and universe).
    ///
    /// Memo caches key probe outcomes by candidate subset; hashing the
    /// full word vector through `SipHash` on every lookup is measurable on
    /// the hot path. The fingerprint is one multiply-xor pass (FNV-style
    /// with an avalanche shift) that callers can store alongside the set
    /// and use as a cheap first-level key, falling back to `==` within a
    /// bucket — equal sets always have equal fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (self.universe as u64);
        for &w in &self.words {
            h = (h ^ w).wrapping_mul(0x0000_0100_0000_01B3);
            h ^= h >> 29;
        }
        h
    }

    /// Iterates members in increasing variable-index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Var> for VarSet {
    /// Collects variables into a set whose universe is one past the largest
    /// index seen.
    fn from_iter<T: IntoIterator<Item = Var>>(iter: T) -> Self {
        let vars: Vec<Var> = iter.into_iter().collect();
        let universe = vars.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        Self::from_iter_with_universe(universe, vars)
    }
}

impl Extend<Var> for VarSet {
    fn extend<T: IntoIterator<Item = Var>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// Iterator over the members of a [`VarSet`], produced by [`VarSet::iter`].
pub struct Iter<'a> {
    set: &'a VarSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = Var;

    fn next(&mut self) -> Option<Var> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(Var::new((self.word_idx * 64 + bit) as u32));
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(universe: usize, vars: &[u32]) -> VarSet {
        VarSet::from_iter_with_universe(universe, vars.iter().map(|&v| Var::new(v)))
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = VarSet::empty(100);
        assert!(s.insert(Var::new(70)));
        assert!(!s.insert(Var::new(70)));
        assert!(s.contains(Var::new(70)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Var::new(70)));
        assert!(!s.remove(Var::new(70)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = set(10, &[1, 2, 3]);
        let b = set(10, &[3, 4]);
        assert_eq!(a.union(&b), set(10, &[1, 2, 3, 4]));
        assert_eq!(a.intersection(&b), set(10, &[3]));
        assert_eq!(a.difference(&b), set(10, &[1, 2]));
        assert!(!a.is_disjoint(&b));
        assert!(set(10, &[1]).is_disjoint(&set(10, &[2])));
        assert!(set(10, &[1, 2]).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iteration_is_ordered() {
        let s = set(200, &[199, 0, 64, 65, 128]);
        let got: Vec<u32> = s.iter().map(|v| v.raw()).collect();
        assert_eq!(got, vec![0, 64, 65, 128, 199]);
    }

    #[test]
    fn full_and_from_iter() {
        let f = VarSet::full(5);
        assert_eq!(f.len(), 5);
        let c: VarSet = [Var::new(2), Var::new(9)].into_iter().collect();
        assert_eq!(c.universe(), 10);
        assert!(c.contains(Var::new(9)));
    }

    #[test]
    fn fingerprint_respects_equality() {
        let a = set(200, &[1, 64, 199]);
        let b = set(200, &[1, 64, 199]);
        let c = set(200, &[1, 64, 198]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "expected distinct fingerprints"
        );
        // Same members, different universe: different identity.
        assert_ne!(set(100, &[3]).fingerprint(), set(101, &[3]).fingerprint());
    }

    #[test]
    fn outside_universe_contains_is_false() {
        let s = set(4, &[0]);
        assert!(!s.contains(Var::new(100)));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_outside_universe_panics() {
        let mut s = VarSet::empty(4);
        s.insert(Var::new(4));
    }
}
